//! A timestamp-ordering (pseudo-time) file server, in the style of SWALLOW / Reed
//! (§3 of the paper).
//!
//! Every transaction receives a timestamp when it begins.  Every page carries the
//! timestamp of the youngest transaction that read it and the youngest that wrote it.
//! A read that arrives "too late" (the page was already written by a younger
//! transaction) or a write that arrives too late (the page was already read or
//! written by a younger transaction) aborts the transaction, which must retry with a
//! new, younger timestamp.  Writes are buffered and applied atomically at commit so a
//! failed transaction leaves no partial state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use amoeba_block::{BlockNr, BlockServer, MemStore};
use amoeba_capability::Capability;

use crate::interface::{ConcurrencyControl, TxAbort, TxProfile, TxStats};

#[derive(Debug, Clone, Copy, Default)]
struct PageTimestamps {
    read_ts: u64,
    write_ts: u64,
}

#[derive(Debug)]
struct FileState {
    pages: Vec<BlockNr>,
    timestamps: Vec<PageTimestamps>,
}

/// Counters describing timestamp-ordering activity.
#[derive(Debug, Default)]
pub struct TimestampStats {
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transactions aborted by a timestamp-ordering violation.
    pub aborts: AtomicU64,
}

/// The timestamp-ordering baseline server.
pub struct TimestampOrderingServer {
    block_server: Arc<BlockServer>,
    account: Capability,
    files: RwLock<HashMap<u64, Arc<Mutex<FileState>>>>,
    next_file: AtomicU64,
    clock: AtomicU64,
    /// Statistics.
    pub stats: TimestampStats,
}

impl TimestampOrderingServer {
    /// Creates a timestamp-ordering server over the given block server.
    pub fn new(block_server: Arc<BlockServer>) -> Self {
        let account = block_server.create_account();
        TimestampOrderingServer {
            block_server,
            account,
            files: RwLock::new(HashMap::new()),
            next_file: AtomicU64::new(1),
            clock: AtomicU64::new(1),
            stats: TimestampStats::default(),
        }
    }

    /// Creates a server over a fresh in-memory block store.
    pub fn in_memory() -> Self {
        Self::new(Arc::new(BlockServer::new(Arc::new(MemStore::new()))))
    }

    fn file(&self, file: u64) -> Result<Arc<Mutex<FileState>>, TxAbort> {
        self.files
            .read()
            .get(&file)
            .cloned()
            .ok_or_else(|| TxAbort::Fault("unknown file handle".into()))
    }

    /// Draws a fresh pseudo-time timestamp.
    pub fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }
}

impl ConcurrencyControl for TimestampOrderingServer {
    fn name(&self) -> &'static str {
        "timestamp-ordering"
    }

    fn create_file(&self, pages: u32, initial: usize) -> u64 {
        let mut table = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            let block = self
                .block_server
                .allocate_and_write(&self.account, Bytes::from(vec![0u8; initial]))
                .expect("allocate page");
            table.push(block);
        }
        let handle = self.next_file.fetch_add(1, Ordering::Relaxed);
        self.files.write().insert(
            handle,
            Arc::new(Mutex::new(FileState {
                timestamps: vec![PageTimestamps::default(); table.len()],
                pages: table,
            })),
        );
        handle
    }

    fn run_transaction(&self, file: u64, profile: &TxProfile) -> Result<TxStats, TxAbort> {
        let ts = self.now();
        let entry = self.file(file)?;
        let mut stats = TxStats::default();
        // The whole transaction is validated and applied under the file's timestamp
        // table lock; reads of page contents go to the block server.
        let mut state = entry.lock();

        // Check every access first so an abort leaves no trace at all.
        for &page in &profile.reads {
            let stamps = state
                .timestamps
                .get(page as usize)
                .ok_or_else(|| TxAbort::Fault(format!("no page {page}")))?;
            if ts < stamps.write_ts {
                self.stats.aborts.fetch_add(1, Ordering::Relaxed);
                return Err(TxAbort::TimestampViolation);
            }
        }
        for (page, _) in &profile.writes {
            let stamps = state
                .timestamps
                .get(*page as usize)
                .ok_or_else(|| TxAbort::Fault(format!("no page {page}")))?;
            if ts < stamps.read_ts || ts < stamps.write_ts {
                self.stats.aborts.fetch_add(1, Ordering::Relaxed);
                return Err(TxAbort::TimestampViolation);
            }
        }

        // All checks passed: perform the reads, apply the writes, advance the clocks.
        for &page in &profile.reads {
            let block = state.pages[page as usize];
            self.block_server
                .read(&self.account, block)
                .map_err(|e| TxAbort::Fault(e.to_string()))?;
            let stamps = &mut state.timestamps[page as usize];
            stamps.read_ts = stamps.read_ts.max(ts);
            stats.pages_read += 1;
        }
        for (page, data) in &profile.writes {
            let block = state.pages[*page as usize];
            self.block_server
                .write(&self.account, block, data.clone())
                .map_err(|e| TxAbort::Fault(e.to_string()))?;
            state.timestamps[*page as usize].write_ts = ts;
            stats.pages_written += 1;
        }
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        Ok(stats)
    }

    fn read_page(&self, file: u64, page: u32) -> Result<Bytes, TxAbort> {
        let entry = self.file(file)?;
        let block = {
            let state = entry.lock();
            *state
                .pages
                .get(page as usize)
                .ok_or_else(|| TxAbort::Fault(format!("no page {page}")))?
        };
        self.block_server
            .read(&self.account, block)
            .map_err(|e| TxAbort::Fault(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_transactions_commit() {
        let server = TimestampOrderingServer::in_memory();
        let file = server.create_file(2, 4);
        for i in 0..5u8 {
            server
                .run_transaction(
                    file,
                    &TxProfile {
                        reads: vec![0],
                        writes: vec![(1, Bytes::from(vec![i]))],
                    },
                )
                .unwrap();
        }
        assert_eq!(server.read_page(file, 1).unwrap(), Bytes::from(vec![4u8]));
        assert_eq!(server.stats.commits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn late_writer_is_aborted() {
        let server = TimestampOrderingServer::in_memory();
        let file = server.create_file(1, 4);
        // Take a timestamp now, but let a younger transaction write the page first.
        let old_ts = server.now();
        server
            .run_transaction(
                file,
                &TxProfile::write_only(vec![(0, Bytes::from_static(b"young"))]),
            )
            .unwrap();
        // Simulate the old transaction arriving late by temporarily winding the clock
        // back: we re-run its access check through a synthetic profile with the stale
        // timestamp by setting the clock to the old value for one draw.
        server.clock.store(old_ts, Ordering::Relaxed);
        let result = server.run_transaction(
            file,
            &TxProfile::write_only(vec![(0, Bytes::from_static(b"stale"))]),
        );
        assert_eq!(result.unwrap_err(), TxAbort::TimestampViolation);
        assert_eq!(
            server.read_page(file, 0).unwrap(),
            Bytes::from_static(b"young")
        );
    }

    #[test]
    fn late_reader_is_aborted() {
        let server = TimestampOrderingServer::in_memory();
        let file = server.create_file(1, 4);
        let old_ts = server.now();
        server
            .run_transaction(
                file,
                &TxProfile::write_only(vec![(0, Bytes::from_static(b"new"))]),
            )
            .unwrap();
        server.clock.store(old_ts, Ordering::Relaxed);
        let result = server.run_transaction(
            file,
            &TxProfile {
                reads: vec![0],
                writes: vec![],
            },
        );
        assert_eq!(result.unwrap_err(), TxAbort::TimestampViolation);
    }

    #[test]
    fn aborted_transactions_leave_no_partial_writes() {
        let server = TimestampOrderingServer::in_memory();
        let file = server.create_file(2, 4);
        let old_ts = server.now();
        server
            .run_transaction(
                file,
                &TxProfile::write_only(vec![(1, Bytes::from_static(b"newer"))]),
            )
            .unwrap();
        server.clock.store(old_ts, Ordering::Relaxed);
        // This late transaction writes page 0 (fine on its own) and page 1 (stale):
        // the whole transaction must abort and page 0 must stay untouched.
        let result = server.run_transaction(
            file,
            &TxProfile::write_only(vec![
                (0, Bytes::from_static(b"part")),
                (1, Bytes::from_static(b"ial")),
            ]),
        );
        assert!(result.is_err());
        assert_eq!(
            server.read_page(file, 0).unwrap(),
            Bytes::from(vec![0u8; 4])
        );
    }
}
