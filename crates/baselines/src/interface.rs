//! A uniform transaction interface over the Amoeba service and the baselines.
//!
//! Experiment E1 (and several others) compare optimistic concurrency control against
//! two-phase locking and timestamp ordering on identical workloads.  The harness
//! describes a transaction as "read these page indices, then write those page
//! indices" of one file; every mechanism executes it in its own way and reports
//! whether it committed and how much work it did.
//!
//! The optimistic side is driven through the [`FileStore`] trait by
//! [`StoreAdapter`], so the identical workload runs over a local
//! [`FileService`] (see [`AmoebaAdapter`]) *or* over an RPC connection
//! (`afs_client::RemoteFs`), using the batched page operations so a k-page
//! transaction costs O(1) round trips on a remote store.

use bytes::Bytes;

use afs_core::{FileService, FileStore, FsError, PagePath};
use std::sync::Arc;

/// Why a transaction did not commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxAbort {
    /// Validation failed (OCC) — redo the update on a fresh version.
    SerialisabilityConflict,
    /// The transaction was chosen as a deadlock victim or lost a wait-die race (2PL).
    DeadlockVictim,
    /// A timestamp-ordering rule was violated (the transaction arrived too late).
    TimestampViolation,
    /// The underlying storage or service failed.
    Fault(String),
}

/// What a committed transaction reports back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Pages read.
    pub pages_read: usize,
    /// Pages written.
    pub pages_written: usize,
    /// Times the transaction had to wait for a lock (2PL only).
    pub lock_waits: usize,
    /// Pages compared during validation (OCC only).
    pub pages_validated: usize,
}

/// A transaction profile: which page indices of a file are read and written, and the
/// payload written to each written page.
#[derive(Debug, Clone)]
pub struct TxProfile {
    /// Page indices whose data the transaction reads before writing.
    pub reads: Vec<u32>,
    /// Page indices the transaction overwrites, with the new contents.
    pub writes: Vec<(u32, Bytes)>,
}

impl TxProfile {
    /// A transaction that only writes (a blind write, like the compiler temporary of
    /// the paper's introduction).
    pub fn write_only(writes: Vec<(u32, Bytes)>) -> Self {
        TxProfile {
            reads: Vec::new(),
            writes,
        }
    }
}

/// The uniform interface the experiment harness drives.
pub trait ConcurrencyControl: Send + Sync {
    /// Short name used in result tables ("occ", "2pl", "timestamp").
    fn name(&self) -> &'static str;

    /// Creates a file with `pages` leaf pages, each initialised to `initial` bytes of
    /// zeroes, and returns an opaque handle for it.
    fn create_file(&self, pages: u32, initial: usize) -> u64;

    /// Executes one transaction against a file.  Returns its statistics on commit, or
    /// the reason it aborted; the caller decides whether to retry.
    fn run_transaction(&self, file: u64, profile: &TxProfile) -> Result<TxStats, TxAbort>;

    /// Reads a page outside any transaction (for result verification).
    fn read_page(&self, file: u64, page: u32) -> Result<Bytes, TxAbort>;

    /// Physical page I/O statistics of the backing store, when the mechanism can
    /// see them (the Amoeba service reports its [`afs_core::PageIoStats`],
    /// including `pages_flushed_at_commit`; the baselines return `None`).  For a
    /// sharded store this is the sum over all shards.
    fn io_stats(&self) -> Option<afs_core::PageIoStats> {
        None
    }

    /// Per-shard physical page I/O statistics, in shard order, when the
    /// mechanism can see them.  An unsharded mechanism is one shard.
    fn shard_io_stats(&self) -> Option<Vec<afs_core::PageIoStats>> {
        self.io_stats().map(|stats| vec![stats])
    }

    /// RPC-client statistics (backed-off retry rounds, reconnects, in-flight
    /// high-water mark), when the mechanism runs over a remote connection.
    /// Local mechanisms and the baselines return `None`.
    fn client_stats(&self) -> Option<amoeba_rpc::ClientStats> {
        None
    }
}

// ---------------------------------------------------------------------------
// Any FileStore behind the uniform interface.
// ---------------------------------------------------------------------------

/// Drives any [`FileStore`] — the local service or a remote connection —
/// through the [`ConcurrencyControl`] interface.
pub struct StoreAdapter<S: FileStore> {
    store: S,
    name: &'static str,
    files: parking_lot::RwLock<std::collections::HashMap<u64, afs_core::Capability>>,
    next: std::sync::atomic::AtomicU64,
    /// Probe for the RPC-client statistics of the wrapped store, when it is a
    /// remote connection ([`FileStore`] itself has no transport to ask).
    client_stats: Option<Box<dyn Fn() -> amoeba_rpc::ClientStats + Send + Sync>>,
}

/// The local Amoeba file service behind the uniform interface.
pub type AmoebaAdapter = StoreAdapter<Arc<FileService>>;

impl<S: FileStore> StoreAdapter<S> {
    /// Wraps a store under the given mechanism name (shown in result tables).
    pub fn over(store: S, name: &'static str) -> Self {
        StoreAdapter {
            store,
            name,
            files: parking_lot::RwLock::new(std::collections::HashMap::new()),
            next: std::sync::atomic::AtomicU64::new(1),
            client_stats: None,
        }
    }

    /// Attaches a probe that reads the wrapped store's RPC-client statistics
    /// (e.g. `|| remote.stats()` or `|| sharded.client_stats()`), surfacing
    /// them through [`ConcurrencyControl::client_stats`].
    pub fn with_client_stats(
        mut self,
        probe: impl Fn() -> amoeba_rpc::ClientStats + Send + Sync + 'static,
    ) -> Self {
        self.client_stats = Some(Box::new(probe));
        self
    }

    /// The wrapped store.
    pub fn store(&self) -> &S {
        &self.store
    }

    fn file_cap(&self, file: u64) -> Result<afs_core::Capability, TxAbort> {
        self.files
            .read()
            .get(&file)
            .copied()
            .ok_or_else(|| TxAbort::Fault("unknown file handle".into()))
    }
}

impl AmoebaAdapter {
    /// Wraps an existing file service.
    pub fn new(service: Arc<FileService>) -> Self {
        StoreAdapter::over(service, "amoeba-occ")
    }

    /// Creates an adapter over a fresh in-memory service.
    pub fn in_memory() -> Self {
        Self::new(FileService::in_memory())
    }

    /// The wrapped service (for inspecting commit statistics).
    pub fn service(&self) -> &Arc<FileService> {
        self.store()
    }
}

fn page_path(index: u32) -> PagePath {
    PagePath::new(vec![index as u16])
}

impl<S: FileStore> ConcurrencyControl for StoreAdapter<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn create_file(&self, pages: u32, initial: usize) -> u64 {
        let cap = self.store.create_file().expect("create file");
        let version = self.store.create_version(&cap).expect("create version");
        for _ in 0..pages {
            self.store
                .append_page(&version, &PagePath::root(), Bytes::from(vec![0u8; initial]))
                .expect("append page");
        }
        self.store.commit(&version).expect("commit initial version");
        let handle = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.files.write().insert(handle, cap);
        handle
    }

    fn run_transaction(&self, file: u64, profile: &TxProfile) -> Result<TxStats, TxAbort> {
        let cap = self.file_cap(file)?;
        let version = self
            .store
            .create_version(&cap)
            .map_err(|e| TxAbort::Fault(e.to_string()))?;
        let mut stats = TxStats::default();
        // A page-op failure must not orphan the uncommitted version server-side;
        // abort it (best effort) before reporting the fault.
        let fault = |store: &S, version: &afs_core::Capability, e: FsError| {
            let _ = store.abort(version);
            TxAbort::Fault(e.to_string())
        };
        // Batched page operations: O(1) round trips per transaction on remote
        // stores, a plain loop on local ones.
        let read_paths: Vec<PagePath> = profile.reads.iter().map(|&i| page_path(i)).collect();
        if !read_paths.is_empty() {
            self.store
                .read_pages(&version, &read_paths)
                .map_err(|e| fault(&self.store, &version, e))?;
            stats.pages_read = read_paths.len();
        }
        let writes: Vec<(PagePath, Bytes)> = profile
            .writes
            .iter()
            .map(|(i, data)| (page_path(*i), data.clone()))
            .collect();
        if !writes.is_empty() {
            self.store
                .write_pages(&version, &writes)
                .map_err(|e| fault(&self.store, &version, e))?;
            stats.pages_written = writes.len();
        }
        match self.store.commit(&version) {
            Ok(receipt) => {
                stats.pages_validated = receipt.pages_compared;
                Ok(stats)
            }
            Err(FsError::SerialisabilityConflict) => Err(TxAbort::SerialisabilityConflict),
            Err(e) => Err(fault(&self.store, &version, e)),
        }
    }

    fn read_page(&self, file: u64, page: u32) -> Result<Bytes, TxAbort> {
        let cap = self.file_cap(file)?;
        let current = self
            .store
            .current_version(&cap)
            .map_err(|e| TxAbort::Fault(e.to_string()))?;
        self.store
            .read_committed_page(&current, &page_path(page))
            .map_err(|e| TxAbort::Fault(e.to_string()))
    }

    fn io_stats(&self) -> Option<afs_core::PageIoStats> {
        self.store.io_stats()
    }

    fn shard_io_stats(&self) -> Option<Vec<afs_core::PageIoStats>> {
        self.store.shard_io_stats()
    }

    fn client_stats(&self) -> Option<amoeba_rpc::ClientStats> {
        self.client_stats.as_ref().map(|probe| probe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amoeba_adapter_runs_simple_transactions() {
        let cc = AmoebaAdapter::in_memory();
        let file = cc.create_file(4, 8);
        let stats = cc
            .run_transaction(
                file,
                &TxProfile {
                    reads: vec![0, 1],
                    writes: vec![(2, Bytes::from_static(b"hello"))],
                },
            )
            .unwrap();
        assert_eq!(stats.pages_read, 2);
        assert_eq!(stats.pages_written, 1);
        assert_eq!(cc.read_page(file, 2).unwrap(), Bytes::from_static(b"hello"));
    }

    #[test]
    fn amoeba_adapter_reports_conflicts() {
        let cc = AmoebaAdapter::in_memory();
        let file = cc.create_file(2, 8);
        let service = Arc::clone(cc.service());
        // Interleave manually: create a version that reads page 0, then have another
        // transaction write page 0 and commit, then try to commit the first.
        let cap = cc.file_cap(file).unwrap();
        let stale = service.create_version(&cap).unwrap();
        service.read_page(&stale, &page_path(0)).unwrap();
        service
            .write_page(&stale, &page_path(1), Bytes::from_static(b"stale"))
            .unwrap();
        cc.run_transaction(
            file,
            &TxProfile::write_only(vec![(0, Bytes::from_static(b"winner"))]),
        )
        .unwrap();
        assert_eq!(
            service.commit(&stale).unwrap_err(),
            afs_core::FsError::SerialisabilityConflict
        );
    }

    #[test]
    fn unknown_file_handles_are_rejected() {
        let cc = AmoebaAdapter::in_memory();
        assert!(matches!(
            cc.run_transaction(99, &TxProfile::write_only(vec![])),
            Err(TxAbort::Fault(_))
        ));
    }
}
