//! An XDFS-style cache kept consistent with server→client callbacks (§5.4).
//!
//! XDFS "uses 'unsolicited messages' to tell clients to unlock cached data when it is
//! going to be modified.  This makes their caching strategy efficient only for data
//! that is rarely modified."  The Amoeba paper rejects this design because an active
//! client / passive server model should not require clients to be prepared for
//! messages they never asked for.
//!
//! This module implements the rejected design so experiment E3 can compare it against
//! Amoeba's validate-on-use cache: a [`CallbackCacheServer`] stores flat pages and
//! remembers which client caches which page; every write pushes an invalidation
//! message into the mailbox of every registered client, and clients must drain their
//! mailbox before they may trust their cache.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

/// Identifies a client at the callback server.
pub type ClientId = u64;

#[derive(Debug, Default)]
struct ServerState {
    /// Flat page store: (file, page) → contents.
    pages: HashMap<(u64, u32), Bytes>,
    /// Which clients hold which page in their cache.
    registrations: HashMap<(u64, u32), HashSet<ClientId>>,
    /// Per-client mailbox of invalidation messages (the "unsolicited messages").
    mailboxes: HashMap<ClientId, Vec<(u64, u32)>>,
    next_client: ClientId,
}

/// Statistics for the cache-strategy comparison (experiment E3).
#[derive(Debug, Default)]
pub struct CallbackStats {
    /// Unsolicited invalidation messages sent by the server.
    pub callbacks_sent: AtomicU64,
    /// Page fetches served to clients.
    pub fetches: AtomicU64,
    /// Writes processed.
    pub writes: AtomicU64,
}

/// The server half of the XDFS-style design.
#[derive(Default)]
pub struct CallbackCacheServer {
    state: Mutex<ServerState>,
    /// Statistics.
    pub stats: CallbackStats,
}

impl CallbackCacheServer {
    /// Creates an empty server.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Creates a file with `pages` zero-filled pages of `size` bytes.
    pub fn create_file(self: &Arc<Self>, file: u64, pages: u32, size: usize) {
        let mut state = self.state.lock();
        for page in 0..pages {
            state
                .pages
                .insert((file, page), Bytes::from(vec![0u8; size]));
        }
    }

    /// Registers a new client and returns its handle.
    pub fn connect(self: &Arc<Self>) -> CallbackClient {
        let id = {
            let mut state = self.state.lock();
            state.next_client += 1;
            let id = state.next_client;
            state.mailboxes.insert(id, Vec::new());
            id
        };
        CallbackClient {
            id,
            server: Arc::clone(self),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Writes a page directly at the server (e.g. on behalf of some other client) and
    /// sends invalidation callbacks to every client that caches it.
    pub fn write(&self, file: u64, page: u32, data: Bytes) {
        let mut state = self.state.lock();
        state.pages.insert((file, page), data);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let holders: Vec<ClientId> = state
            .registrations
            .get(&(file, page))
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        for client in holders {
            state
                .mailboxes
                .entry(client)
                .or_default()
                .push((file, page));
            self.stats.callbacks_sent.fetch_add(1, Ordering::Relaxed);
        }
        // The registrations are dropped: clients must re-register when they re-fetch.
        state.registrations.remove(&(file, page));
    }

    fn fetch(&self, client: ClientId, file: u64, page: u32) -> Option<Bytes> {
        let mut state = self.state.lock();
        let data = state.pages.get(&(file, page)).cloned()?;
        state
            .registrations
            .entry((file, page))
            .or_default()
            .insert(client);
        self.stats.fetches.fetch_add(1, Ordering::Relaxed);
        Some(data)
    }

    fn drain_mailbox(&self, client: ClientId) -> Vec<(u64, u32)> {
        let mut state = self.state.lock();
        state
            .mailboxes
            .get_mut(&client)
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

/// The client half: a cache that must process unsolicited invalidations.
pub struct CallbackClient {
    id: ClientId,
    server: Arc<CallbackCacheServer>,
    cache: Mutex<HashMap<(u64, u32), Bytes>>,
}

impl CallbackClient {
    /// Reads a page, using the local cache when it is valid.  Before trusting the
    /// cache the client must drain its mailbox of invalidations — the complexity the
    /// Amoeba design avoids.
    pub fn read(&self, file: u64, page: u32) -> Option<Bytes> {
        for (inv_file, inv_page) in self.server.drain_mailbox(self.id) {
            self.cache.lock().remove(&(inv_file, inv_page));
        }
        if let Some(hit) = self.cache.lock().get(&(file, page)).cloned() {
            return Some(hit);
        }
        let data = self.server.fetch(self.id, file, page)?;
        self.cache.lock().insert((file, page), data.clone());
        Some(data)
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.cache.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_reads_avoid_fetches_until_invalidated() {
        let server = CallbackCacheServer::new();
        server.create_file(1, 4, 8);
        let client = server.connect();
        assert_eq!(client.read(1, 0).unwrap(), Bytes::from(vec![0u8; 8]));
        for _ in 0..5 {
            client.read(1, 0).unwrap();
        }
        assert_eq!(server.stats.fetches.load(Ordering::Relaxed), 1);

        // A write by somebody else triggers an unsolicited callback; the next read
        // must re-fetch.
        server.write(1, 0, Bytes::from_static(b"changed"));
        assert_eq!(server.stats.callbacks_sent.load(Ordering::Relaxed), 1);
        assert_eq!(client.read(1, 0).unwrap(), Bytes::from_static(b"changed"));
        assert_eq!(server.stats.fetches.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn every_caching_client_receives_a_callback() {
        let server = CallbackCacheServer::new();
        server.create_file(7, 1, 4);
        let clients: Vec<CallbackClient> = (0..10).map(|_| server.connect()).collect();
        for client in &clients {
            client.read(7, 0).unwrap();
        }
        server.write(7, 0, Bytes::from_static(b"new"));
        // One unsolicited message per caching client — the cost the paper objects to.
        assert_eq!(server.stats.callbacks_sent.load(Ordering::Relaxed), 10);
        for client in &clients {
            assert_eq!(client.read(7, 0).unwrap(), Bytes::from_static(b"new"));
        }
    }

    #[test]
    fn uncached_pages_generate_no_callbacks() {
        let server = CallbackCacheServer::new();
        server.create_file(1, 2, 4);
        let client = server.connect();
        client.read(1, 0).unwrap();
        // Writing a page nobody caches sends no messages.
        server.write(1, 1, Bytes::from_static(b"quiet"));
        assert_eq!(server.stats.callbacks_sent.load(Ordering::Relaxed), 0);
        assert_eq!(client.cached_pages(), 1);
    }
}
