//! Baseline file servers the paper positions itself against (§3).
//!
//! The 1985 comparators — XDFS, FELIX and SWALLOW — are long gone, so this crate
//! re-implements their concurrency-control *mechanisms* over the same block service
//! the Amoeba File Service uses, which is what the paper actually argues about:
//!
//! * [`locking`] — a **two-phase locking** file server with *intentions lists* and
//!   rollback, in the style of XDFS/FELIX/Cambridge File Server.  Locks are granted
//!   per page, deadlocks are broken with a wait-die rule, and crash recovery must
//!   clear locks and discard or replay intentions lists — exactly the recovery work
//!   the Amoeba design claims to avoid.
//! * [`timestamp`] — a **timestamp-ordering** (pseudo-time) file server in the style
//!   of SWALLOW/Reed: each page carries read/write timestamps and transactions abort
//!   when they arrive out of order.
//! * [`callback_cache`] — an **XDFS-style client cache** kept consistent with
//!   server→client invalidation callbacks ("unsolicited messages"), the design §5.4
//!   explicitly rejects.
//!
//! [`interface::ConcurrencyControl`] is the uniform transaction interface the
//! experiment harness drives; [`interface::AmoebaAdapter`] exposes the real
//! `afs-core` service through the same interface so all three mechanisms run the
//! identical workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callback_cache;
pub mod interface;
pub mod locking;
pub mod timestamp;

pub use callback_cache::{CallbackCacheServer, CallbackClient};
pub use interface::{AmoebaAdapter, ConcurrencyControl, StoreAdapter, TxAbort, TxProfile, TxStats};
pub use locking::TwoPhaseLockingServer;
pub use timestamp::TimestampOrderingServer;
