//! A two-phase-locking file server with intentions lists (the XDFS / FELIX /
//! Cambridge File Server style of §3).
//!
//! Transactions acquire per-page read and write locks as they go (growing phase),
//! record their updates in an *intentions list*, and at commit apply the intentions
//! to the block store and release every lock (shrinking phase).  Deadlocks are broken
//! with the wait-die rule: an older transaction waits for a younger lock holder, a
//! younger one is killed and must retry.
//!
//! The crash behaviour is the part the paper cares about: a transaction that dies
//! mid-flight leaves locks held and a dangling intentions list, and the server must
//! run a recovery pass — clear the locks, throw away the intentions — before the
//! affected pages are usable again.  Experiment E4 measures exactly that work, which
//! the optimistic design does not have.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};

use amoeba_block::{BlockNr, BlockServer, MemStore};
use amoeba_capability::Capability;

use crate::interface::{ConcurrencyControl, TxAbort, TxProfile, TxStats};

/// Transaction identifier; doubles as the age for the wait-die rule (smaller = older).
pub type TxId = u64;

/// Lock table entry for one page.
#[derive(Debug, Default)]
struct PageLock {
    readers: HashSet<TxId>,
    writer: Option<TxId>,
}

impl PageLock {
    fn is_free_for_read(&self, me: TxId) -> bool {
        self.writer.is_none() || self.writer == Some(me)
    }
    fn is_free_for_write(&self, me: TxId) -> bool {
        (self.writer.is_none() || self.writer == Some(me)) && self.readers.iter().all(|&r| r == me)
    }
    fn blockers(&self, me: TxId) -> Vec<TxId> {
        let mut out: Vec<TxId> = self.readers.iter().copied().filter(|&r| r != me).collect();
        if let Some(w) = self.writer {
            if w != me {
                out.push(w);
            }
        }
        out
    }
}

#[derive(Debug)]
struct FileState {
    /// Page table: page index → block number.
    pages: Vec<BlockNr>,
    /// Lock table: page index → lock state.
    locks: HashMap<u32, PageLock>,
}

/// Counters describing locking activity (for the comparison tables).
#[derive(Debug, Default)]
pub struct LockingStats {
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transactions aborted by the wait-die rule.
    pub deadlock_aborts: AtomicU64,
    /// Times any transaction had to wait for a lock.
    pub lock_waits: AtomicU64,
    /// Locks cleared by crash recovery.
    pub recovery_locks_cleared: AtomicU64,
    /// Intentions lists discarded by crash recovery.
    pub recovery_intentions_discarded: AtomicU64,
}

/// A file's lock state paired with the condition variable its waiters block on.
type LockedFile = (Mutex<FileState>, Condvar);

/// One transaction's deferred writes: (file handle, page index, new contents).
type IntentionsList = Vec<(u64, u32, Bytes)>;

/// The two-phase-locking baseline server.
pub struct TwoPhaseLockingServer {
    block_server: Arc<BlockServer>,
    account: Capability,
    files: RwLock<HashMap<u64, Arc<LockedFile>>>,
    next_file: AtomicU64,
    next_tx: AtomicU64,
    /// Intentions lists of in-flight transactions (tx → (file, page, data)).
    intentions: Mutex<HashMap<TxId, IntentionsList>>,
    /// Statistics.
    pub stats: LockingStats,
}

impl TwoPhaseLockingServer {
    /// Creates a 2PL server over the given block server.
    pub fn new(block_server: Arc<BlockServer>) -> Self {
        let account = block_server.create_account();
        TwoPhaseLockingServer {
            block_server,
            account,
            files: RwLock::new(HashMap::new()),
            next_file: AtomicU64::new(1),
            next_tx: AtomicU64::new(1),
            intentions: Mutex::new(HashMap::new()),
            stats: LockingStats::default(),
        }
    }

    /// Creates a 2PL server over a fresh in-memory block store.
    pub fn in_memory() -> Self {
        Self::new(Arc::new(BlockServer::new(Arc::new(MemStore::new()))))
    }

    fn file(&self, file: u64) -> Result<Arc<(Mutex<FileState>, Condvar)>, TxAbort> {
        self.files
            .read()
            .get(&file)
            .cloned()
            .ok_or_else(|| TxAbort::Fault("unknown file handle".into()))
    }

    /// Begins an explicit transaction (used by the crash-recovery experiment; the
    /// [`ConcurrencyControl`] implementation drives the same object internally).
    pub fn begin(&self, file: u64) -> Transaction<'_> {
        let id = self.next_tx.fetch_add(1, Ordering::Relaxed);
        self.intentions.lock().insert(id, Vec::new());
        Transaction {
            server: self,
            file,
            id,
            held: Vec::new(),
            finished: false,
        }
    }

    /// Acquires a lock on (file, page) in the requested mode for transaction `tx`,
    /// applying wait-die.  Returns the number of times it had to wait.
    fn acquire(&self, file: u64, page: u32, tx: TxId, write: bool) -> Result<usize, TxAbort> {
        let entry = self.file(file)?;
        let (state, condvar) = &*entry;
        let mut guard = state.lock();
        let mut waits = 0usize;
        loop {
            let lock = guard.locks.entry(page).or_default();
            let free = if write {
                lock.is_free_for_write(tx)
            } else {
                lock.is_free_for_read(tx)
            };
            if free {
                if write {
                    lock.writer = Some(tx);
                } else {
                    lock.readers.insert(tx);
                }
                return Ok(waits);
            }
            // Wait-die: we may only wait for *younger* (larger id) holders; if any
            // holder is older than us, we die and retry later.
            if lock.blockers(tx).iter().any(|&holder| holder < tx) {
                self.stats.deadlock_aborts.fetch_add(1, Ordering::Relaxed);
                return Err(TxAbort::DeadlockVictim);
            }
            waits += 1;
            self.stats.lock_waits.fetch_add(1, Ordering::Relaxed);
            condvar.wait(&mut guard);
        }
    }

    fn release_all(&self, file: u64, tx: TxId) {
        if let Ok(entry) = self.file(file) {
            let (state, condvar) = &*entry;
            let mut guard = state.lock();
            for lock in guard.locks.values_mut() {
                lock.readers.remove(&tx);
                if lock.writer == Some(tx) {
                    lock.writer = None;
                }
            }
            drop(guard);
            condvar.notify_all();
        }
    }

    /// Simulates the server-side recovery pass after clients crashed mid-transaction:
    /// every lock held by a transaction in `crashed` is cleared and its intentions
    /// list is discarded.  Returns (locks cleared, intentions entries discarded).
    pub fn recover_after_crash(&self, crashed: &[TxId]) -> (usize, usize) {
        let crashed: HashSet<TxId> = crashed.iter().copied().collect();
        let mut locks_cleared = 0usize;
        for entry in self.files.read().values() {
            let (state, condvar) = &**entry;
            let mut guard = state.lock();
            for lock in guard.locks.values_mut() {
                let before = lock.readers.len() + usize::from(lock.writer.is_some());
                lock.readers.retain(|r| !crashed.contains(r));
                if lock.writer.is_some_and(|w| crashed.contains(&w)) {
                    lock.writer = None;
                }
                let after = lock.readers.len() + usize::from(lock.writer.is_some());
                locks_cleared += before - after;
            }
            drop(guard);
            condvar.notify_all();
        }
        let mut discarded = 0usize;
        let mut intentions = self.intentions.lock();
        for tx in &crashed {
            if let Some(list) = intentions.remove(tx) {
                discarded += list.len();
            }
        }
        self.stats
            .recovery_locks_cleared
            .fetch_add(locks_cleared as u64, Ordering::Relaxed);
        self.stats
            .recovery_intentions_discarded
            .fetch_add(discarded as u64, Ordering::Relaxed);
        (locks_cleared, discarded)
    }

    /// Returns the pages of `file` currently blocked behind a lock (inaccessible to
    /// new transactions), used by the crash experiments.
    pub fn locked_pages(&self, file: u64) -> usize {
        match self.file(file) {
            Ok(entry) => {
                let (state, _) = &*entry;
                let guard = state.lock();
                guard
                    .locks
                    .values()
                    .filter(|l| l.writer.is_some() || !l.readers.is_empty())
                    .count()
            }
            Err(_) => 0,
        }
    }
}

/// An explicit 2PL transaction.
pub struct Transaction<'a> {
    server: &'a TwoPhaseLockingServer,
    file: u64,
    id: TxId,
    held: Vec<u32>,
    finished: bool,
}

impl Transaction<'_> {
    /// The transaction identifier.
    pub fn id(&self) -> TxId {
        self.id
    }

    /// Reads a page under a read lock.
    pub fn read(&mut self, page: u32) -> Result<Bytes, TxAbort> {
        let waits = self.server.acquire(self.file, page, self.id, false)?;
        let _ = waits;
        self.held.push(page);
        let entry = self.server.file(self.file)?;
        let block = {
            let (state, _) = &*entry;
            let guard = state.lock();
            *guard
                .pages
                .get(page as usize)
                .ok_or_else(|| TxAbort::Fault(format!("no page {page}")))?
        };
        self.server
            .block_server
            .read(&self.server.account, block)
            .map_err(|e| TxAbort::Fault(e.to_string()))
    }

    /// Records a write in the intentions list under a write lock.
    pub fn write(&mut self, page: u32, data: Bytes) -> Result<(), TxAbort> {
        self.server.acquire(self.file, page, self.id, true)?;
        self.held.push(page);
        self.server
            .intentions
            .lock()
            .entry(self.id)
            .or_default()
            .push((self.file, page, data));
        Ok(())
    }

    /// Applies the intentions list and releases all locks.
    pub fn commit(mut self) -> Result<TxStats, TxAbort> {
        let intentions = self
            .server
            .intentions
            .lock()
            .remove(&self.id)
            .unwrap_or_default();
        let mut stats = TxStats {
            pages_written: intentions.len(),
            ..TxStats::default()
        };
        for (file, page, data) in intentions {
            let entry = self.server.file(file)?;
            let block = {
                let (state, _) = &*entry;
                let guard = state.lock();
                *guard
                    .pages
                    .get(page as usize)
                    .ok_or_else(|| TxAbort::Fault(format!("no page {page}")))?
            };
            self.server
                .block_server
                .write(&self.server.account, block, data)
                .map_err(|e| TxAbort::Fault(e.to_string()))?;
        }
        stats.pages_read = self.held.len().saturating_sub(stats.pages_written);
        self.server.release_all(self.file, self.id);
        self.server.stats.commits.fetch_add(1, Ordering::Relaxed);
        self.finished = true;
        Ok(stats)
    }

    /// Discards the intentions list and releases all locks.
    pub fn abort(mut self) {
        self.server.intentions.lock().remove(&self.id);
        self.server.release_all(self.file, self.id);
        self.finished = true;
    }

    /// Simulates the owning client crashing: locks stay held, the intentions list
    /// stays dangling, and only [`TwoPhaseLockingServer::recover_after_crash`] makes
    /// the pages accessible again.
    pub fn crash(mut self) -> TxId {
        self.finished = true;
        self.id
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.server.intentions.lock().remove(&self.id);
            self.server.release_all(self.file, self.id);
        }
    }
}

impl ConcurrencyControl for TwoPhaseLockingServer {
    fn name(&self) -> &'static str {
        "two-phase-locking"
    }

    fn create_file(&self, pages: u32, initial: usize) -> u64 {
        let mut table = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            let block = self
                .block_server
                .allocate_and_write(&self.account, Bytes::from(vec![0u8; initial]))
                .expect("allocate page");
            table.push(block);
        }
        let handle = self.next_file.fetch_add(1, Ordering::Relaxed);
        self.files.write().insert(
            handle,
            Arc::new((
                Mutex::new(FileState {
                    pages: table,
                    locks: HashMap::new(),
                }),
                Condvar::new(),
            )),
        );
        handle
    }

    fn run_transaction(&self, file: u64, profile: &TxProfile) -> Result<TxStats, TxAbort> {
        let mut tx = self.begin(file);
        let mut stats = TxStats::default();
        for &page in &profile.reads {
            tx.read(page)?;
            stats.pages_read += 1;
        }
        for (page, data) in &profile.writes {
            tx.write(*page, data.clone())?;
            stats.pages_written += 1;
        }
        let commit_stats = tx.commit()?;
        stats.lock_waits = commit_stats.lock_waits;
        Ok(stats)
    }

    fn read_page(&self, file: u64, page: u32) -> Result<Bytes, TxAbort> {
        let entry = self.file(file)?;
        let block = {
            let (state, _) = &*entry;
            let guard = state.lock();
            *guard
                .pages
                .get(page as usize)
                .ok_or_else(|| TxAbort::Fault(format!("no page {page}")))?
        };
        self.block_server
            .read(&self.account, block)
            .map_err(|e| TxAbort::Fault(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactions_read_and_write_pages() {
        let server = TwoPhaseLockingServer::in_memory();
        let file = server.create_file(4, 8);
        let stats = server
            .run_transaction(
                file,
                &TxProfile {
                    reads: vec![0],
                    writes: vec![(1, Bytes::from_static(b"locked write"))],
                },
            )
            .unwrap();
        assert_eq!(stats.pages_written, 1);
        assert_eq!(
            server.read_page(file, 1).unwrap(),
            Bytes::from_static(b"locked write")
        );
    }

    #[test]
    fn writes_are_invisible_until_commit() {
        let server = TwoPhaseLockingServer::in_memory();
        let file = server.create_file(1, 4);
        let mut tx = server.begin(file);
        tx.write(0, Bytes::from_static(b"pending")).unwrap();
        // Another (non-transactional) read still sees the old contents: the write is
        // only an intention so far.
        assert_eq!(
            server.read_page(file, 0).unwrap(),
            Bytes::from(vec![0u8; 4])
        );
        tx.commit().unwrap();
        assert_eq!(
            server.read_page(file, 0).unwrap(),
            Bytes::from_static(b"pending")
        );
    }

    #[test]
    fn abort_discards_intentions_and_releases_locks() {
        let server = TwoPhaseLockingServer::in_memory();
        let file = server.create_file(1, 4);
        let mut tx = server.begin(file);
        tx.write(0, Bytes::from_static(b"nope")).unwrap();
        tx.abort();
        assert_eq!(
            server.read_page(file, 0).unwrap(),
            Bytes::from(vec![0u8; 4])
        );
        assert_eq!(server.locked_pages(file), 0);
    }

    #[test]
    fn wait_die_kills_the_younger_transaction() {
        let server = TwoPhaseLockingServer::in_memory();
        let file = server.create_file(1, 4);
        let mut older = server.begin(file);
        let mut younger = server.begin(file);
        assert!(older.id() < younger.id());
        older.write(0, Bytes::from_static(b"older")).unwrap();
        // The younger transaction wants the same page and must die, not wait.
        assert_eq!(
            younger
                .write(0, Bytes::from_static(b"younger"))
                .unwrap_err(),
            TxAbort::DeadlockVictim
        );
        younger.abort();
        older.commit().unwrap();
    }

    #[test]
    fn concurrent_disjoint_transactions_proceed_in_parallel() {
        let server = Arc::new(TwoPhaseLockingServer::in_memory());
        let file = server.create_file(8, 8);
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let server = Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                for round in 0..20u32 {
                    let page = (t * 2 + round % 2) % 8;
                    let result = server.run_transaction(
                        file,
                        &TxProfile {
                            reads: vec![page],
                            writes: vec![(page, Bytes::from(vec![t as u8; 4]))],
                        },
                    );
                    // Wait-die may abort us; retrying is the client's job.
                    if result.is_err() {
                        continue;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(server.stats.commits.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn crashed_transactions_leave_locks_until_recovery() {
        let server = TwoPhaseLockingServer::in_memory();
        let file = server.create_file(2, 4);
        let mut tx = server.begin(file);
        tx.write(0, Bytes::from_static(b"half done")).unwrap();
        tx.read(1).unwrap();
        let crashed_id = tx.crash();

        // The pages are stuck: a new writer to page 0 dies or waits forever.
        assert!(server.locked_pages(file) >= 2);
        let mut blocked = server.begin(file);
        assert!(blocked.write(0, Bytes::from_static(b"blocked")).is_err());
        blocked.abort();

        // Recovery clears the locks and discards the intentions list; the write that
        // was in flight never becomes visible.
        let (locks, intents) = server.recover_after_crash(&[crashed_id]);
        assert!(locks >= 2);
        assert_eq!(intents, 1);
        assert_eq!(server.locked_pages(file), 0);
        assert_eq!(
            server.read_page(file, 0).unwrap(),
            Bytes::from(vec![0u8; 4])
        );
        server
            .run_transaction(
                file,
                &TxProfile::write_only(vec![(0, Bytes::from_static(b"post-recovery"))]),
            )
            .unwrap();
    }
}
