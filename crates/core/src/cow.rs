//! Copy-on-write page access within a version (§5.1).
//!
//! "For writing pages in a version, a 'copy-on-write' mechanism is used.  When a page
//! is written, a new block is allocated for it, leaving the old page intact. … Every
//! change thus bubbles up from the leaves of the page tree to the root page.  The root
//! page — the version page — is the only page that is written in place."
//!
//! Reading also shadows: "When a page is first read, the C, R, W, S and M flags it
//! contains for its child pages must be initialised to zero.  This requires changing
//! that page.  The Amoeba File Service must therefore not only shadow pages that were
//! written, but also pages whose descendants were read."
//!
//! The functions in this module maintain the flags exactly as the serialisability test
//! of [`crate::commit`] expects them:
//!
//! * every page on the path to an accessed page is copied (C set in the reference to
//!   it) and, if it is an interior step, marked searched (S);
//! * the reference to the accessed page itself gets R (data read), W (data written),
//!   S (references inspected) or S+M (references modified);
//! * accesses to the root page itself are recorded in the version page's own flag
//!   field, which the managing server keeps in the version header.
//!
//! # Deferred durability and write elision
//!
//! Shadowing and flag maintenance are *logical* operations: the paper only requires
//! the version's pages to be on disk at commit time.  Page writes made here
//! therefore go to the write-back buffer of [`crate::pageio::PageIo`] (when
//! [`crate::ServiceConfig::write_back`] is on, the default) and are flushed in one
//! batch by [`crate::commit`], so a k-operation update costs O(dirty pages)
//! physical writes at commit instead of O(k·depth) along the way.
//!
//! On top of that, the traversal **elides rewrites of unchanged pages**: once a
//! path is shadowed and its C/S flags are set, repeated accesses through it leave
//! the interior pages untouched — a page is marked dirty only when it was freshly
//! copied, a reference (block or flags) in it actually changed, or its data was
//! modified.  Pages are shared as `Arc<Page>` with the cache and the buffer, and
//! copied (`Arc::make_mut`-style) only at the moment they are first mutated.

use std::sync::Arc;

use bytes::Bytes;

use amoeba_block::BlockNr;
use amoeba_capability::{Capability, Rights};

use crate::flags::PageFlags;
use crate::page::{Page, PageRef, MAX_PAGE_DATA};
use crate::path::PagePath;
use crate::service::{FileService, VersionMeta, VersionState};
use crate::types::{FsError, Result};

/// Client-visible information about a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageInfo {
    /// Number of references to pages in the next level of the page tree.
    pub nrefs: u16,
    /// Number of client data bytes.
    pub dsize: u32,
}

/// What the caller wants to do to the target page of a traversal.
enum TargetAccess {
    /// Read the page's data.
    ReadData,
    /// Replace the page's data.
    WriteData(Bytes),
    /// Inspect the page's reference table (count/shape).
    ReadRefs,
    /// Insert a brand-new page at `index` with the given initial data.
    InsertPage { index: u16, data: Bytes },
    /// Insert a reference to an already existing page subtree (used by move).
    InsertExisting { index: u16, reference: PageRef },
    /// Remove the reference at `index`; the removed reference is returned.
    RemoveRef { index: u16 },
    /// Split the page's data at byte `keep`: the tail is moved into a new child page
    /// appended to the reference table.
    SplitData { keep: usize },
}

/// Result of a traversal.
enum AccessOutcome {
    Data(Bytes),
    Info(PageInfo),
    NewChild(u16),
    Removed(PageRef),
    Unit,
}

impl FileService {
    // ------------------------------------------------------------------
    // Public page operations on uncommitted versions.
    // ------------------------------------------------------------------

    /// Reads the client data of the page at `path` in an uncommitted version, marking
    /// the read in the version's read set.
    pub fn read_page(&self, version_cap: &Capability, path: &PagePath) -> Result<Bytes> {
        match self.access(version_cap, path, TargetAccess::ReadData)? {
            AccessOutcome::Data(data) => Ok(data),
            _ => unreachable!("ReadData returns Data"),
        }
    }

    /// Writes the client data of the page at `path`, copy-on-write.
    pub fn write_page(&self, version_cap: &Capability, path: &PagePath, data: Bytes) -> Result<()> {
        if data.len() > MAX_PAGE_DATA {
            return Err(FsError::PageTooLarge(data.len()));
        }
        self.access(version_cap, path, TargetAccess::WriteData(data))?;
        Ok(())
    }

    /// Returns the shape information (`nrefs`, `dsize`) of the page at `path`.  This
    /// counts as searching the page's references.
    pub fn page_info(&self, version_cap: &Capability, path: &PagePath) -> Result<PageInfo> {
        match self.access(version_cap, path, TargetAccess::ReadRefs)? {
            AccessOutcome::Info(info) => Ok(info),
            _ => unreachable!("ReadRefs returns Info"),
        }
    }

    /// Inserts a new page with `data` at reference index `index` of the page at
    /// `parent`, shifting later references up.  Returns the path of the new page.
    pub fn insert_page(
        &self,
        version_cap: &Capability,
        parent: &PagePath,
        index: u16,
        data: Bytes,
    ) -> Result<PagePath> {
        if data.len() > MAX_PAGE_DATA {
            return Err(FsError::PageTooLarge(data.len()));
        }
        match self.access(
            version_cap,
            parent,
            TargetAccess::InsertPage { index, data },
        )? {
            AccessOutcome::NewChild(index) => Ok(parent.child(index)),
            _ => unreachable!("InsertPage returns NewChild"),
        }
    }

    /// Appends a new page with `data` at the end of the reference table of the page at
    /// `parent`.  Returns the path of the new page.
    pub fn append_page(
        &self,
        version_cap: &Capability,
        parent: &PagePath,
        data: Bytes,
    ) -> Result<PagePath> {
        let info = self.page_info(version_cap, parent)?;
        self.insert_page(version_cap, parent, info.nrefs, data)
    }

    /// Removes the page at `path` (and, implicitly, the subtree below it) from its
    /// parent's reference table ("remove page").
    pub fn remove_page(&self, version_cap: &Capability, path: &PagePath) -> Result<()> {
        let parent = path.parent().ok_or(FsError::WrongFileKind)?;
        let index = path.last_index().expect("non-root path has a last index");
        self.access(version_cap, &parent, TargetAccess::RemoveRef { index })?;
        Ok(())
    }

    /// Splits the page at `path`: bytes `keep..` of its data move into a new page
    /// appended to its reference table ("split pages in two").
    pub fn split_page(
        &self,
        version_cap: &Capability,
        path: &PagePath,
        keep: usize,
    ) -> Result<PagePath> {
        match self.access(version_cap, path, TargetAccess::SplitData { keep })? {
            AccessOutcome::NewChild(index) => Ok(path.child(index)),
            _ => unreachable!("SplitData returns NewChild"),
        }
    }

    /// Moves the subtree rooted at `from` to become child `to_index` of the page at
    /// `to_parent` ("move subtrees to another part of the tree").  Returns the new
    /// path of the moved page.
    pub fn move_subtree(
        &self,
        version_cap: &Capability,
        from: &PagePath,
        to_parent: &PagePath,
        to_index: u16,
    ) -> Result<PagePath> {
        if from.is_prefix_of(to_parent) {
            return Err(FsError::NoSuchPage(format!(
                "cannot move {from} into its own subtree {to_parent}"
            )));
        }
        let from_parent = from.parent().ok_or(FsError::WrongFileKind)?;
        let from_index = from.last_index().expect("non-root path has a last index");
        let removed = match self.access(
            version_cap,
            &from_parent,
            TargetAccess::RemoveRef { index: from_index },
        )? {
            AccessOutcome::Removed(r) => r,
            _ => unreachable!("RemoveRef returns Removed"),
        };
        match self.access(
            version_cap,
            to_parent,
            TargetAccess::InsertExisting {
                index: to_index,
                reference: removed,
            },
        )? {
            AccessOutcome::NewChild(index) => Ok(to_parent.child(index)),
            _ => unreachable!("InsertExisting returns NewChild"),
        }
    }

    // ------------------------------------------------------------------
    // Reading committed versions (no flags, no shadowing).
    // ------------------------------------------------------------------

    /// Reads the client data of a page in a *committed* version.  Committed pages are
    /// immutable, so no flags are recorded and nothing is shadowed.
    pub fn read_committed_page(&self, version_cap: &Capability, path: &PagePath) -> Result<Bytes> {
        let meta = self.resolve_version(version_cap, Rights::READ)?;
        let (state, block) = {
            let meta = meta.lock();
            (meta.state, meta.block)
        };
        if state != VersionState::Committed {
            return Err(FsError::NotCommitted);
        }
        let page = self.read_page_tree_at(block, path)?;
        Ok(page.data.clone())
    }

    /// Reads the shape of a page in a committed version.
    pub fn committed_page_info(
        &self,
        version_cap: &Capability,
        path: &PagePath,
    ) -> Result<PageInfo> {
        let meta = self.resolve_version(version_cap, Rights::READ)?;
        let (state, block) = {
            let meta = meta.lock();
            (meta.state, meta.block)
        };
        if state != VersionState::Committed {
            return Err(FsError::NotCommitted);
        }
        let page = self.read_page_tree_at(block, path)?;
        Ok(PageInfo {
            nrefs: page.nrefs(),
            dsize: page.dsize(),
        })
    }

    /// Pure traversal from the page at `root_block` down `path`, with no flag
    /// maintenance.  Used for committed versions, the cache, and the serialisability
    /// test.
    pub(crate) fn read_page_tree_at(
        &self,
        root_block: BlockNr,
        path: &PagePath,
    ) -> Result<Arc<Page>> {
        let mut page = self.pages.read_page(root_block)?;
        for (depth, &index) in path.indices().iter().enumerate() {
            let reference = page.ref_at(index).map_err(|_| {
                FsError::NoSuchPage(PagePath::new(path.indices()[..=depth].to_vec()).to_string())
            })?;
            page = self.pages.read_page(reference.block)?;
        }
        Ok(page)
    }

    // ------------------------------------------------------------------
    // The traversal engine.
    // ------------------------------------------------------------------

    /// Stages a modified page of an uncommitted version: into the write-back buffer
    /// (tracked in the version's dirty set) or, with write-back disabled, straight
    /// through to the block service.
    fn stage_page(&self, meta: &mut VersionMeta, nr: BlockNr, page: &Arc<Page>) -> Result<()> {
        if self.config.write_back {
            self.pages.write_page_buffered(nr, page);
            meta.dirty_blocks.insert(nr);
            Ok(())
        } else {
            self.pages.write_page(nr, page)
        }
    }

    /// Allocates a block for a brand-new private page of an uncommitted version,
    /// buffered or write-through per configuration, and records ownership.
    fn stage_new_page(&self, meta: &mut VersionMeta, page: &Arc<Page>) -> Result<BlockNr> {
        let nr = if self.config.write_back {
            let nr = self.pages.allocate_page_buffered(page)?;
            meta.dirty_blocks.insert(nr);
            nr
        } else {
            self.pages.allocate_page(page)?
        };
        meta.owned_blocks.insert(nr);
        Ok(nr)
    }

    /// Walks from the version page to the target of `path`, shadowing pages and
    /// setting flags as required, and performs `access` on the target.  Only pages
    /// whose contents, references or flags actually changed are staged for writing;
    /// a traversal through an already shadowed, already flagged path rewrites
    /// nothing (shadow-trail write elision).
    fn access(
        &self,
        version_cap: &Capability,
        path: &PagePath,
        access: TargetAccess,
    ) -> Result<AccessOutcome> {
        let required = match access {
            TargetAccess::ReadData | TargetAccess::ReadRefs => Rights::READ,
            _ => Rights::WRITE,
        };
        let meta = self.resolve_version(version_cap, required)?;
        let mut meta = meta.lock();
        if meta.state != VersionState::Uncommitted {
            return Err(FsError::AlreadyCommitted);
        }
        let root_block = meta.block;
        let mut vpage = self.pages.read_page(root_block)?;

        if path.is_root() {
            // The target is the version page itself; record the access in the root
            // flags the managing server keeps for it.
            let header = vpage.version.as_ref().expect("version page has a header");
            let mut new_flags = header.root_flags;
            apply_root_access(&mut new_flags, &access);
            let dirty = new_flags != header.root_flags || access_mutates(&access);
            if !dirty {
                // Re-reading through an already recorded access: nothing changes.
                return read_only_outcome(&vpage, &access);
            }
            let vmut = Arc::make_mut(&mut vpage);
            vmut.version
                .as_mut()
                .expect("version page has a header")
                .root_flags = new_flags;
            let outcome = self.apply_target_access(vmut, &mut meta, access)?;
            self.stage_page(&mut meta, root_block, &vpage)?;
            return Ok(outcome);
        }

        // Descend, shadowing every page on the path so flags can be recorded in it.
        // `trail` holds the pages above the target together with their dirtiness.
        let indices = path.indices();
        let mut trail: Vec<(BlockNr, Arc<Page>, bool)> = Vec::with_capacity(indices.len());
        let mut current_dirty = {
            let header = vpage.version.as_ref().expect("version page has a header");
            if header.root_flags.copied && header.root_flags.searched {
                false
            } else {
                let h = Arc::make_mut(&mut vpage)
                    .version
                    .as_mut()
                    .expect("version page has a header");
                h.root_flags.copied = true;
                h.root_flags.searched = true;
                true
            }
        };
        let mut current_block = root_block;
        let mut current_page = vpage;

        for (depth, &index) in indices.iter().enumerate() {
            let is_target = depth == indices.len() - 1;
            let reference = current_page.ref_at(index).map_err(|_| {
                FsError::NoSuchPage(PagePath::new(indices[..=depth].to_vec()).to_string())
            })?;
            // Sub-file version pages embedded in a super-file's tree are managed
            // through the sub-file's own versions, never through the parent's.
            let child_page_probe = self.pages.read_page(reference.block)?;
            if child_page_probe.is_version_page() {
                return Err(FsError::WrongFileKind);
            }

            // Ensure the child is a private copy so its flags (and, for the target,
            // its data) can be changed without touching the base version.
            let (child_block, child_page, child_is_new) = if reference.flags.copied {
                (reference.block, child_page_probe, false)
            } else {
                let mut copy = (*child_page_probe).clone();
                copy.base_reference = Some(reference.block);
                copy.refs = copy
                    .refs
                    .iter()
                    .map(|r| PageRef {
                        block: r.block,
                        flags: PageFlags::CLEAR,
                    })
                    .collect();
                let copy = Arc::new(copy);
                let new_block = self.stage_new_page(&mut meta, &copy)?;
                (new_block, copy, true)
            };

            // Compute the flags the parent's reference must carry after this access.
            let mut new_flags = reference.flags;
            new_flags.copied = true;
            if is_target {
                match &access {
                    TargetAccess::ReadData => new_flags.read = true,
                    TargetAccess::WriteData(_) | TargetAccess::SplitData { .. } => {
                        new_flags.written = true
                    }
                    TargetAccess::ReadRefs => new_flags.searched = true,
                    TargetAccess::InsertPage { .. }
                    | TargetAccess::InsertExisting { .. }
                    | TargetAccess::RemoveRef { .. } => {
                        new_flags.searched = true;
                        new_flags.modified = true;
                    }
                }
                if matches!(access, TargetAccess::SplitData { .. }) {
                    // Splitting also rearranges the reference table of the target.
                    new_flags.searched = true;
                    new_flags.modified = true;
                }
            } else {
                // Interior step: the child's references are searched to go deeper.
                new_flags.searched = true;
            }
            // The parent is only rewritten if the reference actually changed —
            // repeated accesses through a shadowed, flagged path leave it alone.
            if child_is_new || new_flags != reference.flags {
                Arc::make_mut(&mut current_page).set_ref(
                    index,
                    PageRef {
                        block: child_block,
                        flags: new_flags,
                    },
                )?;
                current_dirty = true;
            }

            trail.push((current_block, current_page, current_dirty));
            current_block = child_block;
            current_page = child_page;
            // A fresh copy must be staged at least once; an existing private page is
            // only staged if the access below changes it.
            current_dirty = child_is_new;
        }

        // Apply the access to the target page.
        let outcome = if access_mutates(&access) || current_dirty {
            let outcome =
                self.apply_target_access(Arc::make_mut(&mut current_page), &mut meta, access)?;
            // Stage the target first, then the (private) pages along the path, root
            // last, so the buffer (and, in write-through mode, the disk) never holds
            // a parent referencing a page that has not been staged yet.
            self.stage_page(&mut meta, current_block, &current_page)?;
            outcome
        } else {
            read_only_outcome(&current_page, &access)?
        };
        for (block, page, dirty) in trail.into_iter().rev() {
            if dirty {
                self.stage_page(&mut meta, block, &page)?;
            }
        }
        Ok(outcome)
    }

    /// Applies the access to the target page's reference table / data.
    fn apply_target_access(
        &self,
        page: &mut Page,
        meta: &mut VersionMeta,
        access: TargetAccess,
    ) -> Result<AccessOutcome> {
        match access {
            TargetAccess::ReadData => Ok(AccessOutcome::Data(page.data.clone())),
            TargetAccess::WriteData(data) => {
                page.set_data(data)?;
                Ok(AccessOutcome::Unit)
            }
            TargetAccess::ReadRefs => Ok(AccessOutcome::Info(PageInfo {
                nrefs: page.nrefs(),
                dsize: page.dsize(),
            })),
            TargetAccess::InsertPage { index, data } => {
                let child = Arc::new(Page::leaf(data));
                let child_block = self.stage_new_page(meta, &child)?;
                let reference = PageRef {
                    block: child_block,
                    flags: PageFlags {
                        copied: true,
                        written: true,
                        ..PageFlags::CLEAR
                    },
                };
                page.insert_ref(index, reference)?;
                Ok(AccessOutcome::NewChild(index))
            }
            TargetAccess::InsertExisting { index, reference } => {
                page.insert_ref(index, reference)?;
                Ok(AccessOutcome::NewChild(index))
            }
            TargetAccess::RemoveRef { index } => {
                let removed = page.remove_ref(index)?;
                Ok(AccessOutcome::Removed(removed))
            }
            TargetAccess::SplitData { keep } => {
                let keep = keep.min(page.data.len());
                let tail = page.data.slice(keep..);
                let head = page.data.slice(..keep);
                let child = Arc::new(Page::leaf(tail));
                let child_block = self.stage_new_page(meta, &child)?;
                page.set_data(head)?;
                let index = page.push_ref(PageRef {
                    block: child_block,
                    flags: PageFlags {
                        copied: true,
                        written: true,
                        ..PageFlags::CLEAR
                    },
                })?;
                Ok(AccessOutcome::NewChild(index))
            }
        }
    }
}

/// Records an access to the root (version) page in its separate flag field.
fn apply_root_access(flags: &mut PageFlags, access: &TargetAccess) {
    flags.copied = true;
    match access {
        TargetAccess::ReadData => flags.read = true,
        TargetAccess::WriteData(_) => flags.written = true,
        TargetAccess::ReadRefs => flags.searched = true,
        TargetAccess::InsertPage { .. }
        | TargetAccess::InsertExisting { .. }
        | TargetAccess::RemoveRef { .. }
        | TargetAccess::SplitData { .. } => {
            flags.searched = true;
            flags.modified = true;
        }
    }
}

/// True if the access changes the target page's data or reference table (as opposed
/// to merely reading them).
fn access_mutates(access: &TargetAccess) -> bool {
    !matches!(access, TargetAccess::ReadData | TargetAccess::ReadRefs)
}

/// The outcome of a non-mutating access served without rewriting anything.
fn read_only_outcome(page: &Page, access: &TargetAccess) -> Result<AccessOutcome> {
    match access {
        TargetAccess::ReadData => Ok(AccessOutcome::Data(page.data.clone())),
        TargetAccess::ReadRefs => Ok(AccessOutcome::Info(PageInfo {
            nrefs: page.nrefs(),
            dsize: page.dsize(),
        })),
        _ => unreachable!("mutating accesses always dirty the target"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::FileService;

    fn setup() -> (std::sync::Arc<FileService>, Capability, Capability) {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let version = service.create_version(&file).unwrap();
        (service, file, version)
    }

    #[test]
    fn root_data_read_write_round_trip() {
        let (service, _file, v) = setup();
        let root = PagePath::root();
        assert_eq!(service.read_page(&v, &root).unwrap(), Bytes::new());
        service
            .write_page(&v, &root, Bytes::from_static(b"root data"))
            .unwrap();
        assert_eq!(
            service.read_page(&v, &root).unwrap(),
            Bytes::from_static(b"root data")
        );
    }

    #[test]
    fn nested_pages_can_be_built_and_read() {
        let (service, _file, v) = setup();
        let root = PagePath::root();
        let child = service
            .append_page(&v, &root, Bytes::from_static(b"child 0"))
            .unwrap();
        let grandchild = service
            .append_page(&v, &child, Bytes::from_static(b"grandchild 0.0"))
            .unwrap();
        assert_eq!(child, PagePath::new(vec![0]));
        assert_eq!(grandchild, PagePath::new(vec![0, 0]));
        assert_eq!(
            service.read_page(&v, &grandchild).unwrap(),
            Bytes::from_static(b"grandchild 0.0")
        );
        let info = service.page_info(&v, &root).unwrap();
        assert_eq!(info.nrefs, 1);
    }

    #[test]
    fn missing_paths_are_reported() {
        let (service, _file, v) = setup();
        let err = service.read_page(&v, &PagePath::new(vec![3])).unwrap_err();
        assert!(matches!(err, FsError::NoSuchPage(_)));
    }

    #[test]
    fn writes_do_not_disturb_the_committed_base_version() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        // Build and commit an initial tree.
        let v1 = service.create_version(&file).unwrap();
        let p = service
            .append_page(&v1, &PagePath::root(), Bytes::from_static(b"original"))
            .unwrap();
        service.commit(&v1).unwrap();
        let committed = service.current_version(&file).unwrap();

        // Modify the page in a new version.
        let v2 = service.create_version(&file).unwrap();
        service
            .write_page(&v2, &p, Bytes::from_static(b"changed"))
            .unwrap();
        assert_eq!(
            service.read_page(&v2, &p).unwrap(),
            Bytes::from_static(b"changed")
        );
        // The committed version still shows the original contents.
        assert_eq!(
            service.read_committed_page(&committed, &p).unwrap(),
            Bytes::from_static(b"original")
        );
    }

    #[test]
    fn copy_on_write_copies_each_page_only_once() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let v1 = service.create_version(&file).unwrap();
        let p = service
            .append_page(&v1, &PagePath::root(), Bytes::from_static(b"v1"))
            .unwrap();
        service.commit(&v1).unwrap();

        let v2 = service.create_version(&file).unwrap();
        let before = service.io_stats();
        service
            .write_page(&v2, &p, Bytes::from_static(b"first write"))
            .unwrap();
        let after_first = service.io_stats();
        service
            .write_page(&v2, &p, Bytes::from_static(b"second write"))
            .unwrap();
        let after_second = service.io_stats();
        // The first write copies the page; the second writes it in place.
        assert_eq!(after_first.pages_allocated - before.pages_allocated, 1);
        assert_eq!(
            after_second.pages_allocated - after_first.pages_allocated,
            0
        );
    }

    #[test]
    fn remove_and_insert_reshape_the_tree() {
        let (service, _file, v) = setup();
        let root = PagePath::root();
        for i in 0..3u8 {
            service
                .append_page(&v, &root, Bytes::from(vec![i]))
                .unwrap();
        }
        service.remove_page(&v, &PagePath::new(vec![1])).unwrap();
        let info = service.page_info(&v, &root).unwrap();
        assert_eq!(info.nrefs, 2);
        // The page that was at index 2 shifted down to index 1.
        assert_eq!(
            service.read_page(&v, &PagePath::new(vec![1])).unwrap(),
            Bytes::from(vec![2])
        );
        service
            .insert_page(&v, &root, 0, Bytes::from_static(b"front"))
            .unwrap();
        assert_eq!(
            service.read_page(&v, &PagePath::new(vec![0])).unwrap(),
            Bytes::from_static(b"front")
        );
    }

    #[test]
    fn split_moves_the_tail_into_a_new_child() {
        let (service, _file, v) = setup();
        let root = PagePath::root();
        let page = service
            .append_page(&v, &root, Bytes::from_static(b"head+tail"))
            .unwrap();
        let tail = service.split_page(&v, &page, 4).unwrap();
        assert_eq!(
            service.read_page(&v, &page).unwrap(),
            Bytes::from_static(b"head")
        );
        assert_eq!(
            service.read_page(&v, &tail).unwrap(),
            Bytes::from_static(b"+tail")
        );
    }

    #[test]
    fn move_subtree_relocates_pages() {
        let (service, _file, v) = setup();
        let root = PagePath::root();
        let a = service
            .append_page(&v, &root, Bytes::from_static(b"a"))
            .unwrap();
        let b = service
            .append_page(&v, &root, Bytes::from_static(b"b"))
            .unwrap();
        let a_child = service
            .append_page(&v, &a, Bytes::from_static(b"a/0"))
            .unwrap();
        // Move a's child under b.
        let new_path = service.move_subtree(&v, &a_child, &b, 0).unwrap();
        assert_eq!(new_path, b.child(0));
        assert_eq!(
            service.read_page(&v, &new_path).unwrap(),
            Bytes::from_static(b"a/0")
        );
        assert_eq!(service.page_info(&v, &a).unwrap().nrefs, 0);
    }

    #[test]
    fn moving_a_page_into_its_own_subtree_is_rejected() {
        let (service, _file, v) = setup();
        let root = PagePath::root();
        let a = service
            .append_page(&v, &root, Bytes::from_static(b"a"))
            .unwrap();
        let a_child = service
            .append_page(&v, &a, Bytes::from_static(b"a/0"))
            .unwrap();
        assert!(service.move_subtree(&v, &a, &a_child, 0).is_err());
    }

    #[test]
    fn oversized_page_writes_are_rejected() {
        let (service, _file, v) = setup();
        let err = service
            .write_page(
                &v,
                &PagePath::root(),
                Bytes::from(vec![0u8; MAX_PAGE_DATA + 1]),
            )
            .unwrap_err();
        assert!(matches!(err, FsError::PageTooLarge(_)));
    }

    #[test]
    fn committed_versions_reject_page_writes() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        service.commit(&v).unwrap();
        let err = service
            .write_page(&v, &PagePath::root(), Bytes::from_static(b"no"))
            .unwrap_err();
        assert_eq!(err, FsError::AlreadyCommitted);
    }

    #[test]
    fn read_only_version_capability_cannot_write() {
        let (service, _file, v) = setup();
        let ro = {
            let mut minter = service.minter.lock();
            minter.restrict(&v, Rights::READ).unwrap()
        };
        assert!(service.read_page(&ro, &PagePath::root()).is_ok());
        assert_eq!(
            service
                .write_page(&ro, &PagePath::root(), Bytes::from_static(b"x"))
                .unwrap_err(),
            FsError::PermissionDenied
        );
    }
}
