//! Version management: creating versions, the family tree (Fig. 4), and aborting.
//!
//! "A file … is a collection of versions, ordered in time.  When a new version is
//! created, it behaves as if it were a copy of the current version.  In fact, when it
//! is created, a new version shares its page tree with the current version, and only
//! when a page is changed is the page duplicated."
//!
//! The committed versions form a doubly linked list: each committed version's *base
//! reference* points at its predecessor and its *commit reference* at its successor.
//! Uncommitted versions hang off the committed list through their base references.

use std::collections::HashSet;

use amoeba_block::BlockNr;
use amoeba_capability::{Capability, Port, Rights};

use crate::flags::PageFlags;
use crate::page::{Page, PageRef, VersionHeader};
use crate::service::{FileMeta, FileService, VersionMeta, VersionState};
use crate::types::{FsError, Result};

/// Options controlling version creation (§5.3).
#[derive(Debug, Clone, Copy)]
pub struct VersionOptions {
    /// Honour a set *top lock* even on a small file (the "soft locking scheme": the
    /// caller knows its update is large and prefers to wait until the file is idle).
    pub respect_top_lock: bool,
    /// Wait for blocking locks.  When `false`, a blocked creation fails immediately
    /// with [`FsError::WouldBlock`].
    pub wait_for_locks: bool,
    /// Lock-holder identity to write into the top-lock field.  Defaults to the
    /// service port; super-file updates and experiments pass their own port so crash
    /// recovery can identify the owner.
    pub lock_port: Option<Port>,
}

impl Default for VersionOptions {
    fn default() -> Self {
        VersionOptions {
            respect_top_lock: false,
            wait_for_locks: true,
            lock_port: None,
        }
    }
}

/// A snapshot of a file's version family tree (Fig. 4), for inspection and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyTree {
    /// Block numbers of the committed versions, oldest first; the last entry is the
    /// current version.
    pub committed: Vec<BlockNr>,
    /// Uncommitted versions: (version page block, block of the committed version it
    /// is based on).
    pub uncommitted: Vec<(BlockNr, BlockNr)>,
}

impl FileService {
    /// Creates a new version of the file, based on its current version, using the
    /// default options (waiting on hierarchical locks, ignoring soft locks).
    pub fn create_version(&self, file_cap: &Capability) -> Result<Capability> {
        self.create_version_with(file_cap, VersionOptions::default())
    }

    /// Creates a new version with explicit locking behaviour.
    pub fn create_version_with(
        &self,
        file_cap: &Capability,
        options: VersionOptions,
    ) -> Result<Capability> {
        let file = self.resolve_file(file_cap, Rights::CREATE)?;
        let (file_id, is_super) = {
            let meta = file.lock();
            (meta.id, !meta.children.is_empty())
        };
        let lock_port = options.lock_port.unwrap_or(self.port);

        loop {
            let current_block = {
                let mut meta = file.lock();
                self.current_version_block_locked(&mut meta)?
            };
            // The §5.3 algorithm: test the lock fields and set the top lock in one
            // atomic operation on the current version block.
            match self.try_acquire_creation_lock(current_block, is_super, options, lock_port)? {
                LockAttempt::Acquired => {
                    // Hold the file's bookkeeping lock while the new version is
                    // instantiated and registered, so the garbage collector (which
                    // takes the same lock for its pass) can never observe a version
                    // that shares pages with the current version but is not yet in
                    // the version table.
                    let _creation_guard = file.lock();
                    return self.instantiate_version(file_id, current_block);
                }
                LockAttempt::NoLongerCurrent => {
                    // Another update committed while we were looking; re-resolve.
                    continue;
                }
                LockAttempt::Blocked(holder) => {
                    if !options.wait_for_locks {
                        return Err(FsError::WouldBlock);
                    }
                    self.wait_for_lock_clear(current_block, holder)?;
                }
            }
        }
    }

    /// Materialises a new uncommitted version page based on `base_block` and registers
    /// it in the version table.
    fn instantiate_version(&self, file_id: u64, base_block: BlockNr) -> Result<Capability> {
        let base_page = self.pages.read_page(base_block)?;
        let base_header = base_page
            .version
            .as_ref()
            .ok_or_else(|| FsError::CorruptPage("base is not a version page".into()))?;

        let version_id = self.next_object_id();
        let version_cap = self.minter.lock().mint(version_id, Rights::ALL);
        let file_cap = base_header.file_cap;

        let mut header = VersionHeader::new(file_cap, version_cap);
        header.parent_reference = base_header.parent_reference;
        let mut vpage = Page::version_page(header);
        vpage.base_reference = Some(base_block);
        // The new version shares its page tree with the current version: same
        // reference blocks, but all access flags initialised to zero.
        vpage.refs = base_page
            .refs
            .iter()
            .map(|r| PageRef {
                block: r.block,
                flags: PageFlags::CLEAR,
            })
            .collect();
        vpage.data = base_page.data.clone();
        let vpage = std::sync::Arc::new(vpage);
        // An uncommitted version page need not be durable until commit; in
        // write-back mode it starts life in the buffer.
        let mut dirty_blocks = HashSet::new();
        let block = if self.config.write_back {
            let block = self.pages.allocate_page_buffered(&vpage)?;
            dirty_blocks.insert(block);
            block
        } else {
            self.pages.allocate_page(&vpage)?
        };

        let meta = VersionMeta {
            cap: version_cap,
            file: file_id,
            block,
            state: VersionState::Uncommitted,
            owned_blocks: HashSet::new(),
            dirty_blocks,
        };
        self.register_version(version_id, meta);
        Ok(version_cap)
    }

    /// Aborts an uncommitted version: its private pages are freed and the version is
    /// forgotten.  Committed versions cannot be aborted.
    pub fn abort_version(&self, version_cap: &Capability) -> Result<()> {
        let meta = self.resolve_version(version_cap, Rights::DESTROY)?;
        let (state, block, owned, file_id) = {
            let meta = meta.lock();
            (meta.state, meta.block, meta.owned_blocks.clone(), meta.file)
        };
        if state == VersionState::Committed {
            return Err(FsError::AlreadyCommitted);
        }
        // Clear the top lock this version took on its base, so other (soft-locking or
        // super-file) updates stop waiting for an update that will never commit.
        let vpage = self.pages.read_page(block)?;
        if let Some(base) = vpage.base_reference {
            let _ = self.clear_top_lock_if_held(base);
        }
        // Freeing drops any buffered (never physically written) contents with the
        // blocks; the write-back buffer needs no separate teardown.
        for nr in owned {
            let _ = self.pages.free_page(nr);
        }
        self.pages.free_page(block)?;
        {
            let mut meta = meta.lock();
            meta.state = VersionState::Aborted;
            meta.owned_blocks.clear();
            meta.dirty_blocks.clear();
        }
        self.forget_version(version_cap.object, block);
        let _ = file_id;
        Ok(())
    }

    /// Returns the family tree of the file: the committed chain (oldest → current) and
    /// any uncommitted versions with the committed version they are based on.
    pub fn family_tree(&self, file_cap: &Capability) -> Result<FamilyTree> {
        let file = self.resolve_file(file_cap, Rights::READ)?;
        let (file_id, oldest) = {
            let meta = file.lock();
            (meta.id, meta.oldest_block)
        };
        let mut committed = Vec::new();
        let mut block = oldest;
        loop {
            let page = self.pages.read_page_uncached(block)?;
            let header = page
                .version
                .as_ref()
                .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
            committed.push(block);
            match header.commit_reference {
                Some(next) => block = next,
                None => break,
            }
        }
        let mut uncommitted = Vec::new();
        for meta in self.versions.read().values() {
            let meta = meta.lock();
            if meta.file == file_id && meta.state == VersionState::Uncommitted {
                let page = self.pages.read_page_uncached(meta.block)?;
                uncommitted.push((meta.block, page.base_reference.unwrap_or(meta.block)));
            }
        }
        uncommitted.sort_unstable();
        Ok(FamilyTree {
            committed,
            uncommitted,
        })
    }

    /// Returns the number of committed versions of the file.
    pub fn committed_version_count(&self, file_cap: &Capability) -> Result<usize> {
        Ok(self.family_tree(file_cap)?.committed.len())
    }

    /// Reads the version page at `block` and fails if it is not a version page.
    pub(crate) fn read_version_page_at(
        &self,
        block: BlockNr,
    ) -> Result<(std::sync::Arc<Page>, VersionHeader)> {
        let page = self.pages.read_page_uncached(block)?;
        let header = page
            .version
            .clone()
            .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
        Ok((page, header))
    }
}

/// Outcome of one attempt to take the creation lock on the current version block.
pub(crate) enum LockAttempt {
    /// The top lock was set (or was already ours); the caller may base a version on
    /// this block.
    Acquired,
    /// The block is no longer the current version (a commit raced us).
    NoLongerCurrent,
    /// A lock blocks creation; the payload is the holder's port.
    Blocked(Port),
}

#[allow(dead_code)]
fn _file_meta_is_used(m: &FileMeta) -> u64 {
    m.id
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn new_version_shares_the_page_tree_with_the_current_version() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        // Populate the current version with a page, then commit it.
        let v1 = service.create_version(&file).unwrap();
        service
            .append_page(
                &v1,
                &crate::path::PagePath::root(),
                Bytes::from_static(b"leaf"),
            )
            .unwrap();
        service.commit(&v1).unwrap();

        let io_before = service.io_stats();
        let v2 = service.create_version(&file).unwrap();
        let io_after = service.io_stats();
        // Creating the version allocates exactly one page: the new version page.  The
        // rest of the tree is shared.
        assert_eq!(io_after.pages_allocated - io_before.pages_allocated, 1);
        let _ = v2;
    }

    #[test]
    fn family_tree_links_committed_versions_in_order() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        for i in 0..3u8 {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &crate::path::PagePath::root(), Bytes::from(vec![i]))
                .unwrap();
            service.commit(&v).unwrap();
        }
        let tree = service.family_tree(&file).unwrap();
        assert_eq!(
            tree.committed.len(),
            4,
            "initial version plus three commits"
        );
        assert!(tree.uncommitted.is_empty());
        // The last committed entry is the current version.
        let current = service.current_version_block(&file).unwrap();
        assert_eq!(*tree.committed.last().unwrap(), current);
    }

    #[test]
    fn uncommitted_versions_appear_in_the_family_tree() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let current = service.current_version_block(&file).unwrap();
        let _v1 = service.create_version(&file).unwrap();
        let _v2 = service.create_version(&file).unwrap();
        let tree = service.family_tree(&file).unwrap();
        assert_eq!(tree.committed.len(), 1);
        assert_eq!(tree.uncommitted.len(), 2);
        for (_, base) in tree.uncommitted {
            assert_eq!(
                base, current,
                "uncommitted versions are based on the current version"
            );
        }
    }

    #[test]
    fn abort_frees_private_pages_and_forgets_the_version() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        service
            .append_page(
                &v,
                &crate::path::PagePath::root(),
                Bytes::from_static(b"scratch"),
            )
            .unwrap();
        let allocated_before_abort = service.io_stats().pages_allocated;
        let freed_before = service.io_stats().pages_freed;
        service.abort_version(&v).unwrap();
        let freed_after = service.io_stats().pages_freed;
        assert!(freed_after > freed_before);
        assert!(allocated_before_abort >= freed_after - freed_before);
        assert_eq!(
            service.version_state(&v).unwrap_err(),
            FsError::NoSuchVersion
        );
        // The file's current version is untouched.
        assert_eq!(service.committed_version_count(&file).unwrap(), 1);
    }

    #[test]
    fn committed_versions_cannot_be_aborted() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        service.commit(&v).unwrap();
        assert_eq!(
            service.abort_version(&v).unwrap_err(),
            FsError::AlreadyCommitted
        );
    }

    #[test]
    fn version_creation_without_waiting_reports_would_block() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        // Simulate two large updates by different clients that both honour soft
        // locks: the first takes the top lock; the second, seeing the hint, refuses
        // to proceed rather than wait.
        let first = VersionOptions {
            respect_top_lock: true,
            wait_for_locks: false,
            lock_port: Some(Port::from_raw(0x111)),
        };
        let second = VersionOptions {
            respect_top_lock: true,
            wait_for_locks: false,
            lock_port: Some(Port::from_raw(0x222)),
        };
        let _v1 = service.create_version_with(&file, first).unwrap();
        let err = service.create_version_with(&file, second).unwrap_err();
        assert_eq!(err, FsError::WouldBlock);
    }
}
