//! Page path names (§5).
//!
//! "Pages within a file are referred to by a pathname which is constructed as follows:
//! The root page has an empty pathname.  The pathname of a page that is not the root,
//! is the concatenation of the pathname of its parent page with the index of its
//! reference in the array of references in the parent page."
//!
//! Path names are visible to clients and give them explicit control over the shape of
//! their files: a linear file is a root with N children; a B-tree maps naturally onto
//! nested reference tables.

use std::fmt;

/// A page path: the sequence of reference-table indices leading from the version page
/// (root) to the page.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PagePath(Vec<u16>);

impl PagePath {
    /// The path of the root (version) page.
    pub const fn root() -> Self {
        PagePath(Vec::new())
    }

    /// Builds a path from reference indices.
    pub fn new(indices: impl Into<Vec<u16>>) -> Self {
        PagePath(indices.into())
    }

    /// The reference indices, outermost first.
    pub fn indices(&self) -> &[u16] {
        &self.0
    }

    /// True for the root page's (empty) path.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of components (= depth below the root).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Returns the path of this page's parent, or `None` for the root.
    pub fn parent(&self) -> Option<PagePath> {
        if self.0.is_empty() {
            None
        } else {
            Some(PagePath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The index of this page in its parent's reference table, or `None` for the root.
    pub fn last_index(&self) -> Option<u16> {
        self.0.last().copied()
    }

    /// Returns the path of child `index` of this page.
    pub fn child(&self, index: u16) -> PagePath {
        let mut v = self.0.clone();
        v.push(index);
        PagePath(v)
    }

    /// True if `self` is `other` or an ancestor of `other`.
    pub fn is_prefix_of(&self, other: &PagePath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Parses the textual form produced by `Display`: `/` for the root,
    /// `/3/0/7` for a nested page.
    pub fn parse(text: &str) -> Option<PagePath> {
        let trimmed = text.trim();
        if trimmed == "/" || trimmed.is_empty() {
            return Some(PagePath::root());
        }
        let mut indices = Vec::new();
        for part in trimmed.trim_start_matches('/').split('/') {
            indices.push(part.parse::<u16>().ok()?);
        }
        Some(PagePath(indices))
    }
}

impl fmt::Display for PagePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "/");
        }
        for idx in &self.0 {
            write!(f, "/{idx}")?;
        }
        Ok(())
    }
}

impl From<&[u16]> for PagePath {
    fn from(indices: &[u16]) -> Self {
        PagePath(indices.to_vec())
    }
}

impl From<Vec<u16>> for PagePath {
    fn from(indices: Vec<u16>) -> Self {
        PagePath(indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_path_properties() {
        let root = PagePath::root();
        assert!(root.is_root());
        assert_eq!(root.depth(), 0);
        assert_eq!(root.parent(), None);
        assert_eq!(root.last_index(), None);
        assert_eq!(root.to_string(), "/");
    }

    #[test]
    fn child_and_parent_are_inverse() {
        let p = PagePath::root().child(3).child(0).child(7);
        assert_eq!(p.depth(), 3);
        assert_eq!(p.to_string(), "/3/0/7");
        assert_eq!(p.last_index(), Some(7));
        assert_eq!(p.parent().unwrap().to_string(), "/3/0");
        assert_eq!(
            p.parent().unwrap().parent().unwrap().parent().unwrap(),
            PagePath::root()
        );
    }

    #[test]
    fn prefix_relation() {
        let a = PagePath::new(vec![1, 2]);
        let b = PagePath::new(vec![1, 2, 3]);
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(PagePath::root().is_prefix_of(&a));
        let c = PagePath::new(vec![1, 3]);
        assert!(!a.is_prefix_of(&c));
    }

    #[test]
    fn parse_round_trips_display() {
        for p in [
            PagePath::root(),
            PagePath::new(vec![0]),
            PagePath::new(vec![5, 4, 3, 2, 1]),
        ] {
            assert_eq!(PagePath::parse(&p.to_string()).unwrap(), p);
        }
        assert_eq!(PagePath::parse("garbage"), None);
    }
}
