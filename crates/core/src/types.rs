//! Identifiers and error types of the file service.

use std::error::Error;
use std::fmt;

use amoeba_block::{BlockError, BlockNr};

/// Identifies a file at a file service.  Carried as the object number of the file
/// capability.
pub type FileId = u64;

/// Identifies a version of a file.  Carried as the object number of the version
/// capability.
pub type VersionId = u64;

/// A "nil" block reference.  The paper represents nil base/commit references with a
/// reserved value; we use the all-ones 28-bit pattern, which the block service never
/// allocates because [`amoeba_block::MAX_BLOCK_NR`] is its last valid block and the
/// stores hand numbers out from zero upward.
pub const NIL_BLOCK: BlockNr = amoeba_block::MAX_BLOCK_NR;

/// Converts an optional block number to its on-page encoding.
pub fn encode_block_ref(nr: Option<BlockNr>) -> u32 {
    nr.unwrap_or(NIL_BLOCK)
}

/// Converts an on-page block reference back to an optional block number.
pub fn decode_block_ref(raw: u32) -> Option<BlockNr> {
    if raw == NIL_BLOCK {
        None
    } else {
        Some(raw)
    }
}

/// Errors returned by the file service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The presented capability was rejected.
    PermissionDenied,
    /// No file with this identity exists.
    NoSuchFile,
    /// No version with this identity exists.
    NoSuchVersion,
    /// A path component does not refer to an existing page reference.
    NoSuchPage(String),
    /// The operation is only valid on an uncommitted version.
    AlreadyCommitted,
    /// The operation is only valid on a committed version.
    NotCommitted,
    /// Commit failed because the concurrent updates are not serialisable; the client
    /// must redo the update on a fresh version (§5.2).
    SerialisabilityConflict,
    /// The page data exceeds the 32 KiB transaction bound of §5.
    PageTooLarge(usize),
    /// A reference index is out of range for the page.
    BadReferenceIndex(u16),
    /// The file is locked by another update and the caller asked not to wait.
    WouldBlock,
    /// Waiting for a lock was abandoned because the holder appears to have crashed
    /// and recovery could not proceed.
    LockTimeout,
    /// The operation is not valid for this kind of file (small file vs super-file).
    WrongFileKind,
    /// The underlying block service failed.
    Block(BlockError),
    /// An on-disk page could not be decoded.
    CorruptPage(String),
    /// The transport to a remote file service failed (server crashed, message
    /// lost, no server reachable).  Only produced by remote stores.
    Transport(String),
    /// A wire message could not be encoded or decoded.  Only produced by remote
    /// stores.
    Protocol(String),
    /// A remote file service rejected the operation with an error that has no
    /// structured encoding; the string is the remote error text.
    Remote(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::PermissionDenied => write!(f, "permission denied"),
            FsError::NoSuchFile => write!(f, "no such file"),
            FsError::NoSuchVersion => write!(f, "no such version"),
            FsError::NoSuchPage(path) => write!(f, "no page at path {path}"),
            FsError::AlreadyCommitted => write!(f, "version is already committed"),
            FsError::NotCommitted => write!(f, "version is not committed"),
            FsError::SerialisabilityConflict => {
                write!(f, "commit failed: concurrent updates are not serialisable")
            }
            FsError::PageTooLarge(n) => write!(f, "page data of {n} bytes exceeds 32 KiB"),
            FsError::BadReferenceIndex(i) => write!(f, "reference index {i} out of range"),
            FsError::WouldBlock => write!(f, "file is locked by another update"),
            FsError::LockTimeout => write!(f, "timed out waiting for a lock"),
            FsError::WrongFileKind => write!(f, "operation not valid for this kind of file"),
            FsError::Block(e) => write!(f, "block service error: {e}"),
            FsError::CorruptPage(msg) => write!(f, "corrupt page: {msg}"),
            FsError::Transport(msg) => write!(f, "transport error: {msg}"),
            FsError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            FsError::Remote(msg) => write!(f, "remote error: {msg}"),
        }
    }
}

impl Error for FsError {}

impl From<BlockError> for FsError {
    fn from(e: BlockError) -> Self {
        match e {
            BlockError::PermissionDenied => FsError::PermissionDenied,
            other => FsError::Block(other),
        }
    }
}

/// Result alias for file-service operations.
pub type Result<T> = std::result::Result<T, FsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_block_round_trips() {
        assert_eq!(decode_block_ref(encode_block_ref(None)), None);
        assert_eq!(decode_block_ref(encode_block_ref(Some(17))), Some(17));
    }

    #[test]
    fn block_error_converts_permission() {
        assert_eq!(
            FsError::from(BlockError::PermissionDenied),
            FsError::PermissionDenied
        );
        assert!(matches!(
            FsError::from(BlockError::Full),
            FsError::Block(BlockError::Full)
        ));
    }
}
