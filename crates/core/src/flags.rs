//! The C, R, W, S, M page-reference flags and their 4-bit encoding (§5.1).
//!
//! Every page reference carries five flags describing how the *referred-to* page has
//! been used in this version:
//!
//! * **C** — the page was *copied* and is no longer shared with the version it was
//!   based on;
//! * **R** — the page's data was *read*;
//! * **W** — the page's data was *written* (changed);
//! * **S** — the page's references were used (*searched*);
//! * **M** — the page's references were *modified* (insert page, remove page, make
//!   hole, remove hole).
//!
//! Two structural facts reduce the 32 raw combinations to 13 legal ones, which is what
//! lets Amoeba encode the flags in four bits next to a 28-bit block number:
//!
//! 1. "it is not possible to access a page without copying it" — any of R, W, S, M
//!    implies C;
//! 2. "it is not possible to modify the references without looking at them" — M
//!    implies S.

use crate::types::{FsError, Result};

/// The access flags of one page reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct PageFlags {
    /// Copied: the page is private to this version.
    pub copied: bool,
    /// Read: the page's data has been read.
    pub read: bool,
    /// Written: the page's data has been changed.
    pub written: bool,
    /// Searched: the page's references have been consulted.
    pub searched: bool,
    /// Modified: the page's references have been changed.
    pub modified: bool,
}

impl PageFlags {
    /// All flags clear: the page is still shared with the base version and untouched.
    pub const CLEAR: PageFlags = PageFlags {
        copied: false,
        read: false,
        written: false,
        searched: false,
        modified: false,
    };

    /// Returns true if the combination satisfies the paper's invariants
    /// (R|W|S|M ⇒ C, and M ⇒ S).
    pub fn is_legal(self) -> bool {
        let accessed = self.read || self.written || self.searched || self.modified;
        (!accessed || self.copied) && (!self.modified || self.searched)
    }

    /// Returns true if the referred-to page (and hence its whole subtree) is untouched
    /// in this version.  An untouched subtree need not be descended by the
    /// serialisability test.
    pub fn is_untouched(self) -> bool {
        !self.copied
    }

    /// Returns true if the flags record an access that belongs to a version's *read
    /// set* in the sense of the validation test: the page's data was read or its
    /// references were searched.
    pub fn in_read_set(self) -> bool {
        self.read || self.searched
    }

    /// Returns true if the flags record an access that belongs to a version's *write
    /// set*: the page's data was written or its references were modified.
    pub fn in_write_set(self) -> bool {
        self.written || self.modified
    }

    /// Encodes the flags into the 4-bit code stored next to the 28-bit block number.
    ///
    /// Code 0 is the all-clear combination; codes 1–12 enumerate the twelve legal
    /// combinations that have C set: two bits for R and W, and a trit for the
    /// (S, M) state which can only be (0,0), (1,0) or (1,1).
    pub fn encode(self) -> Result<u8> {
        if !self.is_legal() {
            return Err(FsError::CorruptPage(format!(
                "illegal flag combination {self:?}"
            )));
        }
        if !self.copied {
            return Ok(0);
        }
        let rw = (self.read as u8) | ((self.written as u8) << 1);
        let sm = match (self.searched, self.modified) {
            (false, false) => 0u8,
            (true, false) => 1,
            (true, true) => 2,
            (false, true) => unreachable!("M implies S was checked by is_legal"),
        };
        Ok(1 + rw + 4 * sm)
    }

    /// Decodes a 4-bit flag code.  Codes 13–15 are invalid.
    pub fn decode(code: u8) -> Result<PageFlags> {
        if code == 0 {
            return Ok(PageFlags::CLEAR);
        }
        if code > 12 {
            return Err(FsError::CorruptPage(format!("invalid flag code {code}")));
        }
        let v = code - 1;
        let rw = v % 4;
        let sm = v / 4;
        let (searched, modified) = match sm {
            0 => (false, false),
            1 => (true, false),
            2 => (true, true),
            _ => unreachable!("code <= 12 bounds sm to 0..=2"),
        };
        Ok(PageFlags {
            copied: true,
            read: rw & 1 != 0,
            written: rw & 2 != 0,
            searched,
            modified,
        })
    }

    /// Enumerates all 13 legal flag combinations (used by tests and the page-codec
    /// property tests).
    pub fn all_legal() -> Vec<PageFlags> {
        let mut combos = Vec::new();
        for bits in 0u8..32 {
            let f = PageFlags {
                copied: bits & 1 != 0,
                read: bits & 2 != 0,
                written: bits & 4 != 0,
                searched: bits & 8 != 0,
                modified: bits & 16 != 0,
            };
            if f.is_legal() {
                combos.push(f);
            }
        }
        combos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_thirteen_legal_combinations() {
        assert_eq!(PageFlags::all_legal().len(), 13);
    }

    #[test]
    fn every_legal_combination_round_trips_through_four_bits() {
        for flags in PageFlags::all_legal() {
            let code = flags.encode().unwrap();
            assert!(code < 16, "code {code} does not fit in four bits");
            assert_eq!(PageFlags::decode(code).unwrap(), flags);
        }
    }

    #[test]
    fn codes_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for flags in PageFlags::all_legal() {
            assert!(seen.insert(flags.encode().unwrap()));
        }
    }

    #[test]
    fn illegal_combinations_are_rejected() {
        // Read without copy.
        let f = PageFlags {
            read: true,
            ..PageFlags::CLEAR
        };
        assert!(!f.is_legal());
        assert!(f.encode().is_err());
        // Modified without searched.
        let f = PageFlags {
            copied: true,
            modified: true,
            ..PageFlags::CLEAR
        };
        assert!(!f.is_legal());
    }

    #[test]
    fn invalid_codes_are_rejected() {
        for code in 13u8..=15 {
            assert!(PageFlags::decode(code).is_err());
        }
    }

    #[test]
    fn read_and_write_set_classification() {
        let clear = PageFlags::CLEAR;
        assert!(!clear.in_read_set() && !clear.in_write_set());

        let read = PageFlags {
            copied: true,
            read: true,
            ..PageFlags::CLEAR
        };
        assert!(read.in_read_set() && !read.in_write_set());

        let written = PageFlags {
            copied: true,
            written: true,
            ..PageFlags::CLEAR
        };
        assert!(written.in_write_set() && !written.in_read_set());

        let searched = PageFlags {
            copied: true,
            searched: true,
            ..PageFlags::CLEAR
        };
        assert!(searched.in_read_set());

        let modified = PageFlags {
            copied: true,
            searched: true,
            modified: true,
            ..PageFlags::CLEAR
        };
        assert!(modified.in_write_set());
        // A modified page is also in the read set, because modifying references
        // requires consulting them.
        assert!(modified.in_read_set());
    }

    #[test]
    fn untouched_means_not_copied() {
        assert!(PageFlags::CLEAR.is_untouched());
        let copied = PageFlags {
            copied: true,
            ..PageFlags::CLEAR
        };
        assert!(!copied.is_untouched());
    }
}
