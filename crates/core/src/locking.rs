//! The hierarchical locking mechanism for super-file updates (§5.3).
//!
//! Every version page carries two lock fields, the *top lock* and the *inner lock*;
//! locks only have meaning in the current version, and "locks are made of ports".
//!
//! * Creating a version of a **super-file** requires both lock fields of the current
//!   version block to be zero; the top lock is then set in the same atomic operation.
//! * Creating a version of a **small file** only requires the *inner* lock to be
//!   clear (so an enclosing super-file update excludes it), but still sets the top
//!   lock — which other updates may treat as a *hint* (the soft-locking scheme) that
//!   the file is about to change.
//! * A super-file update sets *inner locks* on the version blocks of the sub-files it
//!   visits, giving it exclusive access to exactly the subtrees it touches while
//!   leaving all other small files fully concurrent.
//!
//! Crucially, the scheme needs **no special crash recovery**: when the process holding
//! the locks dies, a waiter inspects the locked version block.  If its commit
//! reference is still nil the crashed update never committed, so the locks can simply
//! be cleared; if it is set, the new current version is traversed and the sub-files'
//! commit references are set, *finishing the crashed server's work* — after which the
//! locks are irrelevant because they live in superseded version pages.

use std::time::{Duration, Instant};

use amoeba_block::BlockNr;
use amoeba_capability::{Capability, Port, Rights};

use crate::page::Page;
use crate::service::{FileService, VersionState};
use crate::types::{FsError, Result};
use crate::version::{LockAttempt, VersionOptions};

/// A super-file update in progress: the top-locked super-file version plus the
/// inner-locked sub-file versions opened so far.
///
/// The handle is deliberately a plain data object (not a RAII guard): a crashed client
/// simply stops driving it, which is exactly the failure mode the §5.3 recovery
/// procedure is designed for.
#[derive(Debug)]
pub struct SuperUpdate {
    /// Capability of the super-file being updated.
    pub super_file: Capability,
    /// The new (uncommitted) version of the super-file.
    pub super_version: Capability,
    /// Port identifying this update in the lock fields.
    pub port: Port,
    /// Sub-files opened by this update: (sub-file capability, new sub version
    /// capability, block of the sub-file's current version page that carries the
    /// inner lock).
    pub sub_versions: Vec<(Capability, Capability, BlockNr)>,
    /// Block of the super-file's old current version page carrying the top lock.
    pub locked_block: BlockNr,
}

/// Statistics about lock recovery, for the crash experiments (E4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockRecoveryReport {
    /// Top locks cleared because the holder crashed before committing.
    pub cleared: usize,
    /// Sub-file commits finished on behalf of a crashed holder.
    pub finished_commits: usize,
}

impl FileService {
    // ------------------------------------------------------------------
    // Lock acquisition during version creation (§5.3 algorithm).
    // ------------------------------------------------------------------

    /// One atomic attempt to take the creation lock on the current version block:
    /// test the lock fields and set the top lock in a single block-level critical
    /// section.
    pub(crate) fn try_acquire_creation_lock(
        &self,
        current_block: BlockNr,
        is_super: bool,
        options: VersionOptions,
        lock_port: Port,
    ) -> Result<LockAttempt> {
        self.pages.update_page(current_block, |page| {
            let header = page
                .version
                .as_mut()
                .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
            if header.commit_reference.is_some() {
                return Ok((false, LockAttempt::NoLongerCurrent));
            }
            // An inner lock always blocks: an enclosing super-file update owns this
            // subtree.
            if !header.inner_lock.is_null() && header.inner_lock != lock_port {
                return Ok((false, LockAttempt::Blocked(header.inner_lock)));
            }
            // The top lock blocks super-file updates always, and small-file updates
            // only when they opt into the soft-locking scheme.
            let top_blocks = is_super || options.respect_top_lock;
            if top_blocks && !header.top_lock.is_null() && header.top_lock != lock_port {
                return Ok((false, LockAttempt::Blocked(header.top_lock)));
            }
            header.top_lock = lock_port;
            Ok((true, LockAttempt::Acquired))
        })
    }

    /// Waits for the lock on `block` held by `holder` to clear, running the §5.3
    /// crash-recovery procedure if the holder is known (or discovered) to be dead.
    pub(crate) fn wait_for_lock_clear(&self, block: BlockNr, holder: Port) -> Result<()> {
        let start = Instant::now();
        loop {
            if self.is_port_crashed(holder) {
                self.recover_locked_version(block)?;
                return Ok(());
            }
            let (_, header) = self.read_version_page_at(block)?;
            // The lock may have been released, the version superseded, or taken over
            // by someone else; any of these means the caller should re-evaluate.
            if header.commit_reference.is_some()
                || (header.top_lock != holder && header.inner_lock != holder)
            {
                return Ok(());
            }
            if start.elapsed() > self.config.lock_patience {
                // The holder has been silent for longer than we are willing to wait.
                // Treat it as crashed: the paper's waiting mechanism learns of the
                // crash through the failure of the holder's outstanding transactions;
                // our stand-in for that signal is this patience timeout.
                self.recover_locked_version(block)?;
                return Ok(());
            }
            std::thread::sleep(self.config.lock_poll_interval);
        }
    }

    /// Clears the top lock on `block` if it is held by this service's port or by a
    /// crashed port.  Used when an update is abandoned (aborted version).
    pub(crate) fn clear_top_lock_if_held(&self, block: BlockNr) -> Result<()> {
        self.pages.update_page(block, |page| {
            let header = page
                .version
                .as_mut()
                .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
            if header.top_lock.is_null() {
                Ok((false, ()))
            } else {
                header.top_lock = Port::NULL;
                Ok((true, ()))
            }
        })
    }

    // ------------------------------------------------------------------
    // Crash recovery of locks (§5.3).
    // ------------------------------------------------------------------

    /// The waiter-side recovery procedure for a locked version block whose holder has
    /// crashed.
    ///
    /// * If the block's commit reference is nil, the crashed update never committed:
    ///   the top lock is cleared, and inner locks with the same port on sub-file
    ///   version blocks are cleared as well.
    /// * If the commit reference is set, the version it refers to is current; the
    ///   locked version and the current version are traversed together and the commit
    ///   references of the sub-files are set, finishing the work of the crashed
    ///   server, before the locks are cleared.
    pub fn recover_locked_version(&self, block: BlockNr) -> Result<LockRecoveryReport> {
        let mut report = LockRecoveryReport::default();
        let (page, header) = self.read_version_page_at(block)?;
        let holder = header.top_lock;

        match header.commit_reference {
            None => {
                // Crashed before committing: clear the top lock …
                if !holder.is_null() {
                    self.pages.update_page(block, |p| {
                        let h = p
                            .version
                            .as_mut()
                            .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
                        if h.top_lock == holder {
                            h.top_lock = Port::NULL;
                            Ok((true, ()))
                        } else {
                            Ok((false, ()))
                        }
                    })?;
                    report.cleared += 1;
                }
                // … and any inner locks with the same port on sub-file version pages
                // referenced from this super-file's tree.
                self.clear_inner_locks_below(&page, holder, &mut report)?;
                self.clear_inner_locks_of_children(header.file_cap.object, holder, &mut report)?;
            }
            Some(new_current) => {
                // Crashed after committing the super-file but before finishing the
                // sub-files: finish its work by walking the new current version.
                let (new_page, _) = self.read_version_page_at(new_current)?;
                self.finish_subfile_commits(&new_page, &mut report)?;
                // Clear inner locks left behind on superseded sub-file version pages.
                self.clear_inner_locks_below(&page, holder, &mut report)?;
                self.clear_inner_locks_of_children(header.file_cap.object, holder, &mut report)?;
            }
        }
        Ok(report)
    }

    /// Clears inner locks set by `holder` on the *current* version pages of the
    /// registered sub-files of `file_id`.  The super-file's superseded version pages
    /// may reference older sub-file versions, so the file table is consulted as well;
    /// the paper's waiters achieve the same effect lazily by ascending the system tree
    /// and ignoring inner locks whose enclosing top lock is gone.
    fn clear_inner_locks_of_children(
        &self,
        file_id: u64,
        holder: Port,
        report: &mut LockRecoveryReport,
    ) -> Result<()> {
        if holder.is_null() {
            return Ok(());
        }
        let Ok(file) = self.file_by_id(file_id) else {
            return Ok(());
        };
        let children = file.lock().children.clone();
        for child_id in children {
            let Ok(child) = self.file_by_id(child_id) else {
                continue;
            };
            let current = {
                let mut meta = child.lock();
                match self.current_version_block_locked(&mut meta) {
                    Ok(block) => block,
                    Err(_) => continue,
                }
            };
            let cleared = self.pages.update_page(current, |p| {
                let h = p
                    .version
                    .as_mut()
                    .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
                if h.inner_lock == holder {
                    h.inner_lock = Port::NULL;
                    Ok((true, true))
                } else {
                    Ok((false, false))
                }
            })?;
            if cleared {
                report.cleared += 1;
            }
        }
        Ok(())
    }

    /// Clears inner locks set by `holder` on any sub-file version pages referenced
    /// from `page`'s reference table.
    fn clear_inner_locks_below(
        &self,
        page: &Page,
        holder: Port,
        report: &mut LockRecoveryReport,
    ) -> Result<()> {
        if holder.is_null() {
            return Ok(());
        }
        for reference in &page.refs {
            let child = match self.pages.read_page(reference.block) {
                Ok(child) => child,
                Err(_) => continue,
            };
            if !child.is_version_page() {
                continue;
            }
            let cleared = self.pages.update_page(reference.block, |p| {
                let h = p
                    .version
                    .as_mut()
                    .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
                if h.inner_lock == holder {
                    h.inner_lock = Port::NULL;
                    Ok((true, true))
                } else {
                    Ok((false, false))
                }
            })?;
            if cleared {
                report.cleared += 1;
            }
        }
        Ok(())
    }

    /// Walks a committed super-file version page and, for every sub-file version page
    /// it references, makes sure that sub version is committed (its predecessor's
    /// commit reference points at it).  This is the "finishing the work of the crashed
    /// server" step.
    fn finish_subfile_commits(
        &self,
        super_page: &Page,
        report: &mut LockRecoveryReport,
    ) -> Result<()> {
        for reference in &super_page.refs {
            let child = match self.pages.read_page_uncached(reference.block) {
                Ok(child) => child,
                Err(_) => continue,
            };
            let Some(child_header) = child.version.clone() else {
                continue;
            };
            if child_header.commit_reference.is_some() {
                // Already superseded; nothing to finish here.
                continue;
            }
            let Some(base) = child.base_reference else {
                continue;
            };
            let (_, base_header) = match self.read_version_page_at(base) {
                Ok(v) => v,
                Err(_) => continue,
            };
            if base_header.commit_reference.is_none() {
                // The crashed update created this sub version but never committed it;
                // finish that commit now.
                let result = self.try_set_commit_reference(base, reference.block)?;
                if result.is_none() {
                    report.finished_commits += 1;
                    // Update the in-memory version table if we know this version.
                    if let Ok(meta) = self.version_meta_by_id(child_header.version_cap.object) {
                        let mut meta = meta.lock();
                        if meta.state == VersionState::Uncommitted {
                            meta.state = VersionState::Committed;
                        }
                    }
                    if let Ok(file) = self.file_by_id(child_header.file_cap.object) {
                        file.lock().current_hint = reference.block;
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Super-file updates.
    // ------------------------------------------------------------------

    /// Begins an atomic update of a super-file: waits for (or fails on) the top and
    /// inner locks of its current version, takes the top lock, and creates the new
    /// super-file version.
    pub fn begin_super_update(
        &self,
        super_cap: &Capability,
        port: Port,
        wait: bool,
    ) -> Result<SuperUpdate> {
        let file = self.resolve_file(super_cap, Rights::WRITE)?;
        if file.lock().children.is_empty() {
            return Err(FsError::WrongFileKind);
        }
        let options = VersionOptions {
            respect_top_lock: true,
            wait_for_locks: wait,
            lock_port: Some(port),
        };
        let super_version = self.create_version_with(super_cap, options)?;
        let locked_block = {
            let meta = self.resolve_version(&super_version, Rights::READ)?;
            let block = meta.lock().block;
            let page = self.pages.read_page(block)?;
            page.base_reference
                .ok_or_else(|| FsError::CorruptPage("super version has no base".into()))?
        };
        Ok(SuperUpdate {
            super_file: *super_cap,
            super_version,
            port,
            sub_versions: Vec::new(),
            locked_block,
        })
    }

    /// Opens a sub-file for modification inside a super-file update: sets the inner
    /// lock on the sub-file's current version page, creates a new version of the
    /// sub-file, and records it both in the handle and in the super-file version's
    /// page tree (so crash recovery can find it).
    pub fn super_update_edit(
        &self,
        update: &mut SuperUpdate,
        sub_cap: &Capability,
    ) -> Result<Capability> {
        let sub_file = self.resolve_file(sub_cap, Rights::WRITE)?;
        // Resolve the sub-file's current version and set the inner lock on it.
        let current_block = {
            let mut meta = sub_file.lock();
            self.current_version_block_locked(&mut meta)?
        };
        loop {
            let acquired = self.pages.update_page(current_block, |page| {
                let header = page
                    .version
                    .as_mut()
                    .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
                if header.commit_reference.is_some() {
                    return Ok((false, Err(FsError::WouldBlock)));
                }
                if !header.inner_lock.is_null() && header.inner_lock != update.port {
                    return Ok((false, Ok(Some(header.inner_lock))));
                }
                header.inner_lock = update.port;
                Ok((true, Ok(None)))
            })?;
            match acquired {
                Ok(None) => break,
                Ok(Some(holder)) => self.wait_for_lock_clear(current_block, holder)?,
                Err(_) => {
                    // The sub-file's current version changed under us; re-resolve.
                    let mut meta = sub_file.lock();
                    let fresh = self.current_version_block_locked(&mut meta)?;
                    if fresh == current_block {
                        return Err(FsError::WouldBlock);
                    }
                    return self.super_update_edit(update, sub_cap);
                }
            }
        }

        // Create the sub-file version (the inner lock we hold does not block us).
        let options = VersionOptions {
            respect_top_lock: false,
            wait_for_locks: true,
            lock_port: Some(update.port),
        };
        let sub_version =
            self.create_version_with_inner_lock_override(sub_cap, options, update.port)?;

        // Record the new sub version page in the super-file version's tree so that
        // recovery (and commit) can find it: replace the reference that pointed at the
        // sub-file's current version page.
        let sub_version_block = {
            let meta = self.resolve_version(&sub_version, Rights::READ)?;
            let block = meta.lock().block;
            block
        };
        let super_version_block = {
            let meta = self.resolve_version(&update.super_version, Rights::READ)?;
            let block = meta.lock().block;
            block
        };
        self.pages.update_page(super_version_block, |page| {
            let mut changed = false;
            for r in page.refs.iter_mut() {
                if r.block == current_block {
                    r.block = sub_version_block;
                    r.flags.copied = true;
                    r.flags.written = true;
                    changed = true;
                }
            }
            if !changed {
                // The super-file's tree did not yet reference this sub-file's current
                // version (e.g. the sub-file was created before the super-file's
                // current version); append a reference.
                page.push_ref(crate::page::PageRef {
                    block: sub_version_block,
                    flags: crate::flags::PageFlags {
                        copied: true,
                        written: true,
                        ..crate::flags::PageFlags::CLEAR
                    },
                })?;
            }
            Ok((true, ()))
        })?;

        update
            .sub_versions
            .push((*sub_cap, sub_version, current_block));
        Ok(sub_version)
    }

    /// Creates a version of a small file while the caller already holds the inner
    /// lock on its current version page (the lock field contains `port`).
    fn create_version_with_inner_lock_override(
        &self,
        file_cap: &Capability,
        options: VersionOptions,
        port: Port,
    ) -> Result<Capability> {
        // `try_acquire_creation_lock` treats a lock held by our own port as free, so
        // the normal creation path works; this wrapper exists to make the intent
        // explicit at the call site.
        let options = VersionOptions {
            lock_port: Some(port),
            ..options
        };
        self.create_version_with(file_cap, options)
    }

    /// Commits a super-file update: commits the super-file version first (the top
    /// lock guarantees no competing super-file update), then descends to commit the
    /// sub-file versions — "these commits always succeed, because the locks prevent
    /// access by other clients during the update to the super-file" — and finally
    /// clears the inner locks.
    pub fn commit_super_update(&self, update: SuperUpdate) -> Result<crate::commit::CommitReceipt> {
        // The super commit's flush follows *buffered* references, so the sub-file
        // version pages (and their private pages) the super tree points at become
        // durable before the super version can become current — a crash between
        // the super commit and the sub commits leaves everything the §5.3
        // recovery procedure needs on disk.
        let receipt = self.commit(&update.super_version)?;
        for (_, sub_version, locked_block) in &update.sub_versions {
            // The sub commits may race nothing (inner lock), so they must succeed.
            self.commit(sub_version)?;
            self.clear_inner_lock(*locked_block, update.port)?;
        }
        Ok(receipt)
    }

    /// Abandons a super-file update, clearing its locks and discarding its versions.
    pub fn abort_super_update(&self, update: SuperUpdate) -> Result<()> {
        for (_, sub_version, locked_block) in &update.sub_versions {
            let _ = self.abort_version(sub_version);
            self.clear_inner_lock(*locked_block, update.port)?;
        }
        self.abort_version(&update.super_version)?;
        Ok(())
    }

    fn clear_inner_lock(&self, block: BlockNr, port: Port) -> Result<()> {
        self.pages.update_page(block, |page| {
            let header = page
                .version
                .as_mut()
                .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
            if header.inner_lock == port {
                header.inner_lock = Port::NULL;
                Ok((true, ()))
            } else {
                Ok((false, ()))
            }
        })
    }

    /// Returns the current lock fields of a file's current version page (for tests and
    /// the experiment harness).
    pub fn lock_state(&self, file_cap: &Capability) -> Result<(Port, Port)> {
        let block = self.current_version_block(file_cap)?;
        let (_, header) = self.read_version_page_at(block)?;
        Ok((header.top_lock, header.inner_lock))
    }

    /// Returns true if a set top lock suggests the file is about to change (the soft
    /// locking hint of §5.3).
    pub fn is_soft_locked(&self, file_cap: &Capability) -> Result<bool> {
        let (top, _) = self.lock_state(file_cap)?;
        Ok(!top.is_null())
    }

    /// Waits (bounded by `timeout`) for a file's top lock to clear — the deferral used
    /// by updates that honour the soft-lock hint.
    pub fn wait_until_idle(&self, file_cap: &Capability, timeout: Duration) -> Result<bool> {
        let start = Instant::now();
        while self.is_soft_locked(file_cap)? {
            if start.elapsed() > timeout {
                return Ok(false);
            }
            std::thread::sleep(self.config.lock_poll_interval);
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PagePath;
    use bytes::Bytes;

    fn super_setup(sub_count: usize) -> (std::sync::Arc<FileService>, Capability, Vec<Capability>) {
        let service = FileService::in_memory();
        let super_file = service.create_file().unwrap();
        let mut subs = Vec::new();
        for i in 0..sub_count {
            let sub = service.create_sub_file(&super_file).unwrap();
            // Give each sub-file some committed content.
            let v = service.create_version(&sub).unwrap();
            service
                .write_page(&v, &PagePath::root(), Bytes::from(vec![i as u8]))
                .unwrap();
            service.commit(&v).unwrap();
            subs.push(sub);
        }
        (service, super_file, subs)
    }

    #[test]
    fn super_update_commits_super_and_sub_files_atomically() {
        let (service, super_file, subs) = super_setup(3);
        let port = Port::from_raw(0x5050);
        let mut update = service.begin_super_update(&super_file, port, true).unwrap();
        // The top lock is visible on the super-file while the update runs.
        let (top, _) = service.lock_state(&super_file).unwrap();
        assert_eq!(top, port);

        for sub in &subs[..2] {
            let sub_version = service.super_update_edit(&mut update, sub).unwrap();
            service
                .write_page(
                    &sub_version,
                    &PagePath::root(),
                    Bytes::from_static(b"reorganised"),
                )
                .unwrap();
        }
        service.commit_super_update(update).unwrap();

        // Both edited sub-files now show the new contents in their current versions.
        for sub in &subs[..2] {
            let current = service.current_version(sub).unwrap();
            assert_eq!(
                service
                    .read_committed_page(&current, &PagePath::root())
                    .unwrap(),
                Bytes::from_static(b"reorganised")
            );
        }
        // The third sub-file is untouched.
        let current = service.current_version(&subs[2]).unwrap();
        assert_eq!(
            service
                .read_committed_page(&current, &PagePath::root())
                .unwrap(),
            Bytes::from(vec![2u8])
        );
        // All locks are clear afterwards.
        let (top, inner) = service.lock_state(&super_file).unwrap();
        assert!(top.is_null() && inner.is_null());
        for sub in &subs {
            let (_, inner) = service.lock_state(sub).unwrap();
            assert!(inner.is_null());
        }
    }

    #[test]
    fn inner_lock_blocks_small_file_updates_until_commit() {
        let (service, super_file, subs) = super_setup(2);
        let port = Port::from_raw(0x6060);
        let mut update = service.begin_super_update(&super_file, port, true).unwrap();
        let _sub_version = service.super_update_edit(&mut update, &subs[0]).unwrap();

        // A small-file update on the inner-locked sub-file cannot create a version
        // without waiting.
        let opts = VersionOptions {
            respect_top_lock: false,
            wait_for_locks: false,
            lock_port: None,
        };
        assert_eq!(
            service.create_version_with(&subs[0], opts).unwrap_err(),
            FsError::WouldBlock
        );
        // But the other sub-file remains fully available.
        let v = service.create_version_with(&subs[1], opts).unwrap();
        service
            .write_page(&v, &PagePath::root(), Bytes::from_static(b"independent"))
            .unwrap();
        service.commit(&v).unwrap();

        service.commit_super_update(update).unwrap();
        // After the super update commits, the first sub-file is unlocked again.
        let v = service.create_version(&subs[0]).unwrap();
        service.commit(&v).unwrap();
    }

    #[test]
    fn competing_super_updates_are_serialised_by_the_top_lock() {
        let (service, super_file, _subs) = super_setup(2);
        let first = service
            .begin_super_update(&super_file, Port::from_raw(1), true)
            .unwrap();
        // A second super update must not start while the first holds the top lock.
        let err = service
            .begin_super_update(&super_file, Port::from_raw(2), false)
            .unwrap_err();
        assert_eq!(err, FsError::WouldBlock);
        service.abort_super_update(first).unwrap();
        // After the first is abandoned the second can proceed.
        let second = service
            .begin_super_update(&super_file, Port::from_raw(2), false)
            .unwrap();
        service.abort_super_update(second).unwrap();
    }

    #[test]
    fn crashed_update_before_commit_is_cleared_by_waiters() {
        let (service, super_file, subs) = super_setup(2);
        let crashed_port = Port::from_raw(0xdead);
        let mut update = service
            .begin_super_update(&super_file, crashed_port, true)
            .unwrap();
        let _sub = service.super_update_edit(&mut update, &subs[0]).unwrap();
        // The client crashes: it never commits and never aborts.
        drop(update);
        service.report_crashed_port(crashed_port);

        // Another super update waits on the top lock, detects the crash and recovers.
        let recovered = service
            .begin_super_update(&super_file, Port::from_raw(0xbeef), true)
            .unwrap();
        // No stale locks remain on the sub-file either.
        let (_, inner) = service.lock_state(&subs[0]).unwrap();
        assert!(inner.is_null());
        service.abort_super_update(recovered).unwrap();
    }

    #[test]
    fn crashed_update_after_super_commit_is_finished_by_waiters() {
        let (service, super_file, subs) = super_setup(2);
        let crashed_port = Port::from_raw(0xdead);
        let mut update = service
            .begin_super_update(&super_file, crashed_port, true)
            .unwrap();
        let sub_version = service.super_update_edit(&mut update, &subs[0]).unwrap();
        service
            .write_page(
                &sub_version,
                &PagePath::root(),
                Bytes::from_static(b"half done"),
            )
            .unwrap();
        // Simulate the crash *after* the super-file version committed but *before*
        // the sub-file commits were carried out.
        service.commit(&update.super_version).unwrap();
        service.report_crashed_port(crashed_port);
        let locked_block = update.locked_block;
        drop(update);

        // A waiter runs recovery on the locked block and finishes the sub commits.
        let report = service.recover_locked_version(locked_block).unwrap();
        assert_eq!(report.finished_commits, 1);
        let current = service.current_version(&subs[0]).unwrap();
        assert_eq!(
            service
                .read_committed_page(&current, &PagePath::root())
                .unwrap(),
            Bytes::from_static(b"half done")
        );
    }

    #[test]
    fn super_commit_makes_sub_versions_durable_before_becoming_current() {
        let (service, super_file, subs) = super_setup(2);
        let crashed_port = Port::from_raw(0xdead);
        let mut update = service
            .begin_super_update(&super_file, crashed_port, true)
            .unwrap();
        let sub_version = service.super_update_edit(&mut update, &subs[0]).unwrap();
        service
            .write_page(
                &sub_version,
                &PagePath::root(),
                Bytes::from_static(b"half done"),
            )
            .unwrap();
        let sub_block = {
            let meta = service
                .resolve_version(&sub_version, amoeba_capability::Rights::READ)
                .unwrap();
            let block = meta.lock().block;
            block
        };

        // The client executes `commit_super_update` up to and including the super
        // version's commit, then crashes before the sub commits.  The super
        // commit's flush alone must make the referenced sub pages durable.
        service.commit(&update.super_version).unwrap();

        // Everything the now-durable committed super tree references must itself be
        // durable: a raw block read, bypassing the overlay and the cache, decodes
        // the sub version page with its data.
        let raw = service
            .block_server()
            .read(&service.storage_account(), sub_block)
            .unwrap();
        let on_disk = crate::page::Page::decode(raw).unwrap();
        assert!(on_disk.is_version_page());
        assert_eq!(on_disk.data, Bytes::from_static(b"half done"));

        // And the recovery procedure can therefore finish the crashed update.
        service.report_crashed_port(crashed_port);
        let report = service.recover_locked_version(update.locked_block).unwrap();
        assert_eq!(report.finished_commits, 1);
        let current = service.current_version(&subs[0]).unwrap();
        assert_eq!(
            service
                .read_committed_page(&current, &PagePath::root())
                .unwrap(),
            Bytes::from_static(b"half done")
        );
    }

    #[test]
    fn soft_lock_hint_is_visible_and_clears_on_commit() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        assert!(!service.is_soft_locked(&file).unwrap());
        let v = service.create_version(&file).unwrap();
        assert!(service.is_soft_locked(&file).unwrap());
        service.commit(&v).unwrap();
        // The new current version carries no locks.
        assert!(!service.is_soft_locked(&file).unwrap());
        assert!(service
            .wait_until_idle(&file, Duration::from_millis(10))
            .unwrap());
    }

    #[test]
    fn wait_until_idle_times_out_when_the_file_stays_busy() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let _v = service.create_version(&file).unwrap();
        assert!(!service
            .wait_until_idle(&file, Duration::from_millis(20))
            .unwrap());
    }

    #[test]
    fn super_update_on_a_small_file_is_rejected() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        assert_eq!(
            service
                .begin_super_update(&file, Port::from_raw(1), false)
                .unwrap_err(),
            FsError::WrongFileKind
        );
    }
}
