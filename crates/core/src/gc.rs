//! The garbage collector (abstract, §5.1).
//!
//! "A garbage collector that runs independent of, and in parallel with, the operation
//! of the system."  Two kinds of garbage arise in the Amoeba File Service:
//!
//! 1. **Shadow pages that carry only read-path bookkeeping.**  Reading a page forces
//!    it to be copied so the C/R/W/S/M flags of its children can be initialised, but
//!    "once a version has successfully committed, the information contained in the R
//!    and S flags is no longer needed.  The … garbage collector may remove pages that
//!    were copied but not written or modified and reshare the corresponding page from
//!    the version on which it was based."
//! 2. **Old committed versions.**  The committed chain grows with every update; the
//!    collector trims it to a configurable retention depth.
//!
//! A pass over one file proceeds in three steps: *trim* unlinks versions beyond the
//! retention depth from the committed chain; *reshare* rewrites references that point
//! at clean shadow copies so they point at the original page again; *sweep* frees
//! every block that is owned by a committed version of the file but no longer
//! reachable from any committed or uncommitted version.  The sweep never touches
//! blocks owned by uncommitted versions (a client may be extending them concurrently),
//! and the pass holds the file's bookkeeping lock so that it cannot interleave with
//! the brief instant at which a freshly created version shares pages with the current
//! version but is not yet registered; reads, writes and commits run concurrently with
//! the collector.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amoeba_block::BlockNr;
use amoeba_capability::{Capability, Rights};

use crate::flags::PageFlags;
use crate::page::PageRef;
use crate::service::{FileService, VersionState};
use crate::types::{FsError, Result};

/// What one garbage-collection pass accomplished.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// References rewritten to share the base version's page again.
    pub reshared_pages: usize,
    /// Old committed versions removed from the history.
    pub trimmed_versions: usize,
    /// Total blocks returned to the block service.
    pub freed_blocks: usize,
}

impl GcReport {
    /// Accumulates another report into this one.
    pub fn merge(&mut self, other: GcReport) {
        self.reshared_pages += other.reshared_pages;
        self.trimmed_versions += other.trimmed_versions;
        self.freed_blocks += other.freed_blocks;
    }
}

impl FileService {
    /// Runs one garbage-collection pass over a single file.
    ///
    /// The pass holds the file's bookkeeping lock, which version *creation* also
    /// takes; reads, writes and commits of existing versions proceed concurrently.
    pub fn gc_file(&self, file_cap: &Capability) -> Result<GcReport> {
        let file = self.resolve_file(file_cap, Rights::ADMIN)?;
        let mut file_guard = file.lock();
        let file_id = file_guard.id;
        let mut report = GcReport::default();

        // Snapshot the committed chain.
        let oldest = file_guard.oldest_block;
        let mut chain = Vec::new();
        let mut block = oldest;
        loop {
            let (_, header) = self.read_version_page_at(block)?;
            chain.push(block);
            match header.commit_reference {
                Some(next) => block = next,
                None => break,
            }
        }

        // Versions pinned because uncommitted work is based on them.
        let pinned: HashSet<BlockNr> = self.uncommitted_bases(file_id)?;

        // Step 1: trim the chain beyond the retention depth.
        let (retained, removed_versions) = self.trim_chain(&mut file_guard, &chain, &pinned)?;
        report.trimmed_versions = removed_versions.len();

        // Step 2: rewrite references to clean shadow copies.  Only originals that are
        // still live (reachable from the retained chain or from uncommitted versions)
        // are eligible targets: a copy whose original was reclaimed in an earlier pass
        // is now the authoritative page and must stay.
        let mut live: HashSet<BlockNr> = HashSet::new();
        for &block in &retained {
            self.collect_reachable(block, &mut live)?;
        }
        for block in self.uncommitted_roots(file_id) {
            self.collect_reachable(block, &mut live)?;
        }
        report.reshared_pages = self.reshare_pass(&retained, &live)?;

        // Step 3: sweep unreachable blocks owned by committed versions.
        report.freed_blocks = self.sweep(file_id, &retained, &removed_versions)?;
        Ok(report)
    }

    /// Runs one garbage-collection pass over every file of the service.
    pub fn gc_all(&self) -> Result<GcReport> {
        let caps: Vec<Capability> = self
            .files
            .read()
            .values()
            .map(|meta| meta.lock().cap)
            .collect();
        let mut report = GcReport::default();
        for cap in caps {
            match self.gc_file(&cap) {
                Ok(r) => report.merge(r),
                // A file disappearing mid-pass (e.g. concurrent activity) is fine.
                Err(FsError::NoSuchFile) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Version page blocks of this file's uncommitted versions.
    fn uncommitted_roots(&self, file_id: u64) -> Vec<BlockNr> {
        let versions = self.versions.read();
        versions
            .values()
            .filter_map(|meta| {
                let meta = meta.lock();
                (meta.file == file_id && meta.state == VersionState::Uncommitted)
                    .then_some(meta.block)
            })
            .collect()
    }

    /// Blocks of committed versions that uncommitted versions are based on.
    fn uncommitted_bases(&self, file_id: u64) -> Result<HashSet<BlockNr>> {
        let mut bases = HashSet::new();
        let versions = self.versions.read();
        for meta in versions.values() {
            let meta = meta.lock();
            if meta.file == file_id && meta.state == VersionState::Uncommitted {
                if let Ok(page) = self.pages.read_page(meta.block) {
                    if let Some(base) = page.base_reference {
                        bases.insert(base);
                    }
                }
            }
        }
        Ok(bases)
    }

    // ------------------------------------------------------------------
    // Step 1: trim.
    // ------------------------------------------------------------------

    /// Unlinks versions beyond the retention depth from the committed chain.  Returns
    /// the retained chain and the removed version page blocks.
    fn trim_chain(
        &self,
        file: &mut crate::service::FileMeta,
        chain: &[BlockNr],
        pinned: &HashSet<BlockNr>,
    ) -> Result<(Vec<BlockNr>, Vec<BlockNr>)> {
        let keep = self.config.history_retention.max(1);
        if chain.len() <= keep {
            return Ok((chain.to_vec(), Vec::new()));
        }
        let cut = chain.len() - keep;
        let (trim, retain) = chain.split_at(cut);
        if trim.iter().any(|b| pinned.contains(b)) {
            // An uncommitted version is based on one of the candidates; leave the
            // whole prefix alone this pass.
            return Ok((chain.to_vec(), Vec::new()));
        }
        // The new oldest version's base reference becomes nil (Fig. 4).
        let new_oldest = retain[0];
        self.pages.update_page(new_oldest, |page| {
            page.base_reference = None;
            Ok((true, ()))
        })?;
        file.oldest_block = new_oldest;
        Ok((retain.to_vec(), trim.to_vec()))
    }

    // ------------------------------------------------------------------
    // Step 2: reshare clean shadow copies.
    // ------------------------------------------------------------------

    /// Rewrites references that point at *clean shadow copies* (pages that were copied
    /// but never written or restructured, with no written descendants) so they point
    /// at the original page the copy was based on.  The rewritten copy then becomes
    /// unreachable and is reclaimed by the sweep.
    fn reshare_pass(&self, chain: &[BlockNr], live: &HashSet<BlockNr>) -> Result<usize> {
        let mut rewritten = 0usize;
        for &version_block in chain {
            rewritten += self.reshare_page(version_block, live)?;
        }
        Ok(rewritten)
    }

    /// Rewrites eligible references in the page at `block` (and, recursively, in the
    /// copied pages below it).
    fn reshare_page(&self, block: BlockNr, live: &HashSet<BlockNr>) -> Result<usize> {
        let page = self.pages.read_page(block)?;
        let mut rewrites: Vec<(usize, PageRef)> = Vec::new();
        let mut rewritten = 0usize;
        for (index, reference) in page.refs.iter().enumerate() {
            if !reference.flags.copied {
                continue;
            }
            if !reference.flags.written && !reference.flags.modified {
                // Candidate: the copy may only exist to hold read-path flags.
                if let Ok(copy) = self.pages.read_page(reference.block) {
                    if let Some(original) = copy.base_reference.filter(|o| live.contains(o)) {
                        if self.subtree_is_clean(reference.block)? {
                            rewrites.push((
                                index,
                                PageRef {
                                    block: original,
                                    flags: PageFlags::CLEAR,
                                },
                            ));
                            continue;
                        }
                    }
                }
            }
            // Not a clean copy: recurse to reshare deeper levels.
            rewritten += self.reshare_page(reference.block, live)?;
        }
        if !rewrites.is_empty() {
            let count = rewrites.len();
            self.pages.update_page(block, |p| {
                let mut changed = false;
                for (index, new_ref) in &rewrites {
                    if let (Some(slot), Some(old)) = (p.refs.get_mut(*index), page.refs.get(*index))
                    {
                        // Only rewrite if the reference has not changed under us.
                        if slot.block == old.block && slot.flags == old.flags {
                            *slot = *new_ref;
                            changed = true;
                        }
                    }
                }
                Ok((changed, ()))
            })?;
            rewritten += count;
        }
        Ok(rewritten)
    }

    /// True if no page in the copied part of the subtree rooted at `block` was written
    /// or had its references modified.
    fn subtree_is_clean(&self, block: BlockNr) -> Result<bool> {
        let page = self.pages.read_page(block)?;
        for reference in &page.refs {
            if !reference.flags.copied {
                continue;
            }
            if reference.flags.written || reference.flags.modified {
                return Ok(false);
            }
            if !self.subtree_is_clean(reference.block)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Step 3: sweep.
    // ------------------------------------------------------------------

    /// Frees blocks owned by committed versions of `file_id` that are no longer
    /// reachable from any committed or uncommitted version, plus the version pages of
    /// versions removed from the chain.
    fn sweep(
        &self,
        file_id: u64,
        retained_chain: &[BlockNr],
        removed_versions: &[BlockNr],
    ) -> Result<usize> {
        // Mark.  The committed chain is re-walked *live* (by following commit
        // references from the retained oldest version) rather than from the snapshot
        // taken at the start of the pass: commits only ever append to the chain, and
        // a version committed while this pass was running must be treated as
        // reachable even though it was uncommitted when the pass began.
        let mut reachable: HashSet<BlockNr> = HashSet::new();
        let mut cursor = match retained_chain.first() {
            Some(&first) => first,
            None => return Ok(0),
        };
        loop {
            self.collect_reachable(cursor, &mut reachable)?;
            let (_, header) = self.read_version_page_at(cursor)?;
            match header.commit_reference {
                Some(next) => cursor = next,
                None => break,
            }
        }
        for block in self.uncommitted_roots(file_id) {
            self.collect_reachable(block, &mut reachable)?;
        }

        // Sweep blocks owned by committed versions.
        let mut freed = 0usize;
        let committed_versions: Vec<Arc<parking_lot::Mutex<crate::service::VersionMeta>>> = {
            let versions = self.versions.read();
            versions
                .values()
                .filter(|meta| {
                    let meta = meta.lock();
                    meta.file == file_id && meta.state == VersionState::Committed
                })
                .cloned()
                .collect()
        };
        for meta in committed_versions {
            let owned: Vec<BlockNr> = meta.lock().owned_blocks.iter().copied().collect();
            for nr in owned {
                if !reachable.contains(&nr) && self.pages.free_page(nr).is_ok() {
                    meta.lock().owned_blocks.remove(&nr);
                    freed += 1;
                }
            }
        }

        // Free the version pages (and table entries) of trimmed versions.  The
        // block index turns the old lock-every-version scan into one hash probe.
        for &block in removed_versions {
            if !reachable.contains(&block) && self.pages.free_page(block).is_ok() {
                freed += 1;
            }
            let victim = self.block_index.read().get(&block).copied();
            let victim =
                victim.and_then(|id| self.versions.read().get(&id).map(|m| (id, Arc::clone(m))));
            if let Some((id, meta)) = victim {
                // Any blocks the trimmed version still owned and that are unreachable
                // can go too.
                let owned: Vec<BlockNr> = meta.lock().owned_blocks.iter().copied().collect();
                for nr in owned {
                    if !reachable.contains(&nr) && self.pages.free_page(nr).is_ok() {
                        freed += 1;
                    }
                }
                self.forget_version(id, block);
            }
        }
        Ok(freed)
    }

    /// Collects all blocks reachable from the page at `block` (inclusive).
    fn collect_reachable(&self, block: BlockNr, out: &mut HashSet<BlockNr>) -> Result<()> {
        if !out.insert(block) {
            return Ok(());
        }
        let page = match self.pages.read_page(block) {
            Ok(page) => page,
            Err(_) => return Ok(()),
        };
        for reference in &page.refs {
            self.collect_reachable(reference.block, out)?;
        }
        Ok(())
    }

    /// Returns the number of blocks currently reachable from the file's committed
    /// chain (for space-accounting tests and the write-once media experiment).
    pub fn reachable_block_count(&self, file_cap: &Capability) -> Result<usize> {
        let file = self.resolve_file(file_cap, Rights::READ)?;
        let oldest = file.lock().oldest_block;
        let mut reachable = HashSet::new();
        let mut block = oldest;
        loop {
            self.collect_reachable(block, &mut reachable)?;
            let (_, header) = self.read_version_page_at(block)?;
            match header.commit_reference {
                Some(next) => block = next,
                None => break,
            }
        }
        Ok(reachable.len())
    }
}

/// A background garbage collector: runs [`FileService::gc_all`] on a fixed interval
/// until stopped.  Demonstrates the "independent of, and in parallel with" property;
/// experiment E10 measures its impact on foreground traffic.
pub struct GarbageCollector {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<GcReport>>,
}

impl GarbageCollector {
    /// Starts a collector thread over `service` with the given pass interval.
    pub fn start(service: Arc<FileService>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut total = GcReport::default();
            while !stop_flag.load(Ordering::SeqCst) {
                if let Ok(report) = service.gc_all() {
                    total.merge(report);
                }
                std::thread::sleep(interval);
            }
            total
        });
        GarbageCollector {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the collector and returns the accumulated report.
    pub fn stop(mut self) -> GcReport {
        self.stop.store(true, Ordering::SeqCst);
        match self.handle.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => GcReport::default(),
        }
    }
}

impl Drop for GarbageCollector {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PagePath;
    use bytes::Bytes;

    fn file_with_leaves(service: &FileService, n: u16) -> (Capability, Vec<PagePath>) {
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        let mut paths = Vec::new();
        for i in 0..n {
            paths.push(
                service
                    .append_page(&v, &PagePath::root(), Bytes::from(vec![i as u8]))
                    .unwrap(),
            );
        }
        service.commit(&v).unwrap();
        (file, paths)
    }

    #[test]
    fn read_only_shadow_pages_are_reshared_and_reclaimed() {
        let service = FileService::in_memory();
        let (file, paths) = file_with_leaves(&service, 4);
        // An update that reads one page and writes another: the read page is shadowed
        // only for flag bookkeeping.
        let v = service.create_version(&file).unwrap();
        service.read_page(&v, &paths[0]).unwrap();
        service
            .write_page(&v, &paths[1], Bytes::from_static(b"w"))
            .unwrap();
        service.commit(&v).unwrap();

        let blocks_before = service.pages.block_server().store().allocated_count();
        let report = service.gc_file(&file).unwrap();
        assert!(report.reshared_pages >= 1, "report: {report:?}");
        assert!(report.freed_blocks >= 1, "report: {report:?}");
        let blocks_after = service.pages.block_server().store().allocated_count();
        assert!(blocks_after < blocks_before);

        // The reshared data is still readable and correct.
        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service.read_committed_page(&current, &paths[0]).unwrap(),
            Bytes::from(vec![0u8])
        );
        assert_eq!(
            service.read_committed_page(&current, &paths[1]).unwrap(),
            Bytes::from_static(b"w")
        );
    }

    #[test]
    fn written_pages_are_never_reshared() {
        let service = FileService::in_memory();
        let (file, paths) = file_with_leaves(&service, 2);
        let v = service.create_version(&file).unwrap();
        service
            .write_page(&v, &paths[0], Bytes::from_static(b"keep me"))
            .unwrap();
        service.commit(&v).unwrap();
        service.gc_file(&file).unwrap();
        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service.read_committed_page(&current, &paths[0]).unwrap(),
            Bytes::from_static(b"keep me")
        );
    }

    #[test]
    fn history_is_trimmed_to_the_retention_depth() {
        let config = crate::service::ServiceConfig {
            history_retention: 3,
            ..Default::default()
        };
        let server = Arc::new(amoeba_block::BlockServer::new(Arc::new(
            amoeba_block::MemStore::new(),
        )));
        let service = FileService::with_config(server, config);
        let (file, paths) = file_with_leaves(&service, 2);
        for i in 0..10u8 {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &paths[0], Bytes::from(vec![i]))
                .unwrap();
            service.commit(&v).unwrap();
        }
        assert!(service.committed_version_count(&file).unwrap() > 3);
        let report = service.gc_file(&file).unwrap();
        assert!(report.trimmed_versions > 0);
        assert!(report.freed_blocks > 0);
        assert_eq!(service.committed_version_count(&file).unwrap(), 3);
        // The surviving current version still reads correctly.
        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service.read_committed_page(&current, &paths[0]).unwrap(),
            Bytes::from(vec![9u8])
        );
    }

    #[test]
    fn trimming_preserves_pages_shared_with_retained_versions() {
        let config = crate::service::ServiceConfig {
            history_retention: 2,
            ..Default::default()
        };
        let server = Arc::new(amoeba_block::BlockServer::new(Arc::new(
            amoeba_block::MemStore::new(),
        )));
        let service = FileService::with_config(server, config);
        let (file, paths) = file_with_leaves(&service, 8);
        // Only page 0 is ever rewritten; pages 1..7 stay shared across the history.
        for i in 0..6u8 {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &paths[0], Bytes::from(vec![i]))
                .unwrap();
            service.commit(&v).unwrap();
        }
        service.gc_file(&file).unwrap();
        let current = service.current_version(&file).unwrap();
        for (i, path) in paths.iter().enumerate().skip(1) {
            assert_eq!(
                service.read_committed_page(&current, path).unwrap(),
                Bytes::from(vec![i as u8]),
                "shared page {i} must survive trimming"
            );
        }
    }

    #[test]
    fn gc_does_not_disturb_pending_updates() {
        let service = FileService::in_memory();
        let (file, paths) = file_with_leaves(&service, 2);
        // Leave an uncommitted version hanging off the current version.
        let pending = service.create_version(&file).unwrap();
        service.read_page(&pending, &paths[0]).unwrap();
        service.gc_file(&file).unwrap();
        // The pending version still works and can commit.
        service
            .write_page(&pending, &paths[1], Bytes::from_static(b"later"))
            .unwrap();
        service.commit(&pending).unwrap();
        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service.read_committed_page(&current, &paths[1]).unwrap(),
            Bytes::from_static(b"later")
        );
    }

    #[test]
    fn space_shrinks_after_collection() {
        let service = FileService::in_memory();
        let (file, paths) = file_with_leaves(&service, 8);
        // Many read-heavy updates create lots of shadow copies.
        for round in 0..5u8 {
            let v = service.create_version(&file).unwrap();
            for path in &paths {
                service.read_page(&v, path).unwrap();
            }
            service
                .write_page(&v, &paths[0], Bytes::from(vec![round]))
                .unwrap();
            service.commit(&v).unwrap();
        }
        let before = service.pages.block_server().store().allocated_count();
        let report = service.gc_file(&file).unwrap();
        let after = service.pages.block_server().store().allocated_count();
        assert!(report.freed_blocks > 0);
        assert!(
            after < before,
            "GC should reclaim blocks ({before} -> {after})"
        );
    }

    #[test]
    fn background_collector_runs_alongside_updates() {
        let service = FileService::in_memory();
        let (file, paths) = file_with_leaves(&service, 4);
        let gc = GarbageCollector::start(Arc::clone(&service), Duration::from_millis(2));
        for i in 0..50u8 {
            let v = service.create_version(&file).unwrap();
            service.read_page(&v, &paths[(i % 4) as usize]).unwrap();
            service
                .write_page(&v, &paths[((i + 1) % 4) as usize], Bytes::from(vec![i]))
                .unwrap();
            service.commit(&v).unwrap();
        }
        // Give the collector a few interval ticks after the last commit; under a
        // loaded test runner it may not have been scheduled during the loop.
        std::thread::sleep(Duration::from_millis(25));
        let report = gc.stop();
        // The collector found something to do and the file is still consistent.
        assert!(
            report.reshared_pages + report.trimmed_versions > 0,
            "report: {report:?}"
        );
        let current = service.current_version(&file).unwrap();
        service.read_committed_page(&current, &paths[0]).unwrap();
    }

    #[test]
    fn gc_all_covers_every_file() {
        let service = FileService::in_memory();
        let mut files = Vec::new();
        for _ in 0..3 {
            files.push(file_with_leaves(&service, 2));
        }
        for (file, paths) in &files {
            let v = service.create_version(file).unwrap();
            service.read_page(&v, &paths[0]).unwrap();
            service
                .write_page(&v, &paths[1], Bytes::from_static(b"x"))
                .unwrap();
            service.commit(&v).unwrap();
        }
        let report = service.gc_all().unwrap();
        assert!(report.reshared_pages >= 3, "report: {report:?}");
    }
}
