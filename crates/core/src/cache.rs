//! Maintaining a cache (§5.4).
//!
//! "A version, from the moment of its creation, behaves like a private copy of a file
//! that cannot change without the owner's consent.  Both Amoeba File Servers and
//! their clients can therefore maintain a cache which, for the most recently used
//! versions of a set of files, contains collections of pages.  When a new version of
//! a file is created, a client or a server examines its cache to see if there are any
//! pages of a previous version of the file that can still be used. … a serialisability
//! test is made between the cache entry and the current version in order to find out
//! which blocks of the cache are still valid."
//!
//! The paper's crucial property is that correctness never *depends* on
//! server→client "unsolicited messages": the cache holder asks, at the moment it
//! needs the data, which of its pages are stale.  For a file that is not shared the
//! test is "a null operation, and all pages in the cache will always be valid".
//! The reproduction keeps validate-on-use as the universal fallback and layers an
//! optional lease protocol on top (`afs_server::LeaseManager`): a validation reply
//! over a connected transport grants a time-bounded lease that lets the client skip
//! the ask entirely, and a committing writer breaks conflicting leases with a
//! callback before its commit completes — so leases are a pure round-trip
//! optimisation, never a correctness dependency.
//!
//! This module contains the *server-side* primitive, [`FileService::validate_cache`];
//! the client-side cache object itself lives in the `afs-client` crate, and the
//! XDFS-style callback cache it is compared against in `afs-baselines`.

use amoeba_block::{BlockError, BlockNr};
use amoeba_capability::{Capability, Rights};

use crate::path::PagePath;
use crate::service::FileService;
use crate::types::{FsError, Result};

/// Result of validating a cache entry against the current version of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheValidation {
    /// The cached version is still the current version: the test was a null
    /// operation and every cached page is valid.
    pub up_to_date: bool,
    /// Block number of the file's current version page (the version the cache should
    /// be associated with after revalidation).
    pub current_block: BlockNr,
    /// Paths whose cached pages must be discarded because a version committed after
    /// the cached one wrote them or restructured their parent.
    pub discard: Vec<PagePath>,
}

impl CacheValidation {
    /// True if a cached page at `path` may be kept: neither the page itself nor any
    /// of its ancestors was written or restructured since the cached version.
    pub fn keeps(&self, path: &PagePath) -> bool {
        !self
            .discard
            .iter()
            .any(|changed| changed == path || changed.is_prefix_of(path))
    }
}

impl FileService {
    /// Checks that `file_cap` is a valid READ capability for an existing file,
    /// without touching any version state.  The server calls this before side
    /// effects tied to a validation — registering a lease grant, say — so a
    /// forged or unauthorized capability cannot plant server-side state on an
    /// arbitrary object id.
    pub fn check_read_capability(&self, file_cap: &Capability) -> Result<()> {
        self.resolve_file(file_cap, Rights::READ).map(|_| ())
    }

    /// Validates a cache entry: given the block of the committed version the cache
    /// was filled from, returns which page paths have changed since.
    ///
    /// The cost is proportional to the size of the write sets of the versions
    /// committed since the cached one — for an unshared file, the cached version is
    /// still current and the call returns immediately.
    pub fn validate_cache(
        &self,
        file_cap: &Capability,
        cached_version_block: BlockNr,
    ) -> Result<CacheValidation> {
        self.resolve_file(file_cap, Rights::READ)?;
        let current_block = self.current_version_block(file_cap)?;
        if current_block == cached_version_block {
            return Ok(CacheValidation {
                up_to_date: true,
                current_block,
                discard: Vec::new(),
            });
        }
        // A *cached* block that can no longer be read as a version (never
        // existed, freed by the garbage collector after the retention window,
        // or reused for a data page since) is not an error: the whole cache
        // entry is simply stale, and discarding the root invalidates every
        // cached page under `CacheValidation::keeps`.  The probe below checks
        // the cached block itself, so corruption deeper in the live commit
        // chain — a genuine fault — still propagates out of
        // `changed_paths_between`.
        let cached_block_is_stale = match self.read_version_page_at(cached_version_block) {
            Ok(_) => false,
            Err(FsError::Block(BlockError::NoSuchBlock(_))) | Err(FsError::CorruptPage(_)) => true,
            Err(e) => return Err(e),
        };
        let discard = if cached_block_is_stale {
            vec![PagePath::root()]
        } else {
            self.changed_paths_between(cached_version_block, current_block)?
        };
        Ok(CacheValidation {
            up_to_date: false,
            current_block,
            discard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn file_with_leaves(service: &FileService, n: u16) -> (Capability, Vec<PagePath>) {
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        let mut paths = Vec::new();
        for i in 0..n {
            paths.push(
                service
                    .append_page(&v, &PagePath::root(), Bytes::from(vec![i as u8]))
                    .unwrap(),
            );
        }
        service.commit(&v).unwrap();
        (file, paths)
    }

    #[test]
    fn unshared_file_validation_is_a_null_operation() {
        let service = FileService::in_memory();
        let (file, _) = file_with_leaves(&service, 4);
        let cached = service.current_version_block(&file).unwrap();
        let io_before = service.io_stats();
        let validation = service.validate_cache(&file, cached).unwrap();
        assert!(validation.up_to_date);
        assert!(validation.discard.is_empty());
        // The null operation reads only the version page to confirm currency.
        let io = service.io_stats().since(&io_before);
        assert!(
            io.page_reads <= 2,
            "null validation read {} pages",
            io.page_reads
        );
    }

    #[test]
    fn validation_reports_exactly_the_changed_paths() {
        let service = FileService::in_memory();
        let (file, paths) = file_with_leaves(&service, 6);
        let cached = service.current_version_block(&file).unwrap();

        // Two updates by other clients: pages 1 and 4 change.
        for i in [1usize, 4] {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &paths[i], Bytes::from_static(b"new"))
                .unwrap();
            service.commit(&v).unwrap();
        }

        let validation = service.validate_cache(&file, cached).unwrap();
        assert!(!validation.up_to_date);
        assert_eq!(validation.discard, vec![paths[1].clone(), paths[4].clone()]);
        assert!(validation.keeps(&paths[0]));
        assert!(!validation.keeps(&paths[1]));
        assert!(validation.keeps(&paths[5]));
    }

    #[test]
    fn structural_changes_invalidate_whole_subtrees() {
        let service = FileService::in_memory();
        let (file, _) = file_with_leaves(&service, 3);
        let cached = service.current_version_block(&file).unwrap();
        // Remove a page: the root's reference table changes.
        let v = service.create_version(&file).unwrap();
        service.remove_page(&v, &PagePath::new(vec![1])).unwrap();
        service.commit(&v).unwrap();

        let validation = service.validate_cache(&file, cached).unwrap();
        // The root path appears in the discard list, and `keeps` therefore rejects
        // every cached page (all paths have the root as an ancestor).
        assert!(!validation.keeps(&PagePath::new(vec![0])));
        assert!(!validation.keeps(&PagePath::new(vec![2])));
    }

    #[test]
    fn validation_accumulates_across_many_updates() {
        let service = FileService::in_memory();
        let (file, paths) = file_with_leaves(&service, 4);
        let cached = service.current_version_block(&file).unwrap();
        for round in 0..5u8 {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &paths[(round % 2) as usize], Bytes::from(vec![round]))
                .unwrap();
            service.commit(&v).unwrap();
        }
        let validation = service.validate_cache(&file, cached).unwrap();
        assert_eq!(validation.discard, vec![paths[0].clone(), paths[1].clone()]);
        assert!(validation.keeps(&paths[2]));
        assert!(validation.keeps(&paths[3]));
    }

    #[test]
    fn unreadable_cached_blocks_flush_the_whole_entry() {
        let service = FileService::in_memory();
        let (file, paths) = file_with_leaves(&service, 2);
        // A block number the service never allocated (e.g. the cached version
        // was garbage-collected long ago): everything must be discarded, not
        // reported as an error.
        let validation = service.validate_cache(&file, u32::MAX).unwrap();
        assert!(!validation.up_to_date);
        assert!(!validation.keeps(&paths[0]));
        assert!(!validation.keeps(&paths[1]));
        // The reported current block re-bases the cache as usual.
        let again = service
            .validate_cache(&file, validation.current_block)
            .unwrap();
        assert!(again.up_to_date);
    }

    #[test]
    fn revalidated_cache_can_be_rebased_on_the_current_version() {
        let service = FileService::in_memory();
        let (file, paths) = file_with_leaves(&service, 2);
        let cached = service.current_version_block(&file).unwrap();
        let v = service.create_version(&file).unwrap();
        service
            .write_page(&v, &paths[0], Bytes::from_static(b"v2"))
            .unwrap();
        service.commit(&v).unwrap();
        let validation = service.validate_cache(&file, cached).unwrap();
        // Re-validating against the reported current block is then a null operation.
        let again = service
            .validate_cache(&file, validation.current_block)
            .unwrap();
        assert!(again.up_to_date);
    }
}
