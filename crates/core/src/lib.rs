//! # afs-core — the Amoeba File Service
//!
//! A from-scratch reproduction of the distributed file service described in
//! S. J. Mullender and A. S. Tanenbaum, *A Distributed File Service Based on
//! Optimistic Concurrency Control* (1985).
//!
//! The service stores every file as a **tree of pages** (§5, Fig. 2/3), gives each
//! update its own **version** that initially shares its page tree with the current
//! version and is **copied on write** (§5.1, a differential-file representation), and
//! enforces serialisability of concurrent updates with **optimistic concurrency
//! control**: the only critical section in commit is a test-and-set of the base
//! version's *commit reference*; everything else — including the validation descent
//! and the merging of non-conflicting concurrent updates — runs in parallel with
//! other traffic (§5.2).  Super-file updates use the **top/inner locking** scheme of
//! §5.3, which needs no special crash recovery; a **garbage collector** reclaims
//! read-path shadow pages and old versions (§5.1); caches are kept consistent with
//! the same serialisability test (§5.4) — validate-on-use as the universal
//! fallback, optionally upgraded by time-bounded leases with callback breaks so
//! the warm path costs no round trips at all (see [`mod@crate::cache`]).
//!
//! ## Quick start
//!
//! Clients program against the [`FileStore`] trait — the client-visible
//! protocol of §5 — and the retrying [`FileStoreExt::update`] transaction API
//! built on top of it.  The same code runs unchanged over this local service
//! and over an RPC connection (`afs_client::RemoteFs`), which also implements
//! `FileStore`:
//!
//! ```
//! use afs_core::{FileService, FileStore, FileStoreExt, PagePath};
//! use bytes::Bytes;
//!
//! let service = FileService::in_memory();
//! let store = &*service; // any &impl FileStore — local service or RemoteFs
//! let file = store.create_file().unwrap();
//!
//! // Every update happens inside a version.  `update` creates one, runs the
//! // closure against a typed handle, commits in one shot, and automatically
//! // redoes the whole closure on a fresh version when a concurrent commit
//! // makes the updates non-serialisable (§5.2's redo discipline).
//! let page = store
//!     .update(&file, |tx| {
//!         tx.append(&PagePath::root(), Bytes::from_static(b"hello, Amoeba"))
//!     })
//!     .unwrap();
//!
//! // Committed state is read through the current version.
//! let current = store.current_version(&file).unwrap();
//! assert_eq!(
//!     store.read_committed_page(&current, &page).unwrap(),
//!     Bytes::from_static(b"hello, Amoeba")
//! );
//! ```
//!
//! Multi-page updates should use the batched [`Update::read_many`] /
//! [`Update::write_many`] operations ([`FileStore::read_pages`] /
//! [`FileStore::write_pages`] on the trait): a local store just loops, while a
//! remote store ships one request per transport frame, so a k-page update
//! costs O(1) round trips instead of O(k).  The remote stores all sit on the
//! multiplexed RPC engine (`amoeba_rpc::MuxClient`): frames are tagged with
//! request ids and replies may return out of order, so many client threads
//! share a handful of connections with their transactions in flight
//! concurrently — the trait consumer sees only the blocking
//! one-request/one-reply discipline of the paper, while the wire underneath
//! pipelines.
//!
//! ## Sharding: many services, one namespace
//!
//! One `FileService` is one *shard* of the paper's distributed service.  A
//! sharded deployment runs N services side by side, each minting object ids
//! from its own residue class — [`ServiceConfig::object_id_offset`] `= i`,
//! [`ServiceConfig::object_id_stride`] `= n` for shard `i` of `n` (see
//! [`FileService::for_shard`]) — so the shard holding any file or version is
//! derivable from its capability alone via `amoeba_capability::shard_of`.  The
//! client-side router (`afs_client::ShardedStore`) implements [`FileStore`]
//! over the shard set, which is why every trait consumer (the update loop, the
//! cache, the workloads, the conformance suite) runs over 1 or N shards
//! unchanged.  Each shard keeps its blocks on an N-replica
//! `amoeba_block::ReplicatedBlockStore`: a write is acknowledged once a
//! majority of the current membership epoch has durably applied it
//! (`CommitRule::Quorum`, the default — `WriteAll` is kept as a toggle),
//! missed writes are queued as sequence-stamped intentions and replayed by an
//! epoch-stamped resync before the replica serves reads again, and fail-over
//! reads repair stale copies they detect.  The per-shard commit keeps the
//! durability-at-commit rule below, so crashing or partitioning any minority
//! of a shard's replicas loses no committed data and surfaces no client
//! errors.  [`FileStore::io_stats`] on a sharded store is the *sum*
//! over shards; [`FileStore::shard_io_stats`] exposes the per-shard figures.
//!
//! ## Naming: directories are ordinary files
//!
//! This crate knows nothing about names, and that is deliberate: the paper
//! locates files by capability alone and delegates naming to a separate
//! directory server.  The reproduction's directory service (crate `afs-dir`)
//! is a *client* of this crate: each directory is an ordinary file whose
//! pages hold a serialized `name → (capability, rights mask)` table, and
//! every directory mutation is one retrying [`FileStoreExt::update`]
//! transaction that reads and rewrites the directory's root page.  Concurrent
//! mutations of one directory therefore conflict exactly like any other
//! concurrent update and are redone via OCC retry; durability-at-commit, the
//! batched flush, replication and sharded placement all apply to directory
//! state automatically because nothing distinguishes it from file state.
//! Cross-directory rename is an ordered pair of idempotent commits (insert at
//! the destination, then remove at the source), so a renamed entry is never
//! unreachable.  Path resolution and its prefix cache live in
//! `afs_client::NamedStore`; the RPC façade in `afs_server::dir`.
//!
//! ## Durability at commit — one batch, then the version page
//!
//! The paper's commit protocol establishes durability exactly once, at the atomic
//! commit point: "First it ascertains that all of V.b's pages are safely on disk",
//! *then* it tests and sets the commit reference.  The service therefore buffers
//! all page writes of an uncommitted version in memory (the write-back buffer of
//! [`pageio::PageIo`]) and flushes them at the start of [`FileService::commit`]
//! in two physical steps:
//!
//! 1. **every dirty data page, as one scatter-gather
//!    [`amoeba_block::BlockStore::write_batch`] call**, with the children-first
//!    order preserved inside the batch (stores apply batch entries in order, so
//!    a crash mid-batch leaves a children-first prefix durable, never a parent
//!    pointing at an unwritten child), then
//! 2. **the version page, by itself, strictly last** — it becomes durable only
//!    after every page it references.
//!
//! A k-write update to one page costs 0 physical writes until commit; the commit
//! itself writes O(dirty pages) *pages* but only O(1) physical write **calls**
//! ([`PageIoStats::block_write_calls`] vs [`PageIoStats::page_writes`] is the
//! realised batching factor), and over replicated storage the batch travels to
//! each replica as one call — one `WriteBlocks` RPC per replica when the disks
//! are behind RPC.  Under quorum commits the two-step ordering holds
//! *per acknowledged quorum*: each replica receives the data batch and the
//! version page in order through its FIFO stream, the version-page write is
//! issued only after the data batch was quorum-acked, and a replica that
//! missed either gets both as ordered intentions at resync — so any replica
//! that serves reads saw the version page only after every page it
//! references.  Aborted versions never touch the disk at all, and crash
//! recovery treats an unflushed uncommitted version as aborted, which is the
//! paper's redo rule.  Set [`ServiceConfig::write_back`] to `false` to restore
//! write-through page I/O, and [`ServiceConfig::batch_flush`] to `false` to
//! restore the per-page flush (both used by the `perf-smoke` benchmark to
//! measure their deltas, reported in
//! [`PageIoStats::pages_flushed_at_commit`] and
//! [`PageIoStats::block_write_calls`]).
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`page`] | Fig. 3 | page layout, reference table, 28+4-bit packed references |
//! | [`flags`] | §5.1 | the C/R/W/S/M flags and their 4-bit encoding |
//! | [`path`] | §5 | client-visible page path names |
//! | [`pageio`] | §4, §5.4 | page I/O: write-back buffer, sharded `Arc` page cache, I/O counters |
//! | [`service`] | §5 | the [`FileService`] façade, files, versions, capabilities |
//! | [`store`] | §5 | the [`FileStore`] trait: the client-visible protocol, batched ops |
//! | [`update`] | §5.2, §6 | the retrying [`FileStoreExt::update`] transaction API |
//! | [`version`] | §5.1, Fig. 4 | version creation, the family tree, abort |
//! | [`cow`] | §5.1 | copy-on-write page access and flag maintenance |
//! | [`commit`] | §5.2 | validation, merge, and the commit-reference critical section |
//! | [`locking`] | §5.3 | top/inner/soft locks, super-file updates, lock crash recovery |
//! | [`gc`] | §5.1 | the parallel garbage collector |
//! | [`cache`] | §5.4 | cache validation via the serialisability test |
//! | [`recover`] | §4, §5.4.1 | rebuilding the file table from blocks after a crash |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod commit;
pub mod cow;
pub mod flags;
pub mod gc;
pub mod locking;
pub mod page;
pub mod pageio;
pub mod path;
pub mod recover;
pub mod service;
pub mod store;
pub mod types;
pub mod update;
pub mod version;

pub use cache::CacheValidation;
pub use commit::{CommitReceipt, SerialiseReport};
pub use cow::PageInfo;
pub use flags::PageFlags;
pub use gc::{GarbageCollector, GcReport};
pub use locking::{LockRecoveryReport, SuperUpdate};
pub use page::{Page, PageRef, VersionHeader, MAX_PAGE_DATA};
pub use pageio::{PageIoStats, PageMut};
pub use path::PagePath;
pub use recover::RecoveryReport;
pub use service::{CommitStatsSnapshot, FileService, ServiceConfig, VersionState};
pub use store::FileStore;
pub use types::{FileId, FsError, Result, VersionId};
pub use update::{Committed, FileStoreExt, RetryPolicy, Update};
pub use version::{FamilyTree, VersionOptions};

// Re-export the substrate types callers need to construct a service.
pub use amoeba_block::{BlockNr, BlockServer, MemStore, ReplicatedBlockStore};
pub use amoeba_capability::{shard_of, Capability, Port, Rights};
pub use bytes::Bytes;
