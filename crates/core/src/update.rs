//! The retrying update transaction the optimistic design expects of clients.
//!
//! "Some updates will have to be redone when concurrent updates are not
//! serialisable, but with the unbounded potential of computing power that
//! distributed systems offer, redoing an operation now and then is acceptable"
//! (§6).  [`FileStoreExt::update`] packages that redo loop over any
//! [`FileStore`]: create a version, run the caller's closure against a typed
//! [`Update`] handle that owns the version capability, commit in one shot; on a
//! serialisability conflict, back off (bounded, with jitter) and run the whole
//! closure again on a fresh version.
//!
//! Because the loop is written against the trait, the identical client code
//! retries over a local [`crate::FileService`] and over a remote
//! `afs_client::RemoteFs` connection.

use std::time::Duration;

use bytes::Bytes;

use amoeba_capability::Capability;

use crate::commit::CommitReceipt;
use crate::cow::PageInfo;
use crate::path::PagePath;
use crate::service::FileService;
use crate::store::FileStore;
use crate::types::{FsError, Result};

/// How [`FileStoreExt::update_with`] retries conflicting updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (each on a fresh version) before giving up
    /// with [`FsError::SerialisabilityConflict`].  Clamped to at least 1.
    pub max_attempts: usize,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_backoff: Duration,
    /// Upper bound on the per-attempt backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 64,
            base_backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// A policy with a different attempt bound and the default backoff shape.
    pub fn with_max_attempts(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Sleeps for the bounded, jittered backoff of attempt number `attempt`
    /// (1-based; attempt 1 never sleeps).
    fn back_off(&self, attempt: usize) {
        if attempt <= 1 || self.base_backoff.is_zero() {
            return;
        }
        let doublings = (attempt - 2).min(16) as u32;
        let ceiling = self
            .base_backoff
            .saturating_mul(1 << doublings)
            .min(self.max_backoff)
            .max(self.base_backoff);
        // Jitter in [ceiling/2, ceiling] desynchronises convoys of conflicting
        // clients without pulling a RNG dependency into the core crate.
        let nanos = ceiling.as_nanos().max(1) as u64;
        let jitter = splitmix(attempt as u64 ^ clock_entropy()) % (nanos / 2 + 1);
        std::thread::sleep(Duration::from_nanos(nanos / 2 + jitter));
    }
}

fn clock_entropy() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0)
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A typed handle on one update attempt: owns the version capability and
/// exposes the page operations valid inside an uncommitted version.
///
/// Handed to the closure of [`FileStoreExt::update`]; commit and abort stay
/// with the retry loop, so a closure cannot commit half an update.
pub struct Update<'a, S: FileStore + ?Sized> {
    store: &'a S,
    version: Capability,
    attempt: usize,
}

impl<'a, S: FileStore + ?Sized> Update<'a, S> {
    /// The store this update runs against.
    pub fn store(&self) -> &'a S {
        self.store
    }

    /// The capability of this attempt's uncommitted version.
    pub fn version(&self) -> &Capability {
        &self.version
    }

    /// The 1-based attempt number (> 1 when earlier attempts hit a
    /// serialisability conflict).
    pub fn attempt(&self) -> usize {
        self.attempt
    }

    /// Reads the page at `path`.
    pub fn read(&self, path: &PagePath) -> Result<Bytes> {
        self.store.read_page(&self.version, path)
    }

    /// Writes the page at `path`.
    pub fn write(&self, path: &PagePath, data: Bytes) -> Result<()> {
        self.store.write_page(&self.version, path, data)
    }

    /// Appends a new page under `parent` and returns its path.
    pub fn append(&self, parent: &PagePath, data: Bytes) -> Result<PagePath> {
        self.store.append_page(&self.version, parent, data)
    }

    /// Inserts a new page at `index` under `parent` and returns its path.
    pub fn insert(&self, parent: &PagePath, index: u16, data: Bytes) -> Result<PagePath> {
        self.store.insert_page(&self.version, parent, index, data)
    }

    /// Removes the page at `path` and its subtree.
    pub fn remove(&self, path: &PagePath) -> Result<()> {
        self.store.remove_page(&self.version, path)
    }

    /// Reads several pages in one batched operation (one round trip on remote
    /// stores).
    pub fn read_many(&self, paths: &[PagePath]) -> Result<Vec<Bytes>> {
        self.store.read_pages(&self.version, paths)
    }

    /// Writes several pages in one batched operation (one round trip per
    /// transport frame on remote stores).
    pub fn write_many(&self, writes: &[(PagePath, Bytes)]) -> Result<()> {
        self.store.write_pages(&self.version, writes)
    }
}

/// What a committed update reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Committed<R> {
    /// The closure's return value from the attempt that committed.
    pub value: R,
    /// Number of attempts used (1 = no conflict).
    pub attempts: usize,
    /// The service's commit receipt for the successful attempt.
    pub receipt: CommitReceipt,
}

/// The retrying update API, available on every [`FileStore`].
pub trait FileStoreExt: FileStore {
    /// Runs `op` inside a fresh version of `file` and commits; on a
    /// serialisability conflict the whole closure is redone on a new version
    /// (default [`RetryPolicy`]).  Returns the closure's value from the
    /// attempt that committed.
    ///
    /// Any error returned by `op` aborts the attempt's version and is passed
    /// through unchanged.
    fn update<R>(
        &self,
        file: &Capability,
        op: impl FnMut(&mut Update<'_, Self>) -> Result<R>,
    ) -> Result<R> {
        self.update_with(file, RetryPolicy::default(), op)
            .map(|committed| committed.value)
    }

    /// Like [`FileStoreExt::update`], with an explicit retry policy, returning
    /// the full [`Committed`] outcome (value, attempts, receipt).
    fn update_with<R>(
        &self,
        file: &Capability,
        policy: RetryPolicy,
        mut op: impl FnMut(&mut Update<'_, Self>) -> Result<R>,
    ) -> Result<Committed<R>> {
        let max_attempts = policy.max_attempts.max(1);
        for attempt in 1..=max_attempts {
            policy.back_off(attempt);
            let version = self.create_version(file)?;
            let mut update = Update {
                store: self,
                version,
                attempt,
            };
            let value = match op(&mut update) {
                Ok(value) => value,
                Err(err) => {
                    // The attempt is abandoned for a non-conflict reason; free
                    // the version's private pages (best effort — on a remote
                    // store the transport may be the thing that failed).
                    let _ = self.abort(&version);
                    return Err(err);
                }
            };
            match self.commit(&version) {
                Ok(receipt) => {
                    return Ok(Committed {
                        value,
                        attempts: attempt,
                        receipt,
                    })
                }
                Err(FsError::SerialisabilityConflict) => {
                    // The service already removed the conflicting version
                    // (§5.2); redo the update from scratch.
                    continue;
                }
                Err(FsError::AlreadyCommitted) => {
                    // This attempt's version is private, so `AlreadyCommitted`
                    // can only mean the commit *did* happen and its reply was
                    // lost (e.g. the transport failed over and re-sent the
                    // commit to a replica).  Report success; the receipt's
                    // validation counters are unknown for a replayed commit.
                    return Ok(Committed {
                        value,
                        attempts: attempt,
                        receipt: CommitReceipt {
                            fast_path: false,
                            validations: 0,
                            pages_compared: 0,
                        },
                    });
                }
                Err(err) => {
                    // A non-conflict commit failure (transport fault, protocol
                    // error, …): best-effort abort so the uncommitted version
                    // does not linger server-side.  If the commit actually
                    // succeeded and only the reply was lost, the abort is
                    // rejected server-side and changes nothing.
                    let _ = self.abort(&version);
                    return Err(err);
                }
            }
        }
        Err(FsError::SerialisabilityConflict)
    }
}

impl<S: FileStore + ?Sized> FileStoreExt for S {}

impl FileService {
    /// Shape information for a page inside an [`Update`] running directly
    /// against a local service (not part of the remote protocol).
    pub fn update_page_info(&self, update: &Update<'_, Self>, path: &PagePath) -> Result<PageInfo> {
        self.page_info(update.version(), path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn counter_file(service: &Arc<FileService>) -> (Capability, PagePath) {
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        let page = service
            .append_page(
                &v,
                &PagePath::root(),
                Bytes::from(0u64.to_le_bytes().to_vec()),
            )
            .unwrap();
        service.commit(&v).unwrap();
        (file, page)
    }

    #[test]
    fn update_commits_and_returns_the_closure_value() {
        let service = FileService::in_memory();
        let (file, page) = counter_file(&service);
        let value = service
            .update(&file, |tx| {
                tx.write(&page, Bytes::from_static(b"updated"))?;
                Ok(42)
            })
            .unwrap();
        assert_eq!(value, 42);
        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service.read_committed_page(&current, &page).unwrap(),
            Bytes::from_static(b"updated")
        );
    }

    #[test]
    fn conflicting_updates_are_redone_until_all_commit() {
        let service = FileService::in_memory();
        let (file, page) = counter_file(&service);
        let threads = 4;
        let per_thread = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let service = &service;
                let page = page.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        service
                            .update_with(&file, RetryPolicy::with_max_attempts(10_000), |tx| {
                                let old = tx.read(&page)?;
                                let value = u64::from_le_bytes(old[..8].try_into().unwrap()) + 1;
                                tx.write(&page, Bytes::from(value.to_le_bytes().to_vec()))
                            })
                            .unwrap();
                    }
                });
            }
        });
        let current = service.current_version(&file).unwrap();
        let raw = service.read_committed_page(&current, &page).unwrap();
        assert_eq!(
            u64::from_le_bytes(raw[..8].try_into().unwrap()),
            (threads * per_thread) as u64,
            "no update may be lost"
        );
    }

    #[test]
    fn closure_errors_abort_the_version_and_surface() {
        let service = FileService::in_memory();
        let (file, _page) = counter_file(&service);
        let err = service
            .update(&file, |tx| -> Result<()> {
                tx.write(&PagePath::root(), Bytes::from_static(b"partial"))?;
                Err(FsError::WouldBlock)
            })
            .unwrap_err();
        assert_eq!(err, FsError::WouldBlock);
        // The partial write never became visible.
        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service
                .read_committed_page(&current, &PagePath::root())
                .unwrap(),
            Bytes::new()
        );
    }

    #[test]
    fn exhausted_retries_report_a_conflict() {
        let service = FileService::in_memory();
        let (file, page) = counter_file(&service);
        // Every attempt loses: another client writes the page after we read it.
        let err = service
            .update_with(&file, RetryPolicy::with_max_attempts(3), |tx| {
                tx.read(&page)?;
                let winner = tx.store().create_version(&file).unwrap();
                tx.store()
                    .write_page(&winner, &page, Bytes::from_static(b"w"))
                    .unwrap();
                tx.store().commit(&winner).unwrap();
                tx.write(&PagePath::root(), Bytes::from_static(b"derived"))
            })
            .unwrap_err();
        assert_eq!(err, FsError::SerialisabilityConflict);
    }

    #[test]
    fn attempt_number_is_visible_to_the_closure() {
        let service = FileService::in_memory();
        let (file, _) = counter_file(&service);
        let attempts = service.update(&file, |tx| Ok(tx.attempt())).unwrap();
        assert_eq!(attempts, 1);
    }
}
