//! The page: unit of storage and transfer of the file service (Fig. 3).
//!
//! A page is divided into a *header area*, used by the file service, and the *page
//! itself*, which holds the reference table and the client data:
//!
//! ```text
//! ┌──────────────────────────────────────────────┐
//! │ file capability        (version page only)   │
//! │ version capability     (version page only)   │
//! │ commit reference       (version page only)   │
//! │ top lock               (version page only)   │
//! │ inner lock             (version page only)   │
//! │ parent reference       (version page only)   │
//! │ base reference                               │
//! │ nrefs                                        │
//! │ dsize                                        │
//! ╞══════════════════════════════════════════════╡
//! │ reference table: nrefs × (block nr | CRWSM)  │
//! │ client data: dsize bytes                     │
//! └──────────────────────────────────────────────┘
//! ```
//!
//! Each reference packs a 28-bit block number and the 4-bit flag code of
//! [`PageFlags`] into 32 bits, exactly as the paper describes.  The client data has
//! no predefined structure; its maximum size is the 32 KiB transaction bound.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use amoeba_block::BlockNr;
use amoeba_capability::{Capability, Port};

use crate::flags::PageFlags;
use crate::types::{decode_block_ref, encode_block_ref, FsError, Result};

/// Maximum number of client data bytes in one page: 32 KiB (§5).
pub const MAX_PAGE_DATA: usize = 32 * 1024;

/// Maximum number of references a page can hold.
pub const MAX_REFS: usize = u16::MAX as usize;

/// Magic number identifying an encoded file-service page.
const PAGE_MAGIC: u16 = 0xaf5e;

/// One entry of a page's reference table: a pointer to a page in the next level of
/// the page tree, plus the C/R/W/S/M flags describing how that page has been used in
/// this version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRef {
    /// Block number of the referred-to page.
    pub block: BlockNr,
    /// Access flags for the referred-to page.
    pub flags: PageFlags,
}

impl PageRef {
    /// A reference to `block` with all flags clear (shared with the base version).
    pub fn shared(block: BlockNr) -> Self {
        PageRef {
            block,
            flags: PageFlags::CLEAR,
        }
    }

    /// Packs the reference into its 32-bit on-disk form.
    pub fn pack(self) -> Result<u32> {
        let code = self.flags.encode()?;
        Ok((self.block << 4) | u32::from(code))
    }

    /// Unpacks a 32-bit on-disk reference.
    pub fn unpack(raw: u32) -> Result<Self> {
        let block = raw >> 4;
        let flags = PageFlags::decode((raw & 0xf) as u8)?;
        Ok(PageRef { block, flags })
    }
}

/// The header fields that exist only in version pages (the root pages of versions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionHeader {
    /// Capability of the file whose root this page is.
    pub file_cap: Capability,
    /// Capability of the version whose root this page is.
    pub version_cap: Capability,
    /// Block number of the successor version's version page; `None` while this
    /// version is current (or uncommitted).
    pub commit_reference: Option<BlockNr>,
    /// Port of the update currently holding the top lock; [`Port::NULL`] if unlocked.
    pub top_lock: Port,
    /// Port of the enclosing super-file update holding the inner lock; [`Port::NULL`]
    /// if unlocked.
    pub inner_lock: Port,
    /// Block number of the parent version page in the system tree, for super-file
    /// structure; `None` for files directly under the file-system root.
    pub parent_reference: Option<BlockNr>,
    /// Access flags for the version page itself.  The paper notes the root page has
    /// no parent reference to store its flags in, so "the managing server keeps these
    /// flags separate"; we persist them in the header so they survive server crashes,
    /// which the paper requires of flags in general (§5.4).
    pub root_flags: PageFlags,
}

impl VersionHeader {
    /// A fresh version header for an uncommitted version.
    pub fn new(file_cap: Capability, version_cap: Capability) -> Self {
        VersionHeader {
            file_cap,
            version_cap,
            commit_reference: None,
            top_lock: Port::NULL,
            inner_lock: Port::NULL,
            parent_reference: None,
            root_flags: PageFlags::CLEAR,
        }
    }
}

/// An in-memory page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// Version-page header; `None` for ordinary (interior or leaf) pages.
    pub version: Option<VersionHeader>,
    /// Block number of the page this page was copied from; `None` for pages created
    /// from scratch.
    pub base_reference: Option<BlockNr>,
    /// The reference table.
    pub refs: Vec<PageRef>,
    /// The client data.
    pub data: Bytes,
}

impl Page {
    /// Creates an ordinary page with the given data and no references.
    pub fn leaf(data: Bytes) -> Self {
        Page {
            version: None,
            base_reference: None,
            refs: Vec::new(),
            data,
        }
    }

    /// Creates an empty ordinary page.
    pub fn empty() -> Self {
        Page::leaf(Bytes::new())
    }

    /// Creates a version page with the given header.
    pub fn version_page(header: VersionHeader) -> Self {
        Page {
            version: Some(header),
            base_reference: None,
            refs: Vec::new(),
            data: Bytes::new(),
        }
    }

    /// True if this is a version page.
    pub fn is_version_page(&self) -> bool {
        self.version.is_some()
    }

    /// Number of references in the reference table (the `nrefs` header field).
    pub fn nrefs(&self) -> u16 {
        self.refs.len() as u16
    }

    /// Number of client data bytes (the `dsize` header field).
    pub fn dsize(&self) -> u32 {
        self.data.len() as u32
    }

    /// Returns the reference at `index`.
    pub fn ref_at(&self, index: u16) -> Result<PageRef> {
        self.refs
            .get(index as usize)
            .copied()
            .ok_or(FsError::BadReferenceIndex(index))
    }

    /// Replaces the reference at `index`.
    pub fn set_ref(&mut self, index: u16, reference: PageRef) -> Result<()> {
        let slot = self
            .refs
            .get_mut(index as usize)
            .ok_or(FsError::BadReferenceIndex(index))?;
        *slot = reference;
        Ok(())
    }

    /// Appends a reference and returns its index.
    pub fn push_ref(&mut self, reference: PageRef) -> Result<u16> {
        if self.refs.len() >= MAX_REFS {
            return Err(FsError::BadReferenceIndex(u16::MAX));
        }
        self.refs.push(reference);
        Ok((self.refs.len() - 1) as u16)
    }

    /// Inserts a reference at `index`, shifting later references up ("insert page").
    pub fn insert_ref(&mut self, index: u16, reference: PageRef) -> Result<()> {
        if index as usize > self.refs.len() || self.refs.len() >= MAX_REFS {
            return Err(FsError::BadReferenceIndex(index));
        }
        self.refs.insert(index as usize, reference);
        Ok(())
    }

    /// Removes the reference at `index`, shifting later references down
    /// ("remove page").  Returns the removed reference.
    pub fn remove_ref(&mut self, index: u16) -> Result<PageRef> {
        if (index as usize) < self.refs.len() {
            Ok(self.refs.remove(index as usize))
        } else {
            Err(FsError::BadReferenceIndex(index))
        }
    }

    /// Replaces the client data.
    pub fn set_data(&mut self, data: Bytes) -> Result<()> {
        if data.len() > MAX_PAGE_DATA {
            return Err(FsError::PageTooLarge(data.len()));
        }
        self.data = data;
        Ok(())
    }

    /// Serialises the page into its on-disk form.
    pub fn encode(&self) -> Result<Bytes> {
        if self.data.len() > MAX_PAGE_DATA {
            return Err(FsError::PageTooLarge(self.data.len()));
        }
        let mut buf = BytesMut::with_capacity(64 + self.refs.len() * 4 + self.data.len());
        buf.put_u16_le(PAGE_MAGIC);
        buf.put_u8(u8::from(self.version.is_some()));
        if let Some(v) = &self.version {
            v.file_cap.encode(&mut buf);
            v.version_cap.encode(&mut buf);
            buf.put_u32_le(encode_block_ref(v.commit_reference));
            buf.put_u64_le(v.top_lock.raw());
            buf.put_u64_le(v.inner_lock.raw());
            buf.put_u32_le(encode_block_ref(v.parent_reference));
            buf.put_u8(v.root_flags.encode()?);
        }
        buf.put_u32_le(encode_block_ref(self.base_reference));
        buf.put_u16_le(self.nrefs());
        buf.put_u32_le(self.dsize());
        for r in &self.refs {
            buf.put_u32_le(r.pack()?);
        }
        buf.put_slice(&self.data);
        Ok(buf.freeze())
    }

    /// Deserialises a page from its on-disk form.
    pub fn decode(mut raw: Bytes) -> Result<Page> {
        let too_short = || FsError::CorruptPage("page truncated".into());
        if raw.remaining() < 3 {
            return Err(too_short());
        }
        let magic = raw.get_u16_le();
        if magic != PAGE_MAGIC {
            return Err(FsError::CorruptPage(format!("bad magic {magic:#06x}")));
        }
        let is_version = raw.get_u8() != 0;
        let version = if is_version {
            let file_cap = Capability::decode(&mut raw).ok_or_else(too_short)?;
            let version_cap = Capability::decode(&mut raw).ok_or_else(too_short)?;
            if raw.remaining() < 4 + 8 + 8 + 4 + 1 {
                return Err(too_short());
            }
            let commit_reference = decode_block_ref(raw.get_u32_le());
            let top_lock = Port::from_raw(raw.get_u64_le());
            let inner_lock = Port::from_raw(raw.get_u64_le());
            let parent_reference = decode_block_ref(raw.get_u32_le());
            let root_flags = PageFlags::decode(raw.get_u8())?;
            Some(VersionHeader {
                file_cap,
                version_cap,
                commit_reference,
                top_lock,
                inner_lock,
                parent_reference,
                root_flags,
            })
        } else {
            None
        };
        if raw.remaining() < 4 + 2 + 4 {
            return Err(too_short());
        }
        let base_reference = decode_block_ref(raw.get_u32_le());
        let nrefs = raw.get_u16_le() as usize;
        let dsize = raw.get_u32_le() as usize;
        if raw.remaining() < nrefs * 4 + dsize {
            return Err(too_short());
        }
        let mut refs = Vec::with_capacity(nrefs);
        for _ in 0..nrefs {
            refs.push(PageRef::unpack(raw.get_u32_le())?);
        }
        let data = raw.split_to(dsize);
        Ok(Page {
            version,
            base_reference,
            refs,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_capability::Rights;

    fn sample_cap(object: u64) -> Capability {
        Capability {
            port: Port::from_raw(0x1234),
            object,
            rights: Rights::ALL,
            check: 0xfeed,
        }
    }

    fn flag(copied: bool, read: bool, written: bool, searched: bool, modified: bool) -> PageFlags {
        PageFlags {
            copied,
            read,
            written,
            searched,
            modified,
        }
    }

    #[test]
    fn leaf_page_round_trips() {
        let page = Page::leaf(Bytes::from_static(b"client data, no structure"));
        let decoded = Page::decode(page.encode().unwrap()).unwrap();
        assert_eq!(decoded, page);
        assert!(!decoded.is_version_page());
    }

    #[test]
    fn version_page_round_trips_with_all_header_fields() {
        let mut header = VersionHeader::new(sample_cap(1), sample_cap(2));
        header.commit_reference = Some(1234);
        header.parent_reference = Some(77);
        header.top_lock = Port::from_raw(0xaa);
        header.inner_lock = Port::from_raw(0xbb);
        header.root_flags = flag(true, true, false, true, false);
        let mut page = Page::version_page(header);
        page.base_reference = Some(99);
        page.refs.push(PageRef {
            block: 500,
            flags: flag(true, false, true, false, false),
        });
        page.refs.push(PageRef::shared(501));
        page.data = Bytes::from_static(b"root data");

        let decoded = Page::decode(page.encode().unwrap()).unwrap();
        assert_eq!(decoded, page);
        assert!(decoded.is_version_page());
        assert_eq!(decoded.nrefs(), 2);
        assert_eq!(decoded.dsize(), 9);
    }

    #[test]
    fn page_ref_packing_uses_28_plus_4_bits() {
        let r = PageRef {
            block: amoeba_block::MAX_BLOCK_NR - 1,
            flags: flag(true, true, true, true, true),
        };
        let packed = r.pack().unwrap();
        assert_eq!(PageRef::unpack(packed).unwrap(), r);
        // The packed form is exactly 32 bits with the block in the top 28.
        assert_eq!(packed >> 4, amoeba_block::MAX_BLOCK_NR - 1);
    }

    #[test]
    fn oversized_data_is_rejected() {
        let mut page = Page::empty();
        assert!(page
            .set_data(Bytes::from(vec![0u8; MAX_PAGE_DATA + 1]))
            .is_err());
        assert!(page.set_data(Bytes::from(vec![0u8; MAX_PAGE_DATA])).is_ok());
    }

    #[test]
    fn reference_table_editing() {
        let mut page = Page::empty();
        let i0 = page.push_ref(PageRef::shared(10)).unwrap();
        let i1 = page.push_ref(PageRef::shared(11)).unwrap();
        assert_eq!((i0, i1), (0, 1));
        page.insert_ref(1, PageRef::shared(99)).unwrap();
        assert_eq!(page.ref_at(1).unwrap().block, 99);
        assert_eq!(page.ref_at(2).unwrap().block, 11);
        let removed = page.remove_ref(0).unwrap();
        assert_eq!(removed.block, 10);
        assert_eq!(page.nrefs(), 2);
        assert!(page.ref_at(5).is_err());
        assert!(page.set_ref(7, PageRef::shared(1)).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Page::decode(Bytes::from_static(b"")).is_err());
        assert!(Page::decode(Bytes::from_static(b"\0\0\0\0\0\0")).is_err());
        // Valid magic but truncated body.
        let mut buf = BytesMut::new();
        buf.put_u16_le(PAGE_MAGIC);
        buf.put_u8(0);
        assert!(Page::decode(buf.freeze()).is_err());
    }

    #[test]
    fn decode_rejects_truncated_refs() {
        let mut page = Page::empty();
        page.push_ref(PageRef::shared(1)).unwrap();
        let encoded = page.encode().unwrap();
        // Drop the last two bytes so the reference table is incomplete.
        let truncated = encoded.slice(..encoded.len() - 2);
        assert!(Page::decode(truncated).is_err());
    }
}
