//! Rebuilding the file table from the blocks after a severe crash (§4, §5.4.1).
//!
//! "Block servers can support a recovery operation, which given an account number,
//! returns a list of block numbers owned by that account.  A client, e.g. a file
//! server, can then use its redundancy information to restore its file system after a
//! severe crash."
//!
//! Every page the file service writes carries enough redundancy for this: version
//! pages identify their file and their place in the version chain (base and commit
//! references), ordinary pages are reachable from version pages.  Recovery therefore
//! scans the account's blocks, finds the version pages, reconstructs each file's
//! committed chain and re-registers the files and versions under *freshly minted*
//! capabilities (the old capabilities died with the crashed service's secrets — in
//! Amoeba, capability secrets would themselves live in a file, but persisting the
//! minter is outside the scope of this reproduction and orthogonal to the paper's
//! concurrency-control contribution).
//!
//! Uncommitted versions are deliberately *not* salvaged: "uncommitted versions need
//! not be salvaged in a server crash … clients must be prepared to redo the updates in
//! a version."
//!
//! With the write-back page path, an uncommitted version whose commit never ran has
//! usually never been flushed at all: its blocks were allocated but hold no data.
//! Recovery treats those empty blocks as crash garbage and frees them — the version
//! is recovered *as aborted*, exactly the paper-correct outcome.  A version flushed
//! by a commit that crashed before the commit-reference test-and-set shows up as a
//! decodable version page that no commit reference points at, and is discarded by
//! the existing uncommitted-version rule.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use amoeba_block::{BlockNr, BlockServer};
use amoeba_capability::{Capability, Rights};

use crate::page::Page;
use crate::pageio::PageIo;
use crate::service::{FileMeta, FileService, ServiceConfig, VersionMeta, VersionState};
use crate::types::{FsError, Result};

/// What a recovery pass found and rebuilt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Capabilities (freshly minted) of the recovered files, one per file found.
    pub files: Vec<Capability>,
    /// Number of committed versions re-registered across all files.
    pub committed_versions: usize,
    /// Number of uncommitted version pages found and discarded.
    pub discarded_uncommitted: usize,
    /// Number of blocks freed because they were allocated but never written — the
    /// write-back buffer of an uncommitted version that died with the crash.
    pub freed_unflushed: usize,
    /// Number of blocks scanned.
    pub blocks_scanned: usize,
}

impl FileService {
    /// Rebuilds a file service from the blocks owned by `account` on `block_server`.
    ///
    /// This is the severe-crash path: the previous server process (and its in-memory
    /// file table and capability secrets) is gone, but every page is still on disk.
    pub fn recover_from_storage(
        block_server: Arc<BlockServer>,
        account: Capability,
        config: ServiceConfig,
    ) -> Result<(Arc<FileService>, RecoveryReport)> {
        let pages = PageIo::with_cache(
            Arc::clone(&block_server),
            account,
            config.flag_cache_capacity,
        );
        let service = Arc::new(FileService::from_parts(pages, config));
        let report = service.rebuild_tables(&account, &block_server)?;
        Ok((service, report))
    }

    /// Scans the account's blocks and rebuilds the file/version tables.
    fn rebuild_tables(
        self: &Arc<Self>,
        account: &Capability,
        block_server: &Arc<BlockServer>,
    ) -> Result<RecoveryReport> {
        let blocks = block_server.recover(account)?;
        let blocks_scanned = blocks.len();

        // Find every version page and remember its header.
        struct Found {
            block: BlockNr,
            base: Option<BlockNr>,
            commit: Option<BlockNr>,
            old_file_id: u64,
            parent_block: Option<BlockNr>,
        }
        let mut version_pages: Vec<Found> = Vec::new();
        let mut unflushed: Vec<BlockNr> = Vec::new();
        for nr in blocks {
            let raw = match block_server.read(account, nr) {
                Ok(raw) => raw,
                Err(_) => continue,
            };
            if raw.is_empty() {
                // Allocated but never written: the write-back buffer of an
                // uncommitted version that was lost with the crash.  The version is
                // thereby recovered as aborted; the block is crash garbage.
                unflushed.push(nr);
                continue;
            }
            let page = match Page::decode(raw) {
                Ok(page) => page,
                Err(_) => continue, // Not a page we understand; leave it alone.
            };
            if let Some(header) = page.version {
                version_pages.push(Found {
                    block: nr,
                    base: page.base_reference,
                    commit: header.commit_reference,
                    old_file_id: header.file_cap.object,
                    parent_block: header.parent_reference,
                });
            }
        }

        // A version page is *committed* if it is the target of some commit reference,
        // or if it is the head of a chain (no base) — plus the current version, which
        // is the one whose commit reference is nil but which *is* pointed at.  An
        // uncommitted page is one that nobody's commit reference points at and that
        // has a base (it hangs off the chain).
        let committed_targets: HashSet<BlockNr> =
            version_pages.iter().filter_map(|v| v.commit).collect();
        let mut per_file: HashMap<u64, Vec<&Found>> = HashMap::new();
        for found in &version_pages {
            per_file.entry(found.old_file_id).or_default().push(found);
        }

        let mut report = RecoveryReport {
            files: Vec::new(),
            committed_versions: 0,
            discarded_uncommitted: 0,
            freed_unflushed: 0,
            blocks_scanned,
        };
        for nr in unflushed {
            if block_server.free(account, nr).is_ok() {
                report.freed_unflushed += 1;
            }
        }

        // First pass: create the files so parent links can be resolved afterwards.
        let mut block_to_new_file: HashMap<BlockNr, u64> = HashMap::new();
        let mut file_entries: Vec<(u64, Vec<BlockNr>, Vec<BlockNr>)> = Vec::new();
        for (old_file_id, versions) in &per_file {
            let committed: Vec<&&Found> = versions
                .iter()
                .filter(|v| {
                    v.base.is_none() || committed_targets.contains(&v.block) || v.commit.is_some()
                })
                .collect();
            let uncommitted: Vec<&&Found> = versions
                .iter()
                .filter(|v| {
                    v.base.is_some() && !committed_targets.contains(&v.block) && v.commit.is_none()
                })
                .collect();
            if committed.is_empty() {
                report.discarded_uncommitted += uncommitted.len();
                continue;
            }
            // Order the committed chain oldest → current by following commit refs.
            let by_block: HashMap<BlockNr, &&Found> =
                committed.iter().map(|v| (v.block, *v)).collect();
            let mut oldest = committed
                .iter()
                .find(|v| v.base.is_none() || !by_block.contains_key(&v.base.unwrap()))
                .map(|v| v.block)
                .unwrap_or(committed[0].block);
            let mut chain = Vec::new();
            let mut guard = 0usize;
            loop {
                chain.push(oldest);
                let next = by_block.get(&oldest).and_then(|v| v.commit);
                match next {
                    Some(next) if by_block.contains_key(&next) => oldest = next,
                    _ => break,
                }
                guard += 1;
                if guard > committed.len() + 1 {
                    return Err(FsError::CorruptPage(
                        "commit-reference chain does not terminate".into(),
                    ));
                }
            }
            let uncommitted_blocks: Vec<BlockNr> = uncommitted.iter().map(|v| v.block).collect();
            report.discarded_uncommitted += uncommitted_blocks.len();
            file_entries.push((*old_file_id, chain.clone(), uncommitted_blocks));
            for block in &chain {
                block_to_new_file.insert(*block, *old_file_id);
            }
        }

        // Second pass: register files and versions with fresh capabilities.
        let mut old_to_new_file: HashMap<u64, u64> = HashMap::new();
        for (old_file_id, chain, uncommitted_blocks) in &file_entries {
            let file_id = self.next_object_id();
            let file_cap = self.minter.lock().mint(file_id, Rights::ALL);
            old_to_new_file.insert(*old_file_id, file_id);
            let mut version_ids = Vec::new();
            for &block in chain {
                let version_id = self.next_object_id();
                let version_cap = self.minter.lock().mint(version_id, Rights::ALL);
                let meta = VersionMeta {
                    cap: version_cap,
                    file: file_id,
                    block,
                    state: VersionState::Committed,
                    owned_blocks: HashSet::new(),
                    dirty_blocks: HashSet::new(),
                };
                self.register_version(version_id, meta);
                version_ids.push(version_id);
                report.committed_versions += 1;
            }
            let meta = FileMeta {
                id: file_id,
                cap: file_cap,
                oldest_block: chain[0],
                current_hint: *chain.last().expect("chain is non-empty"),
                parent: None,
                children: Vec::new(),
            };
            self.files
                .write()
                .insert(file_id, Arc::new(parking_lot::Mutex::new(meta)));
            report.files.push(file_cap);

            // Uncommitted versions are not salvaged; their pages are freed.
            for &block in uncommitted_blocks {
                let _ = self.pages.free_page(block);
            }
        }

        // Third pass: restore parent/child relationships from parent references.
        for found in &version_pages {
            let Some(parent_block) = found.parent_block else {
                continue;
            };
            let (Some(child_new), Some(parent_old)) = (
                old_to_new_file.get(&found.old_file_id),
                block_to_new_file.get(&parent_block),
            ) else {
                continue;
            };
            let Some(parent_new) = old_to_new_file.get(parent_old) else {
                continue;
            };
            if parent_new == child_new {
                continue;
            }
            if let (Ok(parent_meta), Ok(child_meta)) =
                (self.file_by_id(*parent_new), self.file_by_id(*child_new))
            {
                let mut parent_meta = parent_meta.lock();
                if !parent_meta.children.contains(child_new) {
                    parent_meta.children.push(*child_new);
                }
                child_meta.lock().parent = Some(*parent_new);
            }
        }

        Ok(report)
    }

    /// Constructs a bare service around an existing page store (used by recovery).
    pub(crate) fn from_parts(pages: PageIo, config: ServiceConfig) -> FileService {
        use parking_lot::{Mutex, RwLock};
        use std::sync::atomic::AtomicU64;
        let port = amoeba_capability::Port::random();
        FileService {
            pages,
            minter: Mutex::new(amoeba_capability::Minter::new(port)),
            files: RwLock::new(HashMap::new()),
            versions: RwLock::new(HashMap::new()),
            block_index: RwLock::new(HashMap::new()),
            next_object: AtomicU64::new(1),
            config,
            port,
            crashed_ports: RwLock::new(HashSet::new()),
            commit_stats: crate::service::CommitStats::default(),
        }
    }

    /// Exposes the block-service account this service stores its pages under, so a
    /// recovery harness can hand it to [`FileService::recover_from_storage`].
    pub fn storage_account(&self) -> Capability {
        *self.pages.account()
    }

    /// Exposes the block server this service stores its pages on.
    pub fn block_server(&self) -> Arc<BlockServer> {
        Arc::clone(self.pages.block_server())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PagePath;
    use bytes::Bytes;

    #[test]
    fn committed_data_survives_a_total_server_loss() {
        let block_server = Arc::new(BlockServer::new(Arc::new(amoeba_block::MemStore::new())));
        let service = FileService::new(Arc::clone(&block_server));
        let account = service.storage_account();

        // Build two files with committed content and one pending update.
        let file_a = service.create_file().unwrap();
        let va = service.create_version(&file_a).unwrap();
        let pa = service
            .append_page(&va, &PagePath::root(), Bytes::from_static(b"file A data"))
            .unwrap();
        service.commit(&va).unwrap();

        let file_b = service.create_file().unwrap();
        let vb = service.create_version(&file_b).unwrap();
        service
            .write_page(&vb, &PagePath::root(), Bytes::from_static(b"file B root"))
            .unwrap();
        service.commit(&vb).unwrap();
        // A second committed update to file B, so it has a two-entry chain.
        let vb2 = service.create_version(&file_b).unwrap();
        service
            .write_page(&vb2, &PagePath::root(), Bytes::from_static(b"file B newer"))
            .unwrap();
        service.commit(&vb2).unwrap();
        // An uncommitted update that will be lost with the crash.
        let pending = service.create_version(&file_a).unwrap();
        service
            .write_page(
                &pending,
                &PagePath::root(),
                Bytes::from_static(b"never committed"),
            )
            .unwrap();

        // The server process is gone; only the block server remains.
        drop(service);

        let (recovered, report) = FileService::recover_from_storage(
            Arc::clone(&block_server),
            account,
            ServiceConfig::default(),
        )
        .unwrap();
        assert_eq!(report.files.len(), 2);
        assert!(report.committed_versions >= 4);
        // The pending update was never flushed: it shows up as unflushed crash
        // garbage (write-back) rather than a decodable uncommitted version page.
        assert!(
            report.discarded_uncommitted + report.freed_unflushed >= 1,
            "the pending update must be discarded: {report:?}"
        );

        // Every recovered file's current version is readable; one of them holds
        // file A's page, the other file B's newest root.
        let mut contents = Vec::new();
        for cap in &report.files {
            let current = recovered.current_version(cap).unwrap();
            let root = recovered
                .read_committed_page(&current, &PagePath::root())
                .unwrap();
            let info = recovered
                .committed_page_info(&current, &PagePath::root())
                .unwrap();
            if info.nrefs > 0 {
                contents.push(
                    recovered
                        .read_committed_page(&current, &PagePath::new(vec![0]))
                        .unwrap(),
                );
            }
            contents.push(root);
        }
        assert!(contents.contains(&Bytes::from_static(b"file A data")));
        assert!(contents.contains(&Bytes::from_static(b"file B newer")));
        let _ = pa;
    }

    #[test]
    fn recovered_service_supports_new_updates() {
        let block_server = Arc::new(BlockServer::new(Arc::new(amoeba_block::MemStore::new())));
        let service = FileService::new(Arc::clone(&block_server));
        let account = service.storage_account();
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        service
            .write_page(&v, &PagePath::root(), Bytes::from_static(b"before crash"))
            .unwrap();
        service.commit(&v).unwrap();
        drop(service);

        let (recovered, report) = FileService::recover_from_storage(
            Arc::clone(&block_server),
            account,
            ServiceConfig::default(),
        )
        .unwrap();
        let file = report.files[0];
        let v = recovered.create_version(&file).unwrap();
        assert_eq!(
            recovered.read_page(&v, &PagePath::root()).unwrap(),
            Bytes::from_static(b"before crash")
        );
        recovered
            .write_page(&v, &PagePath::root(), Bytes::from_static(b"after recovery"))
            .unwrap();
        recovered.commit(&v).unwrap();
        let current = recovered.current_version(&file).unwrap();
        assert_eq!(
            recovered
                .read_committed_page(&current, &PagePath::root())
                .unwrap(),
            Bytes::from_static(b"after recovery")
        );
    }

    #[test]
    fn parent_child_relationships_are_restored() {
        let block_server = Arc::new(BlockServer::new(Arc::new(amoeba_block::MemStore::new())));
        let service = FileService::new(Arc::clone(&block_server));
        let account = service.storage_account();
        let parent = service.create_file().unwrap();
        let _child = service.create_sub_file(&parent).unwrap();
        drop(service);

        let (recovered, report) = FileService::recover_from_storage(
            Arc::clone(&block_server),
            account,
            ServiceConfig::default(),
        )
        .unwrap();
        assert_eq!(report.files.len(), 2);
        // One of the recovered files has the other as its child.
        let with_children = report
            .files
            .iter()
            .filter(|cap| {
                let meta = recovered.resolve_file(cap, Rights::READ).unwrap();
                let n = meta.lock().children.len();
                n == 1
            })
            .count();
        assert_eq!(with_children, 1);
    }
}
