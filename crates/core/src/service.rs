//! The file service façade: files, versions and the tables that track them.
//!
//! A [`FileService`] is the state shared by all file-server processes of one logical
//! Amoeba file service: the page store ([`PageIo`] over a [`BlockServer`]), the
//! capability minter, and the file/version tables (the paper's "replicated file
//! table").  Server processes in `afs-server` are thin RPC façades over an
//! `Arc<FileService>`; a process crash loses nothing because every version page is on
//! disk and the tables can be rebuilt from the blocks (see [`recover`](crate::recover)).
//!
//! The concurrency-control machinery lives in the sibling modules and is implemented
//! as further `impl FileService` blocks:
//!
//! * [`cow`](crate::cow) — reading and writing pages with copy-on-write and flag
//!   maintenance,
//! * [`commit`](crate::commit) — the optimistic validation and commit protocol,
//! * [`locking`](crate::locking) — top/inner/soft locks and super-file updates,
//! * [`gc`](crate::gc) — the garbage collector,
//! * [`cache`](crate::cache) — client cache validation.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use amoeba_block::{BlockNr, BlockServer, MemStore};
use amoeba_capability::{Capability, Minter, Port, Rights};

use crate::page::{Page, PageRef, VersionHeader};
use crate::pageio::{PageIo, PageIoStats};
use crate::types::{FileId, FsError, Result, VersionId};

/// Configuration of a file service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Capacity of the server-side page/flag cache; `None` disables it (E13).
    pub flag_cache_capacity: Option<usize>,
    /// Buffer page writes of uncommitted versions in memory and flush them to the
    /// block service at commit time (the paper's durability-at-commit rule).  When
    /// `false` every staged page is written through immediately (shadow-trail
    /// write elision still applies, so unchanged pages are skipped in both modes).
    /// The `perf-smoke` benchmark binary uses the toggle to measure the
    /// write-through vs write-back delta.
    pub write_back: bool,
    /// Flush a commit's dirty data pages as one scatter-gather
    /// [`amoeba_block::BlockStore::write_batch`] call (children-first order
    /// preserved inside the batch, version page still written strictly last,
    /// by itself).  When `false` the flush issues one write call per page —
    /// the pre-batching behaviour, kept so the `perf-smoke` benchmark can
    /// measure the before/after physical-write-call delta.
    ///
    /// The analogous toggle one layer down is the *commit rule* of the
    /// replica set the service flushes to: replicated storage acknowledges
    /// each of these calls at a majority of the current membership epoch by
    /// default (`amoeba_block::CommitRule::Quorum`); constructing the store
    /// with `ReplicatedBlockStore::with_rule(…, CommitRule::WriteAll)`
    /// restores the wait-for-every-replica behaviour for experiments — the
    /// `perf-smoke` benchmark compares the two under a deliberately slow
    /// replica.
    pub batch_flush: bool,
    /// How many committed versions of each file the garbage collector retains.
    pub history_retention: usize,
    /// First residue of the object-id namespace this service mints from.  A shard
    /// `i` of an `n`-shard deployment uses `object_id_offset = i`,
    /// `object_id_stride = n`, so every capability it issues satisfies
    /// `cap.object % n == i` and clients can locate the shard holding any file or
    /// version from the capability alone (`amoeba_capability::shard_of`).
    pub object_id_offset: u64,
    /// Stride of the object-id namespace (see [`ServiceConfig::object_id_offset`]).
    /// The default `1` reproduces the unsharded dense namespace.
    pub object_id_stride: u64,
    /// How long a lock waiter sleeps between checks of the lock field.
    pub lock_poll_interval: std::time::Duration,
    /// How long a waiter keeps retrying before concluding the lock holder is gone and
    /// running crash recovery on the lock.
    pub lock_patience: std::time::Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            flag_cache_capacity: Some(4096),
            write_back: true,
            batch_flush: true,
            history_retention: 8,
            object_id_offset: 0,
            object_id_stride: 1,
            lock_poll_interval: std::time::Duration::from_millis(1),
            lock_patience: std::time::Duration::from_millis(500),
        }
    }
}

/// State of a version in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionState {
    /// Created but not yet committed: a possible future state of the file.
    Uncommitted,
    /// Committed: a past or the current state of the file.
    Committed,
    /// Aborted by the client or removed after a serialisability conflict.
    Aborted,
}

/// Bookkeeping for one file.
#[derive(Debug)]
pub(crate) struct FileMeta {
    /// The file identifier (object number of its capability).
    pub id: FileId,
    /// Owner capability.
    pub cap: Capability,
    /// Block of the oldest committed version page (start of the family tree).
    pub oldest_block: BlockNr,
    /// Cached block of the most recently observed current version page.  The on-disk
    /// commit-reference chain is authoritative; this is only a starting point.
    pub current_hint: BlockNr,
    /// Parent super-file, if this file is a sub-file.
    pub parent: Option<FileId>,
    /// Sub-files contained in this file (making it a super-file when non-empty).
    pub children: Vec<FileId>,
}

/// Bookkeeping for one version.
#[derive(Debug)]
pub(crate) struct VersionMeta {
    /// Owner capability.
    pub cap: Capability,
    /// File this version belongs to.
    pub file: FileId,
    /// Block of the version page.
    pub block: BlockNr,
    /// Life-cycle state.
    pub state: VersionState,
    /// Blocks privately owned by this version (copy-on-write copies).  Used by abort
    /// and by the garbage collector.  Does not include the version page itself.
    pub owned_blocks: HashSet<BlockNr>,
    /// Blocks of this version whose contents currently live only in the write-back
    /// buffer (including the version page).  Flushed by commit, dropped by abort.
    pub dirty_blocks: HashSet<BlockNr>,
}

/// Counters describing commit activity, used by the experiments.
#[derive(Debug, Default)]
pub struct CommitStats {
    /// Commits that succeeded on the first test-and-set (base was still current).
    pub fast_path: AtomicU64,
    /// Commits that had to run the serialisability test against at least one
    /// concurrently committed version.
    pub validated: AtomicU64,
    /// Commits rejected because the updates were not serialisable.
    pub conflicts: AtomicU64,
    /// Total pages visited by serialisability tests.
    pub pages_compared: AtomicU64,
}

/// Snapshot of [`CommitStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CommitStatsSnapshot {
    /// Commits that succeeded on the first test-and-set.
    pub fast_path: u64,
    /// Commits that needed validation against concurrent committers.
    pub validated: u64,
    /// Commits rejected with a serialisability conflict.
    pub conflicts: u64,
    /// Total pages visited by serialisability tests.
    pub pages_compared: u64,
}

/// The Amoeba file service.
pub struct FileService {
    pub(crate) pages: PageIo,
    pub(crate) minter: Mutex<Minter>,
    pub(crate) files: RwLock<HashMap<FileId, Arc<Mutex<FileMeta>>>>,
    pub(crate) versions: RwLock<HashMap<VersionId, Arc<Mutex<VersionMeta>>>>,
    /// Version-page block → version id, so block-keyed lookups (the
    /// `current_version` path, GC trimming) cost one hash probe instead of a scan
    /// that locks every version.  Maintained on create/commit/remove.
    pub(crate) block_index: RwLock<HashMap<BlockNr, VersionId>>,
    pub(crate) next_object: AtomicU64,
    pub(crate) config: ServiceConfig,
    /// The service port; also used as the lock-holder identity written into top/inner
    /// lock fields ("locks are made of ports", §5.3).
    pub(crate) port: Port,
    /// Ports known to belong to crashed updates; waiters use this to trigger lock
    /// recovery instead of waiting forever.  Fed by the experiment harness or by
    /// `afs-server` when it observes a client/server failure.
    pub(crate) crashed_ports: RwLock<HashSet<Port>>,
    /// Commit-path statistics.
    pub(crate) commit_stats: CommitStats,
}

impl std::fmt::Debug for FileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileService")
            .field("port", &self.port)
            .field("files", &self.files.read().len())
            .field("versions", &self.versions.read().len())
            .finish()
    }
}

impl FileService {
    /// Creates a file service over the given block server, with default configuration.
    pub fn new(block_server: Arc<BlockServer>) -> Arc<Self> {
        Self::with_config(block_server, ServiceConfig::default())
    }

    /// Creates a file service entirely in memory — the one-liner used by examples and
    /// tests that do not care about the storage substrate.
    pub fn in_memory() -> Arc<Self> {
        Self::new(Arc::new(BlockServer::new(Arc::new(MemStore::new()))))
    }

    /// Creates a file service for shard `shard` of an `shards`-shard deployment:
    /// its object-id namespace is the residue class `shard` modulo `shards`, so
    /// every capability it mints routes back to it via
    /// `amoeba_capability::shard_of`.
    pub fn for_shard(
        block_server: Arc<BlockServer>,
        shard: usize,
        shards: usize,
        config: ServiceConfig,
    ) -> Arc<Self> {
        assert!(shards > 0 && shard < shards, "shard index out of range");
        Self::with_config(
            block_server,
            ServiceConfig {
                object_id_offset: shard as u64,
                object_id_stride: shards as u64,
                ..config
            },
        )
    }

    /// Creates a file service with explicit configuration.
    pub fn with_config(block_server: Arc<BlockServer>, config: ServiceConfig) -> Arc<Self> {
        assert!(
            config.object_id_stride > 0,
            "object-id stride must be positive"
        );
        assert!(
            config.object_id_offset < config.object_id_stride,
            "object-id offset must be a residue of the stride"
        );
        let account = block_server.create_account();
        let port = Port::random();
        let pages = PageIo::with_cache(block_server, account, config.flag_cache_capacity);
        Arc::new(FileService {
            pages,
            minter: Mutex::new(Minter::new(port)),
            files: RwLock::new(HashMap::new()),
            versions: RwLock::new(HashMap::new()),
            block_index: RwLock::new(HashMap::new()),
            next_object: AtomicU64::new(1),
            config,
            port,
            crashed_ports: RwLock::new(HashSet::new()),
            commit_stats: CommitStats::default(),
        })
    }

    /// The service port.
    pub fn port(&self) -> Port {
        self.port
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Physical page I/O statistics.
    pub fn io_stats(&self) -> PageIoStats {
        self.pages.stats()
    }

    /// Commit-path statistics.
    pub fn commit_stats(&self) -> CommitStatsSnapshot {
        CommitStatsSnapshot {
            fast_path: self.commit_stats.fast_path.load(Ordering::Relaxed),
            validated: self.commit_stats.validated.load(Ordering::Relaxed),
            conflicts: self.commit_stats.conflicts.load(Ordering::Relaxed),
            pages_compared: self.commit_stats.pages_compared.load(Ordering::Relaxed),
        }
    }

    /// Marks a port (an update's lock identity) as crashed, enabling waiters to run
    /// the §5.3 lock-recovery procedure.
    pub fn report_crashed_port(&self, port: Port) {
        self.crashed_ports.write().insert(port);
    }

    /// Clears a previously reported crash (e.g. the update's owner restarted).
    pub fn clear_crashed_port(&self, port: Port) {
        self.crashed_ports.write().remove(&port);
    }

    pub(crate) fn is_port_crashed(&self, port: Port) -> bool {
        self.crashed_ports.read().contains(&port)
    }

    pub(crate) fn next_object_id(&self) -> u64 {
        // Object ids walk the service's residue class: offset + stride, offset +
        // 2·stride, …  With the default offset 0 / stride 1 this is the dense
        // namespace 1, 2, 3, …; a shard of a sharded deployment skips the ids of
        // its siblings so placement is derivable from any capability.
        let counter = self.next_object.fetch_add(1, Ordering::Relaxed);
        self.config.object_id_offset + self.config.object_id_stride * counter
    }

    // ------------------------------------------------------------------
    // Capability resolution.
    // ------------------------------------------------------------------

    pub(crate) fn resolve_file(
        &self,
        cap: &Capability,
        rights: Rights,
    ) -> Result<Arc<Mutex<FileMeta>>> {
        self.minter
            .lock()
            .verify(cap, rights)
            .map_err(|_| FsError::PermissionDenied)?;
        self.files
            .read()
            .get(&cap.object)
            .cloned()
            .ok_or(FsError::NoSuchFile)
    }

    pub(crate) fn resolve_version(
        &self,
        cap: &Capability,
        rights: Rights,
    ) -> Result<Arc<Mutex<VersionMeta>>> {
        self.minter
            .lock()
            .verify(cap, rights)
            .map_err(|_| FsError::PermissionDenied)?;
        self.versions
            .read()
            .get(&cap.object)
            .cloned()
            .ok_or(FsError::NoSuchVersion)
    }

    pub(crate) fn file_by_id(&self, id: FileId) -> Result<Arc<Mutex<FileMeta>>> {
        self.files
            .read()
            .get(&id)
            .cloned()
            .ok_or(FsError::NoSuchFile)
    }

    pub(crate) fn version_meta_by_id(&self, id: VersionId) -> Result<Arc<Mutex<VersionMeta>>> {
        self.versions
            .read()
            .get(&id)
            .cloned()
            .ok_or(FsError::NoSuchVersion)
    }

    /// Registers a version in the table and the block index.
    pub(crate) fn register_version(&self, id: VersionId, meta: VersionMeta) {
        let block = meta.block;
        self.versions.write().insert(id, Arc::new(Mutex::new(meta)));
        self.block_index.write().insert(block, id);
    }

    /// Removes a version from the table and the block index (abort, conflict
    /// removal, GC trimming).
    pub(crate) fn forget_version(&self, id: VersionId, block: BlockNr) {
        self.versions.write().remove(&id);
        let mut index = self.block_index.write();
        if index.get(&block) == Some(&id) {
            index.remove(&block);
        }
    }

    // ------------------------------------------------------------------
    // File creation.
    // ------------------------------------------------------------------

    /// Creates a new file directly under the file-system root and returns its owner
    /// capability.  The file starts with one (empty) committed version, which is its
    /// current version.
    pub fn create_file(&self) -> Result<Capability> {
        self.create_file_inner(None)
    }

    /// Creates a new file as a *sub-file* of the given super-file (§5.3, Fig. 2): its
    /// version page becomes an internal node of the system tree below the parent.
    pub fn create_sub_file(&self, parent_cap: &Capability) -> Result<Capability> {
        let parent = self.resolve_file(parent_cap, Rights::CREATE)?;
        let parent_id = parent.lock().id;
        self.create_file_inner(Some(parent_id))
    }

    fn create_file_inner(&self, parent: Option<FileId>) -> Result<Capability> {
        let file_id = self.next_object_id();
        let version_id = self.next_object_id();
        let (file_cap, version_cap) = {
            let mut minter = self.minter.lock();
            (
                minter.mint(file_id, Rights::ALL),
                minter.mint(version_id, Rights::ALL),
            )
        };

        // The initial, empty, committed version.
        let mut header = VersionHeader::new(file_cap, version_cap);
        if let Some(parent_id) = parent {
            let parent_meta = self.file_by_id(parent_id)?;
            header.parent_reference = Some(parent_meta.lock().current_hint);
        }
        let vpage = Arc::new(Page::version_page(header));
        // The initial version is committed from birth, so it is written through.
        let block = self.pages.allocate_page(&vpage)?;

        let file_meta = FileMeta {
            id: file_id,
            cap: file_cap,
            oldest_block: block,
            current_hint: block,
            parent,
            children: Vec::new(),
        };
        let version_meta = VersionMeta {
            cap: version_cap,
            file: file_id,
            block,
            state: VersionState::Committed,
            owned_blocks: HashSet::new(),
            dirty_blocks: HashSet::new(),
        };
        self.files
            .write()
            .insert(file_id, Arc::new(Mutex::new(file_meta)));
        self.register_version(version_id, version_meta);

        if let Some(parent_id) = parent {
            self.register_child(parent_id, file_id, block)?;
        }
        Ok(file_cap)
    }

    /// Records `child_id` as a sub-file of `parent_id` and adds a reference to the
    /// child's version page in the parent's current version page, so the system tree
    /// (Fig. 2) is navigable and lock recovery can find sub-file version pages.
    fn register_child(
        &self,
        parent_id: FileId,
        child_id: FileId,
        child_block: BlockNr,
    ) -> Result<()> {
        let parent_meta = self.file_by_id(parent_id)?;
        let mut parent_meta = parent_meta.lock();
        parent_meta.children.push(child_id);
        let parent_block = self.current_version_block_locked(&mut parent_meta)?;
        self.pages.update_page(parent_block, |page| {
            page.push_ref(PageRef::shared(child_block))?;
            Ok((true, ()))
        })?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Current-version resolution.
    // ------------------------------------------------------------------

    /// Follows the commit-reference chain from the file's current hint to the actual
    /// current version page and returns its block number.
    pub(crate) fn current_version_block_locked(&self, meta: &mut FileMeta) -> Result<BlockNr> {
        let mut block = meta.current_hint;
        loop {
            let page = self.pages.read_page_uncached(block)?;
            let header = page
                .version
                .as_ref()
                .ok_or_else(|| FsError::CorruptPage("expected a version page".into()))?;
            match header.commit_reference {
                Some(next) => block = next,
                None => break,
            }
        }
        meta.current_hint = block;
        Ok(block)
    }

    /// Returns the block number of the file's current version page.
    pub fn current_version_block(&self, file_cap: &Capability) -> Result<BlockNr> {
        let meta = self.resolve_file(file_cap, Rights::READ)?;
        let mut meta = meta.lock();
        self.current_version_block_locked(&mut meta)
    }

    /// Returns a read-only capability for the file's current version.
    ///
    /// The capability refers to the *committed* current version: its pages can be read
    /// (for example to fill a cache) but not modified.
    pub fn current_version(&self, file_cap: &Capability) -> Result<Capability> {
        let file = self.resolve_file(file_cap, Rights::READ)?;
        let (file_id, block) = {
            let mut meta = file.lock();
            (meta.id, self.current_version_block_locked(&mut meta)?)
        };
        self.version_cap_for_block(file_id, block)
    }

    /// Returns a capability (valid at this service instance) for the version whose
    /// version page lives at `block`, registering the version in the table if it is
    /// not yet known — e.g. after a recovery, or when a companion manager committed it.
    pub(crate) fn version_cap_for_block(
        &self,
        file_id: FileId,
        block: BlockNr,
    ) -> Result<Capability> {
        let known = self.block_index.read().get(&block).copied();
        if let Some(id) = known {
            if let Some(meta) = self.versions.read().get(&id) {
                return Ok(meta.lock().cap);
            }
        }
        // Unknown version page (written by a previous incarnation of the service or a
        // companion manager): register it as a committed version under a fresh
        // capability.
        let page = self.pages.read_page(block)?;
        if page.version.is_none() {
            return Err(FsError::CorruptPage("expected a version page".into()));
        }
        let version_id = self.next_object_id();
        let cap = self.minter.lock().mint(version_id, Rights::ALL);
        let meta = VersionMeta {
            cap,
            file: file_id,
            block,
            state: VersionState::Committed,
            owned_blocks: HashSet::new(),
            dirty_blocks: HashSet::new(),
        };
        self.register_version(version_id, meta);
        Ok(cap)
    }

    /// Looks up basic information about a version from its capability.
    pub fn version_state(&self, version_cap: &Capability) -> Result<VersionState> {
        let meta = self.resolve_version(version_cap, Rights::NONE)?;
        let state = meta.lock().state;
        Ok(state)
    }

    /// Returns the id of the file a version belongs to.  The commit path's
    /// lease settling uses this: leases are granted per *file* (that is what
    /// clients cache), while a commit arrives holding a *version*
    /// capability, so the conflicting leases are found under the file id.
    pub fn file_of_version(&self, version_cap: &Capability) -> Result<FileId> {
        let meta = self.resolve_version(version_cap, Rights::NONE)?;
        let file = meta.lock().file;
        Ok(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_file_yields_an_empty_current_version() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service.version_state(&current).unwrap(),
            VersionState::Committed
        );
    }

    #[test]
    fn files_have_distinct_capabilities() {
        let service = FileService::in_memory();
        let a = service.create_file().unwrap();
        let b = service.create_file().unwrap();
        assert_ne!(a.object, b.object);
    }

    #[test]
    fn forged_file_capability_is_rejected() {
        let service = FileService::in_memory();
        let mut cap = service.create_file().unwrap();
        cap.check ^= 1;
        assert_eq!(
            service.current_version(&cap).unwrap_err(),
            FsError::PermissionDenied
        );
    }

    #[test]
    fn sub_files_are_registered_with_their_parent() {
        let service = FileService::in_memory();
        let parent = service.create_file().unwrap();
        let child = service.create_sub_file(&parent).unwrap();
        let parent_meta = service.resolve_file(&parent, Rights::READ).unwrap();
        let children = parent_meta.lock().children.clone();
        assert_eq!(children, vec![child.object]);
        // The parent's current version page references the child's version page.
        let parent_block = service.current_version_block(&parent).unwrap();
        let parent_page = service.pages.read_page(parent_block).unwrap();
        assert_eq!(parent_page.nrefs(), 1);
    }

    #[test]
    fn unknown_capability_object_is_no_such_file() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        // Mint a capability for an object id that does not exist.
        let bogus = service.minter.lock().mint(9999, Rights::ALL);
        assert_eq!(
            service.current_version(&bogus).unwrap_err(),
            FsError::NoSuchFile
        );
        let _ = file;
    }
}
