//! The optimistic concurrency control mechanism: validation and commit (§5.2).
//!
//! The Amoeba File Service reduces Kung & Robinson's validation conditions to two,
//! because the critical section of the validation phase and the whole write phase are
//! performed as one atomic action (a test-and-set of the base version's *commit
//! reference*):
//!
//! 1. version `V.a` commits before version `V.b` is created — trivially true when
//!    `V.b` is based on the current version, so such commits always succeed; or
//! 2. the write set of `V.a` does not intersect the read set of `V.b`, and `V.a`
//!    commits before `V.b`.
//!
//! When the base version is no longer current, the service fetches the version that
//! superseded it and runs `serialise`: a single parallel descent of both page trees
//! that simultaneously *checks* condition (2) using the C/R/W/S/M flags and *merges*
//! the two updates by "replacing unaccessed parts in V.b's page tree by corresponding
//! written parts in V.c's page tree".  Untouched (uncopied) subtrees on either side
//! are never descended, which is what makes the test fast when at least one of the
//! concurrent updates is small.

use std::sync::atomic::Ordering;

use amoeba_block::BlockNr;
use amoeba_capability::{Capability, Port, Rights};

use crate::flags::PageFlags;
use crate::page::{Page, PageRef};
use crate::path::PagePath;
use crate::service::{FileService, VersionMeta, VersionState};
use crate::types::{FsError, Result};

/// What a successful commit reports back to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReceipt {
    /// True if the version committed on the fast path: its base was still the current
    /// version, so no validation was necessary.
    pub fast_path: bool,
    /// Number of serialisability tests that were run against concurrently committed
    /// versions before this commit succeeded.
    pub validations: u32,
    /// Total number of pages visited by those tests.
    pub pages_compared: usize,
}

/// Outcome of one serialisability test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerialiseReport {
    /// True if the two updates are serialisable.
    pub serialisable: bool,
    /// Number of pages visited during the parallel descent.
    pub pages_compared: usize,
}

impl FileService {
    /// Commits an uncommitted version, making it the current version of its file.
    ///
    /// On a serialisability conflict the version is removed (its private pages are
    /// freed) and [`FsError::SerialisabilityConflict`] is returned; the client must
    /// redo the update on a fresh version, as the paper prescribes.
    pub fn commit(&self, version_cap: &Capability) -> Result<CommitReceipt> {
        let meta_arc = self.resolve_version(version_cap, Rights::COMMIT)?;
        let mut meta = meta_arc.lock();
        if meta.state != VersionState::Uncommitted {
            return Err(FsError::AlreadyCommitted);
        }
        let my_block = meta.block;

        // "First it ascertains that all of V.b's pages are safely on disk."  Page
        // writes land in the write-back buffer, so this is where durability is
        // established: flush every dirty page, children before parents, version
        // page last, so no durable page ever references an unwritten one.
        self.flush_version_to_disk(&mut meta)?;

        let my_page = self.pages.read_page(my_block)?;
        let mut base_block = my_page
            .base_reference
            .ok_or_else(|| FsError::CorruptPage("uncommitted version has no base".into()))?;

        let mut receipt = CommitReceipt {
            fast_path: true,
            validations: 0,
            pages_compared: 0,
        };

        loop {
            // The only critical section in version commit: test and set the commit
            // reference of the base version page.
            let successor = self.try_set_commit_reference(base_block, my_block)?;
            match successor {
                None => break, // We are the new current version.
                Some(successor_block) => {
                    receipt.fast_path = false;
                    receipt.validations += 1;
                    let report = self.serialise_and_merge(&mut meta, my_block, successor_block)?;
                    receipt.pages_compared += report.pages_compared;
                    self.commit_stats
                        .pages_compared
                        .fetch_add(report.pages_compared as u64, Ordering::Relaxed);
                    if !report.serialisable {
                        drop(meta);
                        self.remove_conflicting_version(&meta_arc, version_cap)?;
                        self.commit_stats.conflicts.fetch_add(1, Ordering::Relaxed);
                        return Err(FsError::SerialisabilityConflict);
                    }
                    // The updates are serialisable; V.b now succeeds the version that
                    // superseded its original base.  Try again against it.
                    base_block = successor_block;
                }
            }
        }

        // Commit succeeded: update bookkeeping.
        meta.state = VersionState::Committed;
        let file_id = meta.file;
        // Release the version lock before touching the file table so the garbage
        // collector (file lock, then version locks) can never deadlock with us.
        drop(meta);
        // The new current version must not carry stale lock fields.  Versions are
        // created with both fields NULL, so rewriting the page is only needed in
        // the rare case something actually set one; the read-only probe costs
        // neither a physical write nor a page copy on the common fast path.
        self.pages.update_page(my_block, |page| {
            let header = page
                .version
                .as_ref()
                .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
            if header.top_lock.is_null() && header.inner_lock.is_null() {
                return Ok((false, ()));
            }
            let header = page.version.as_mut().expect("checked above");
            header.top_lock = Port::NULL;
            header.inner_lock = Port::NULL;
            Ok((true, ()))
        })?;
        let file = self.file_by_id(file_id)?;
        file.lock().current_hint = my_block;

        if receipt.fast_path {
            self.commit_stats.fast_path.fetch_add(1, Ordering::Relaxed);
        } else {
            self.commit_stats.validated.fetch_add(1, Ordering::Relaxed);
        }
        Ok(receipt)
    }

    /// Makes every buffered page reachable from the version page durable, in an
    /// order that keeps the on-disk state self-consistent at all times: children
    /// before parents, the version page last.  The walk follows *buffered* blocks,
    /// not just the version's own dirty set, so committing a super-file version
    /// also flushes the sub-file version pages its tree references — a durable
    /// committed page must never point at an unwritten block.  Buffered blocks of
    /// this version that are no longer reachable (their references were removed
    /// again before commit) are freed without ever being written.  Returns the
    /// number of pages flushed.
    ///
    /// With [`crate::ServiceConfig::batch_flush`] (the default) the physical
    /// shape is **one scatter-gather batch of all data pages, then the version
    /// page by itself**: two block-write calls per commit instead of one per
    /// dirty page, and over replicated storage two RPCs per replica.  The
    /// children-first order is preserved *inside* the batch and stores apply
    /// batch entries in order, so the crash invariant is unchanged; keeping the
    /// version page out of the batch keeps it strictly last — it becomes
    /// durable only after every data page it references.
    ///
    /// Under quorum commits (`amoeba_block::CommitRule::Quorum`, the replica
    /// set's default) each call is acknowledged once a majority of the current
    /// membership epoch applied it, so the strictly-last guarantee holds **per
    /// acknowledged quorum** rather than per replica: the version-page call is
    /// issued only after the data batch was quorum-acked, each replica
    /// receives both through one FIFO stream (never the version page before
    /// the data), and a replica that missed either is barred from reads until
    /// an epoch-stamped resync replays its ordered intentions.  Any replica
    /// eligible to serve a read therefore saw the version page only after
    /// every page it references — the same invariant, quorum-wide.
    pub(crate) fn flush_version_to_disk(&self, meta: &mut VersionMeta) -> Result<usize> {
        if meta.dirty_blocks.is_empty() {
            return Ok(0);
        }
        // The dirty set is only cleared once the flush succeeded: a transient
        // block-store failure leaves it intact, so a retried commit flushes the
        // remaining pages instead of "committing" a version whose pages were
        // never made durable.  (Already-flushed blocks are no longer in the
        // buffer; re-flushing them is a no-op, and a batch retried after a
        // partial failure re-puts its prefix idempotently.)
        let mut order = Vec::with_capacity(meta.dirty_blocks.len());
        let mut visited = std::collections::HashSet::new();
        self.collect_flush_order(meta.block, &mut visited, &mut order)?;
        let flushed = if self.config.batch_flush {
            match order.split_last() {
                // The walk pushes its root — the version page — last.
                Some((&version_page, data_pages)) => {
                    let mut flushed = self
                        .pages
                        .flush_blocks_batched(data_pages.iter().copied())?;
                    flushed += self.pages.flush_blocks_batched([version_page])?;
                    flushed
                }
                None => 0,
            }
        } else {
            self.pages.flush_blocks(order)?
        };
        let dirty = std::mem::take(&mut meta.dirty_blocks);
        for nr in dirty {
            // Still buffered and not reached by the walk: never written, no
            // longer referenced — pure garbage.  (A block that is merely absent
            // from the buffer was flushed through another version's commit and
            // must be left alone.)
            if !visited.contains(&nr) && self.pages.is_buffered(nr) {
                self.pages.drop_buffered(nr);
                if meta.owned_blocks.remove(&nr) {
                    let _ = self.pages.free_page(nr);
                }
            }
        }
        Ok(flushed)
    }

    /// Post-order walk over the buffered (copied) subgraph under `block`: children
    /// are appended before their parents, the root last.
    fn collect_flush_order(
        &self,
        block: BlockNr,
        visited: &mut std::collections::HashSet<BlockNr>,
        order: &mut Vec<BlockNr>,
    ) -> Result<()> {
        if !self.pages.is_buffered(block) || !visited.insert(block) {
            return Ok(());
        }
        let page = self.pages.read_page(block)?;
        for reference in &page.refs {
            if reference.flags.copied {
                self.collect_flush_order(reference.block, visited, order)?;
            }
        }
        order.push(block);
        Ok(())
    }

    /// The critical section: atomically test the commit reference of the version page
    /// at `base_block` and set it to `new_block` if it is nil.  Returns `None` on
    /// success, or the existing successor's block number if the base has already been
    /// superseded.
    pub(crate) fn try_set_commit_reference(
        &self,
        base_block: BlockNr,
        new_block: BlockNr,
    ) -> Result<Option<BlockNr>> {
        self.pages.update_page(base_block, |page| {
            let header = page
                .version
                .as_ref()
                .ok_or_else(|| FsError::CorruptPage("expected version page".into()))?;
            match header.commit_reference {
                None => {
                    // Only the successful set pays for a private page copy;
                    // the failed test returns without cloning anything.
                    page.version
                        .as_mut()
                        .expect("checked above")
                        .commit_reference = Some(new_block);
                    Ok((true, None))
                }
                Some(existing) => Ok((false, Some(existing))),
            }
        })
    }

    /// Removes a version whose commit failed validation: "V.b is removed, and its
    /// owner notified.  The update can be retried on another version."
    fn remove_conflicting_version(
        &self,
        meta_arc: &std::sync::Arc<parking_lot::Mutex<VersionMeta>>,
        version_cap: &Capability,
    ) -> Result<()> {
        let (owned, block) = {
            let mut meta = meta_arc.lock();
            meta.state = VersionState::Aborted;
            meta.dirty_blocks.clear();
            (std::mem::take(&mut meta.owned_blocks), meta.block)
        };
        for nr in owned {
            let _ = self.pages.free_page(nr);
        }
        let _ = self.pages.free_page(block);
        self.forget_version(version_cap.object, block);
        Ok(())
    }

    // ------------------------------------------------------------------
    // The serialisability test (and the merge done in the same pass).
    // ------------------------------------------------------------------

    /// Tests whether the update recorded in the uncommitted version at `b_block` is
    /// serialisable after the committed version at `c_block`, and, if it is, merges
    /// C's written parts into B's tree and rebases B onto C.
    pub(crate) fn serialise_and_merge(
        &self,
        meta_b: &mut VersionMeta,
        b_block: BlockNr,
        c_block: BlockNr,
    ) -> Result<SerialiseReport> {
        // B is rebased (and therefore rewritten) whenever the test passes, so a
        // private working copy of its version page is taken up front.
        let mut b_page = (*self.pages.read_page(b_block)?).clone();
        let c_page = self.pages.read_page(c_block)?;
        let b_header = b_page
            .version
            .clone()
            .ok_or_else(|| FsError::CorruptPage("B is not a version page".into()))?;
        let c_header = c_page
            .version
            .clone()
            .ok_or_else(|| FsError::CorruptPage("C is not a version page".into()))?;

        let mut pages_compared = 0usize;

        // Root-level conflict test on the version pages' own data and references.
        let bf = b_header.root_flags;
        let cf = c_header.root_flags;
        if (cf.written && bf.read) || (cf.modified && bf.searched) {
            return Ok(SerialiseReport {
                serialisable: false,
                pages_compared,
            });
        }

        if cf.modified && !bf.searched {
            // C restructured the root's references and B never looked at them: adopt
            // C's reference table wholesale (B cannot have private children here).
            b_page.refs = c_page
                .refs
                .iter()
                .map(|r| PageRef {
                    block: r.block,
                    flags: PageFlags::CLEAR,
                })
                .collect();
        } else if bf.modified {
            // B restructured the root's references.  C did not (or the conflict test
            // above would have fired), but if C touched anything below this page the
            // positional correspondence needed for merging is gone; be conservative.
            if c_page.refs.iter().any(|r| r.flags.copied) {
                return Ok(SerialiseReport {
                    serialisable: false,
                    pages_compared,
                });
            }
        } else {
            // Neither side restructured: merge the children positionally.
            let max_refs = b_page.refs.len().max(c_page.refs.len());
            for index in 0..max_refs {
                let rb = b_page.refs.get(index).copied();
                let rc = c_page.refs.get(index).copied();
                // Reference present on only one side without either side having
                // the `modified` flag should not happen for well-formed trees; if
                // it does, keep B's view (B is serialised later).
                if let (Some(rb), Some(rc)) = (rb, rc) {
                    match self.merge_child(meta_b, rb, rc, &mut pages_compared)? {
                        MergeOutcome::Conflict => {
                            return Ok(SerialiseReport {
                                serialisable: false,
                                pages_compared,
                            });
                        }
                        MergeOutcome::Keep => {}
                        MergeOutcome::Replace(new_ref) => {
                            b_page.refs[index] = new_ref;
                        }
                    }
                }
            }
        }

        // Merge the root data: keep B's if B wrote it, otherwise adopt C's if C wrote.
        if !bf.written && cf.written {
            b_page.data = c_page.data.clone();
        }

        // Rebase B onto C so the next commit attempt goes for C's commit reference;
        // the rebase always dirties B's version page, so it is always written back.
        // B's pages were flushed before the first commit attempt, so merge writes
        // are write-through: the next test-and-set needs them durable.
        b_page.base_reference = Some(c_block);
        self.pages
            .write_page(b_block, &std::sync::Arc::new(b_page))?;

        Ok(SerialiseReport {
            serialisable: true,
            pages_compared,
        })
    }

    /// Merges one corresponding pair of child references.  `rb` is B's reference,
    /// `rc` is C's reference to the same position under their common ancestor.
    fn merge_child(
        &self,
        meta_b: &mut VersionMeta,
        rb: PageRef,
        rc: PageRef,
        pages_compared: &mut usize,
    ) -> Result<MergeOutcome> {
        // "Uncopied parts of the tree in either V.b or V.c need not be visited since
        // they can neither have been read nor written."
        if !rc.flags.copied {
            return Ok(MergeOutcome::Keep);
        }
        if !rb.flags.copied {
            // B never touched this subtree: the new current version adopts C's
            // (already committed) subtree, shared.
            return Ok(MergeOutcome::Replace(PageRef {
                block: rc.block,
                flags: PageFlags::CLEAR,
            }));
        }

        // Both sides copied the page: check the validation condition at this page.
        if (rc.flags.written && rb.flags.read) || (rc.flags.modified && rb.flags.searched) {
            return Ok(MergeOutcome::Conflict);
        }

        let mut b_child = (*self.pages.read_page(rb.block)?).clone();
        let c_child = self.pages.read_page(rc.block)?;
        *pages_compared += 2;

        let mut changed = false;

        if rc.flags.modified && !rb.flags.searched {
            // C restructured this page's references; B never looked at them.
            b_child.refs = c_child
                .refs
                .iter()
                .map(|r| PageRef {
                    block: r.block,
                    flags: PageFlags::CLEAR,
                })
                .collect();
            changed = true;
        } else if rb.flags.modified {
            // B restructured; conservative conflict if C touched anything below.
            if c_child.refs.iter().any(|r| r.flags.copied) {
                return Ok(MergeOutcome::Conflict);
            }
        } else {
            let max_refs = b_child.refs.len().max(c_child.refs.len());
            for index in 0..max_refs {
                let rb_child = b_child.refs.get(index).copied();
                let rc_child = c_child.refs.get(index).copied();
                if let (Some(rbc), Some(rcc)) = (rb_child, rc_child) {
                    match self.merge_child(meta_b, rbc, rcc, pages_compared)? {
                        MergeOutcome::Conflict => return Ok(MergeOutcome::Conflict),
                        MergeOutcome::Keep => {}
                        MergeOutcome::Replace(new_ref) => {
                            b_child.refs[index] = new_ref;
                            changed = true;
                        }
                    }
                }
            }
        }

        // Data of this page: B's write wins; otherwise adopt C's write.
        if !rb.flags.written && rc.flags.written {
            b_child.data = c_child.data.clone();
            changed = true;
        }

        if changed {
            // B's child is a private copy, so it can be rewritten in place.
            self.pages
                .write_page(rb.block, &std::sync::Arc::new(b_child))?;
        }
        let _ = meta_b;
        Ok(MergeOutcome::Keep)
    }

    // ------------------------------------------------------------------
    // Read-only serialisability test (used by the cache, §5.4).
    // ------------------------------------------------------------------

    /// Runs the serialisability test between the (committed) version at `old_block`
    /// and the (committed) version at `new_block` *without* merging: returns whether a
    /// hypothetical update that read everything the old version contains would still
    /// be valid, plus the set of page paths written or restructured between the two.
    ///
    /// This is the primitive behind cache validation: the paths returned are exactly
    /// the cache entries that must be discarded.
    pub fn changed_paths_between(
        &self,
        old_block: BlockNr,
        new_block: BlockNr,
    ) -> Result<Vec<PagePath>> {
        // Walk the commit chain from `old_block` to `new_block`, accumulating the
        // write set of every version committed in between.
        let mut changed = Vec::new();
        let mut block = old_block;
        let mut hops = 0usize;
        while block != new_block {
            let (page, header) = self.read_version_page_at(block)?;
            let next = match header.commit_reference {
                Some(next) => next,
                None => break,
            };
            let (next_page, next_header) = self.read_version_page_at(next)?;
            // The write set of `next` relative to its base.
            collect_write_set(
                self,
                &next_page,
                &next_header.root_flags,
                &PagePath::root(),
                &mut changed,
            )?;
            let _ = page;
            block = next;
            hops += 1;
            if hops > 1_000_000 {
                return Err(FsError::CorruptPage(
                    "commit chain does not terminate".into(),
                ));
            }
        }
        changed.sort();
        changed.dedup();
        Ok(changed)
    }

    /// Collects the write-set paths of a single committed version (pages whose data
    /// was written or whose references were modified), pruning untouched subtrees.
    pub fn write_set_of(&self, version_block: BlockNr) -> Result<Vec<PagePath>> {
        let (page, header) = self.read_version_page_at(version_block)?;
        let mut paths = Vec::new();
        collect_write_set(
            self,
            &page,
            &header.root_flags,
            &PagePath::root(),
            &mut paths,
        )?;
        paths.sort();
        paths.dedup();
        Ok(paths)
    }
}

/// Result of merging one pair of corresponding child references.
enum MergeOutcome {
    /// The updates touch this subtree in an irreconcilable way.
    Conflict,
    /// B's entry already describes the merged state.
    Keep,
    /// B's entry must be replaced by this reference.
    Replace(PageRef),
}

/// Recursive helper for [`FileService::write_set_of`].
fn collect_write_set(
    service: &FileService,
    page: &Page,
    own_flags: &PageFlags,
    path: &PagePath,
    out: &mut Vec<PagePath>,
) -> Result<()> {
    if own_flags.written || own_flags.modified {
        out.push(path.clone());
    }
    for (index, reference) in page.refs.iter().enumerate() {
        if !reference.flags.copied {
            continue; // Untouched subtree: nothing below it was written.
        }
        let child_path = path.child(index as u16);
        if reference.flags.written || reference.flags.modified {
            out.push(child_path.clone());
        }
        let child = service.pages.read_page(reference.block)?;
        collect_write_set(service, &child, &reference.flags, &child_path, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    /// Builds a file with `n` committed leaf pages under the root.
    fn build_file(service: &FileService, n: u16) -> (Capability, Vec<PagePath>) {
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        let mut paths = Vec::new();
        for i in 0..n {
            paths.push(
                service
                    .append_page(&v, &PagePath::root(), Bytes::from(vec![i as u8]))
                    .unwrap(),
            );
        }
        service.commit(&v).unwrap();
        (file, paths)
    }

    #[test]
    fn sequential_commits_take_the_fast_path() {
        let service = FileService::in_memory();
        let (file, paths) = build_file(&service, 4);
        for round in 0..3u8 {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &paths[0], Bytes::from(vec![round]))
                .unwrap();
            let receipt = service.commit(&v).unwrap();
            assert!(receipt.fast_path);
            assert_eq!(receipt.validations, 0);
        }
        let stats = service.commit_stats();
        assert!(stats.fast_path >= 3);
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    fn disjoint_concurrent_updates_both_commit() {
        let service = FileService::in_memory();
        let (file, paths) = build_file(&service, 4);
        // Two versions based on the same current version.
        let va = service.create_version(&file).unwrap();
        let vb = service.create_version(&file).unwrap();
        service
            .write_page(&va, &paths[0], Bytes::from_static(b"A"))
            .unwrap();
        service
            .write_page(&vb, &paths[3], Bytes::from_static(b"B"))
            .unwrap();
        let ra = service.commit(&va).unwrap();
        let rb = service.commit(&vb).unwrap();
        assert!(ra.fast_path);
        assert!(!rb.fast_path, "the second committer must validate");
        assert_eq!(rb.validations, 1);

        // The merged current version contains both updates.
        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service.read_committed_page(&current, &paths[0]).unwrap(),
            Bytes::from_static(b"A")
        );
        assert_eq!(
            service.read_committed_page(&current, &paths[3]).unwrap(),
            Bytes::from_static(b"B")
        );
    }

    #[test]
    fn read_write_overlap_is_a_conflict() {
        let service = FileService::in_memory();
        let (file, paths) = build_file(&service, 2);
        let va = service.create_version(&file).unwrap();
        let vb = service.create_version(&file).unwrap();
        // A writes page 0; B reads page 0 (and writes page 1).
        service
            .write_page(&va, &paths[0], Bytes::from_static(b"A"))
            .unwrap();
        service.read_page(&vb, &paths[0]).unwrap();
        service
            .write_page(&vb, &paths[1], Bytes::from_static(b"B"))
            .unwrap();
        service.commit(&va).unwrap();
        let err = service.commit(&vb).unwrap_err();
        assert_eq!(err, FsError::SerialisabilityConflict);
        assert_eq!(service.commit_stats().conflicts, 1);
        // The conflicting version was removed.
        assert_eq!(
            service.version_state(&vb).unwrap_err(),
            FsError::NoSuchVersion
        );
        // But the file's current version still reflects A's committed update.
        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service.read_committed_page(&current, &paths[0]).unwrap(),
            Bytes::from_static(b"A")
        );
    }

    #[test]
    fn blind_write_write_overlap_is_serialisable_and_last_committer_wins() {
        let service = FileService::in_memory();
        let (file, paths) = build_file(&service, 2);
        let va = service.create_version(&file).unwrap();
        let vb = service.create_version(&file).unwrap();
        service
            .write_page(&va, &paths[0], Bytes::from_static(b"first"))
            .unwrap();
        service
            .write_page(&vb, &paths[0], Bytes::from_static(b"second"))
            .unwrap();
        service.commit(&va).unwrap();
        service.commit(&vb).unwrap();
        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service.read_committed_page(&current, &paths[0]).unwrap(),
            Bytes::from_static(b"second")
        );
    }

    #[test]
    fn conflict_with_stale_read_of_root_data() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let va = service.create_version(&file).unwrap();
        let vb = service.create_version(&file).unwrap();
        service
            .write_page(&va, &PagePath::root(), Bytes::from_static(b"new root"))
            .unwrap();
        // B reads the root data (stale) and writes something based on it elsewhere.
        service.read_page(&vb, &PagePath::root()).unwrap();
        service.commit(&va).unwrap();
        assert_eq!(
            service.commit(&vb).unwrap_err(),
            FsError::SerialisabilityConflict
        );
    }

    #[test]
    fn three_way_race_chains_validations() {
        let service = FileService::in_memory();
        let (file, paths) = build_file(&service, 6);
        let v1 = service.create_version(&file).unwrap();
        let v2 = service.create_version(&file).unwrap();
        let v3 = service.create_version(&file).unwrap();
        service
            .write_page(&v1, &paths[0], Bytes::from_static(b"1"))
            .unwrap();
        service
            .write_page(&v2, &paths[1], Bytes::from_static(b"2"))
            .unwrap();
        service
            .write_page(&v3, &paths[2], Bytes::from_static(b"3"))
            .unwrap();
        service.commit(&v1).unwrap();
        service.commit(&v2).unwrap();
        let receipt = service.commit(&v3).unwrap();
        assert!(receipt.validations >= 1);
        let current = service.current_version(&file).unwrap();
        for (i, expect) in [b"1", b"2", b"3"].iter().enumerate() {
            assert_eq!(
                service.read_committed_page(&current, &paths[i]).unwrap(),
                Bytes::from_static(*expect)
            );
        }
    }

    #[test]
    fn deep_disjoint_updates_merge() {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let v0 = service.create_version(&file).unwrap();
        let left = service
            .append_page(&v0, &PagePath::root(), Bytes::from_static(b"left"))
            .unwrap();
        let right = service
            .append_page(&v0, &PagePath::root(), Bytes::from_static(b"right"))
            .unwrap();
        let ll = service
            .append_page(&v0, &left, Bytes::from_static(b"l/0"))
            .unwrap();
        let rr = service
            .append_page(&v0, &right, Bytes::from_static(b"r/0"))
            .unwrap();
        service.commit(&v0).unwrap();

        let va = service.create_version(&file).unwrap();
        let vb = service.create_version(&file).unwrap();
        service
            .write_page(&va, &ll, Bytes::from_static(b"A deep"))
            .unwrap();
        service
            .write_page(&vb, &rr, Bytes::from_static(b"B deep"))
            .unwrap();
        service.commit(&va).unwrap();
        service.commit(&vb).unwrap();

        let current = service.current_version(&file).unwrap();
        assert_eq!(
            service.read_committed_page(&current, &ll).unwrap(),
            Bytes::from_static(b"A deep")
        );
        assert_eq!(
            service.read_committed_page(&current, &rr).unwrap(),
            Bytes::from_static(b"B deep")
        );
    }

    #[test]
    fn structural_change_conflicts_with_search() {
        let service = FileService::in_memory();
        let (file, _paths) = build_file(&service, 3);
        let va = service.create_version(&file).unwrap();
        let vb = service.create_version(&file).unwrap();
        // A restructures the root's references (removes a page).
        service.remove_page(&va, &PagePath::new(vec![1])).unwrap();
        // B searches the root's references (asks for its shape).
        service.page_info(&vb, &PagePath::root()).unwrap();
        service
            .write_page(&vb, &PagePath::new(vec![0]), Bytes::from_static(b"x"))
            .unwrap();
        service.commit(&va).unwrap();
        assert_eq!(
            service.commit(&vb).unwrap_err(),
            FsError::SerialisabilityConflict
        );
    }

    #[test]
    fn commit_of_already_committed_version_fails() {
        let service = FileService::in_memory();
        let (file, _) = build_file(&service, 1);
        let v = service.create_version(&file).unwrap();
        service.commit(&v).unwrap();
        assert_eq!(service.commit(&v).unwrap_err(), FsError::AlreadyCommitted);
    }

    #[test]
    fn write_set_of_reports_written_paths() {
        let service = FileService::in_memory();
        let (file, paths) = build_file(&service, 4);
        let v = service.create_version(&file).unwrap();
        service
            .write_page(&v, &paths[2], Bytes::from_static(b"changed"))
            .unwrap();
        service.commit(&v).unwrap();
        let block = service.current_version_block(&file).unwrap();
        let write_set = service.write_set_of(block).unwrap();
        assert_eq!(write_set, vec![paths[2].clone()]);
    }

    #[test]
    fn changed_paths_between_accumulates_over_the_chain() {
        let service = FileService::in_memory();
        let (file, paths) = build_file(&service, 4);
        let old_block = service.current_version_block(&file).unwrap();
        for i in [0usize, 2] {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &paths[i], Bytes::from_static(b"upd"))
                .unwrap();
            service.commit(&v).unwrap();
        }
        let new_block = service.current_version_block(&file).unwrap();
        let changed = service.changed_paths_between(old_block, new_block).unwrap();
        assert_eq!(changed, vec![paths[0].clone(), paths[2].clone()]);
        // Nothing changed between a version and itself.
        assert!(service
            .changed_paths_between(new_block, new_block)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn serialisability_test_prunes_untouched_subtrees() {
        let service = FileService::in_memory();
        // A wide file: 64 leaves.
        let (file, paths) = build_file(&service, 64);
        let va = service.create_version(&file).unwrap();
        let vb = service.create_version(&file).unwrap();
        service
            .write_page(&va, &paths[0], Bytes::from_static(b"A"))
            .unwrap();
        service
            .write_page(&vb, &paths[63], Bytes::from_static(b"B"))
            .unwrap();
        service.commit(&va).unwrap();
        let receipt = service.commit(&vb).unwrap();
        // Only the two touched leaves are compared, not all 64.
        assert!(
            receipt.pages_compared <= 8,
            "compared {} pages, expected only the touched subtrees",
            receipt.pages_compared
        );
    }
}
