//! The [`FileStore`] trait: the client-visible file-service protocol.
//!
//! The paper's central observation about clients (§5) is that an update cycle is
//! the *same protocol* whether the service lives in the client's address space or
//! behind transaction RPC: create a version, read and write its pages, commit in
//! one shot, and redo the whole update when the commit reports a serialisability
//! conflict.  `FileStore` captures exactly that protocol so caches, retry loops,
//! workloads and the experiment harness can be written once and run unchanged
//! over a local [`FileService`] or a remote connection (`afs_client::RemoteFs`).
//!
//! Two method families deserve a note:
//!
//! * [`FileStore::commit`] returns the [`CommitReceipt`] so callers can observe
//!   fast-path/validation behaviour through the trait; remote implementations
//!   carry the receipt in the commit reply.
//! * [`FileStore::read_pages`] / [`FileStore::write_pages`] are *batched* page
//!   operations.  The default methods simply loop, which is the right thing for
//!   a local store; remote stores override them to ship one request per batch so
//!   a k-page update costs O(1) round trips instead of O(k) (the round-trip
//!   discipline distributed cost models reward).
//!
//! The retrying transaction API built on top of this trait lives in
//! [`crate::update`].

use bytes::Bytes;

use amoeba_block::BlockNr;
use amoeba_capability::Capability;

use crate::cache::CacheValidation;
use crate::commit::CommitReceipt;
use crate::path::PagePath;
use crate::service::FileService;
use crate::types::Result;

/// The full client-visible protocol of an Amoeba file service.
///
/// Object-safe: generic helpers (the retrying update API) live in the
/// [`crate::update::FileStoreExt`] extension trait, which is blanket-implemented
/// for every `FileStore`.
pub trait FileStore: Send + Sync {
    /// Creates a new file and returns its owner capability.  The file starts
    /// with one empty committed version.
    fn create_file(&self) -> Result<Capability>;

    /// Creates a new uncommitted version of `file`, based on its current
    /// version, and returns the version capability.
    fn create_version(&self, file: &Capability) -> Result<Capability>;

    /// Reads the client data of the page at `path` in an uncommitted version,
    /// recording the read in the version's read set.
    fn read_page(&self, version: &Capability, path: &PagePath) -> Result<Bytes>;

    /// Replaces the client data of the page at `path` in an uncommitted
    /// version (copy-on-write).
    fn write_page(&self, version: &Capability, path: &PagePath, data: Bytes) -> Result<()>;

    /// Appends a new page holding `data` at the end of the reference table of
    /// the page at `parent` and returns the new page's path.
    fn append_page(&self, version: &Capability, parent: &PagePath, data: Bytes)
        -> Result<PagePath>;

    /// Inserts a new page holding `data` at reference index `index` of the page
    /// at `parent`, shifting later references up, and returns the new path.
    fn insert_page(
        &self,
        version: &Capability,
        parent: &PagePath,
        index: u16,
        data: Bytes,
    ) -> Result<PagePath>;

    /// Removes the page at `path` (and the subtree below it) from its parent's
    /// reference table.
    fn remove_page(&self, version: &Capability, path: &PagePath) -> Result<()>;

    /// Commits an uncommitted version, making it the current version of its
    /// file.  On [`crate::FsError::SerialisabilityConflict`] the version has
    /// been removed by the service and the caller must redo the update on a
    /// fresh version.
    fn commit(&self, version: &Capability) -> Result<CommitReceipt>;

    /// Aborts an uncommitted version, freeing its private pages.
    fn abort(&self, version: &Capability) -> Result<()>;

    /// Returns a capability for the file's current (committed) version.
    fn current_version(&self, file: &Capability) -> Result<Capability>;

    /// Reads the client data of a page in a *committed* version.  No flags are
    /// recorded and nothing is shadowed.
    fn read_committed_page(&self, version: &Capability, path: &PagePath) -> Result<Bytes>;

    /// Validates a cache entry filled from the committed version page at
    /// `cached_block`: reports whether the cache is current and which page
    /// paths changed since (§5.4 — the client asks).  Remote stores may answer
    /// from a live server-granted lease without a round trip; a local store
    /// always runs the serialisability test.
    fn validate_cache(&self, file: &Capability, cached_block: BlockNr) -> Result<CacheValidation>;

    /// Reads several pages of an uncommitted version, in `paths` order.
    ///
    /// The default implementation loops over [`FileStore::read_page`]; remote
    /// stores override it with one batched request so the call costs O(1)
    /// round trips.
    fn read_pages(&self, version: &Capability, paths: &[PagePath]) -> Result<Vec<Bytes>> {
        paths
            .iter()
            .map(|path| self.read_page(version, path))
            .collect()
    }

    /// Writes several pages of an uncommitted version.
    ///
    /// The default implementation loops over [`FileStore::write_page`]; remote
    /// stores override it with one batched request per transport-frame's worth
    /// of data.
    fn write_pages(&self, version: &Capability, writes: &[(PagePath, Bytes)]) -> Result<()> {
        for (path, data) in writes {
            self.write_page(version, path, data.clone())?;
        }
        Ok(())
    }

    /// Physical page I/O statistics of the backing service, if the store can see
    /// them.  A local service reports its counters (including
    /// [`crate::PageIoStats::pages_flushed_at_commit`], the write-back vs
    /// write-through delta); remote stores return `None`.
    ///
    /// A sharded store reports the *sum* over its shards here, never a single
    /// shard's counters; per-shard figures are available from
    /// [`FileStore::shard_io_stats`].
    fn io_stats(&self) -> Option<crate::PageIoStats> {
        None
    }

    /// Per-shard physical page I/O statistics, in shard order.  An unsharded
    /// store is one shard: the default returns its [`FileStore::io_stats`] as a
    /// one-element vector (or `None` when the store cannot see its counters, as
    /// over RPC).
    fn shard_io_stats(&self) -> Option<Vec<crate::PageIoStats>> {
        self.io_stats().map(|stats| vec![stats])
    }
}

impl FileStore for FileService {
    fn create_file(&self) -> Result<Capability> {
        FileService::create_file(self)
    }

    fn create_version(&self, file: &Capability) -> Result<Capability> {
        FileService::create_version(self, file)
    }

    fn read_page(&self, version: &Capability, path: &PagePath) -> Result<Bytes> {
        FileService::read_page(self, version, path)
    }

    fn write_page(&self, version: &Capability, path: &PagePath, data: Bytes) -> Result<()> {
        FileService::write_page(self, version, path, data)
    }

    fn append_page(
        &self,
        version: &Capability,
        parent: &PagePath,
        data: Bytes,
    ) -> Result<PagePath> {
        FileService::append_page(self, version, parent, data)
    }

    fn insert_page(
        &self,
        version: &Capability,
        parent: &PagePath,
        index: u16,
        data: Bytes,
    ) -> Result<PagePath> {
        FileService::insert_page(self, version, parent, index, data)
    }

    fn remove_page(&self, version: &Capability, path: &PagePath) -> Result<()> {
        FileService::remove_page(self, version, path)
    }

    fn commit(&self, version: &Capability) -> Result<CommitReceipt> {
        FileService::commit(self, version)
    }

    fn abort(&self, version: &Capability) -> Result<()> {
        FileService::abort_version(self, version)
    }

    fn current_version(&self, file: &Capability) -> Result<Capability> {
        FileService::current_version(self, file)
    }

    fn read_committed_page(&self, version: &Capability, path: &PagePath) -> Result<Bytes> {
        FileService::read_committed_page(self, version, path)
    }

    fn validate_cache(&self, file: &Capability, cached_block: BlockNr) -> Result<CacheValidation> {
        FileService::validate_cache(self, file, cached_block)
    }

    fn io_stats(&self) -> Option<crate::PageIoStats> {
        Some(FileService::io_stats(self))
    }
}

macro_rules! forward_file_store {
    ($wrapper:ty) => {
        impl<S: FileStore + ?Sized> FileStore for $wrapper {
            fn create_file(&self) -> Result<Capability> {
                (**self).create_file()
            }
            fn create_version(&self, file: &Capability) -> Result<Capability> {
                (**self).create_version(file)
            }
            fn read_page(&self, version: &Capability, path: &PagePath) -> Result<Bytes> {
                (**self).read_page(version, path)
            }
            fn write_page(&self, version: &Capability, path: &PagePath, data: Bytes) -> Result<()> {
                (**self).write_page(version, path, data)
            }
            fn append_page(
                &self,
                version: &Capability,
                parent: &PagePath,
                data: Bytes,
            ) -> Result<PagePath> {
                (**self).append_page(version, parent, data)
            }
            fn insert_page(
                &self,
                version: &Capability,
                parent: &PagePath,
                index: u16,
                data: Bytes,
            ) -> Result<PagePath> {
                (**self).insert_page(version, parent, index, data)
            }
            fn remove_page(&self, version: &Capability, path: &PagePath) -> Result<()> {
                (**self).remove_page(version, path)
            }
            fn commit(&self, version: &Capability) -> Result<CommitReceipt> {
                (**self).commit(version)
            }
            fn abort(&self, version: &Capability) -> Result<()> {
                (**self).abort(version)
            }
            fn current_version(&self, file: &Capability) -> Result<Capability> {
                (**self).current_version(file)
            }
            fn read_committed_page(&self, version: &Capability, path: &PagePath) -> Result<Bytes> {
                (**self).read_committed_page(version, path)
            }
            fn validate_cache(
                &self,
                file: &Capability,
                cached_block: BlockNr,
            ) -> Result<CacheValidation> {
                (**self).validate_cache(file, cached_block)
            }
            fn read_pages(&self, version: &Capability, paths: &[PagePath]) -> Result<Vec<Bytes>> {
                (**self).read_pages(version, paths)
            }
            fn write_pages(
                &self,
                version: &Capability,
                writes: &[(PagePath, Bytes)],
            ) -> Result<()> {
                (**self).write_pages(version, writes)
            }
            fn io_stats(&self) -> Option<crate::PageIoStats> {
                (**self).io_stats()
            }
            fn shard_io_stats(&self) -> Option<Vec<crate::PageIoStats>> {
                (**self).shard_io_stats()
            }
        }
    };
}

forward_file_store!(&S);
forward_file_store!(std::sync::Arc<S>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FsError;

    fn exercise(store: &dyn FileStore) {
        let file = store.create_file().unwrap();
        let version = store.create_version(&file).unwrap();
        let page = store
            .append_page(
                &version,
                &PagePath::root(),
                Bytes::from_static(b"via trait"),
            )
            .unwrap();
        let receipt = store.commit(&version).unwrap();
        assert!(receipt.fast_path);
        let current = store.current_version(&file).unwrap();
        assert_eq!(
            store.read_committed_page(&current, &page).unwrap(),
            Bytes::from_static(b"via trait")
        );
    }

    #[test]
    fn file_service_implements_the_trait_object_safely() {
        let service = FileService::in_memory();
        exercise(&*service);
        // The Arc blanket impl forwards too.
        exercise(&service);
    }

    #[test]
    fn default_batched_methods_loop_over_the_singles() {
        let service = FileService::in_memory();
        let store: &dyn FileStore = &*service;
        let file = store.create_file().unwrap();
        let setup = store.create_version(&file).unwrap();
        let paths: Vec<PagePath> = (0..4u8)
            .map(|i| {
                store
                    .append_page(&setup, &PagePath::root(), Bytes::from(vec![i]))
                    .unwrap()
            })
            .collect();
        store.commit(&setup).unwrap();

        let version = store.create_version(&file).unwrap();
        let writes: Vec<(PagePath, Bytes)> = paths
            .iter()
            .map(|p| (p.clone(), Bytes::from_static(b"batched")))
            .collect();
        store.write_pages(&version, &writes).unwrap();
        let read_back = store.read_pages(&version, &paths).unwrap();
        assert!(read_back
            .iter()
            .all(|d| d == &Bytes::from_static(b"batched")));
        store.commit(&version).unwrap();
    }

    #[test]
    fn trait_abort_frees_the_version() {
        let service = FileService::in_memory();
        let store: &dyn FileStore = &*service;
        let file = store.create_file().unwrap();
        let version = store.create_version(&file).unwrap();
        store
            .write_page(&version, &PagePath::root(), Bytes::from_static(b"doomed"))
            .unwrap();
        store.abort(&version).unwrap();
        // The aborted version is forgotten entirely.
        assert_eq!(
            store
                .write_page(&version, &PagePath::root(), Bytes::from_static(b"no"))
                .unwrap_err(),
            FsError::NoSuchVersion
        );
    }
}
