//! Page I/O: reading and writing pages through the block service.
//!
//! All pages of all versions live in blocks of a [`BlockServer`] owned by the file
//! service's account.  `PageIo` adds three layers on top of raw block I/O:
//!
//! * **A write-back buffer (overlay).**  The paper's commit protocol only requires
//!   that a version's pages be safely on disk *at commit time* ("First it ascertains
//!   that all of V.b's pages are safely on disk").  Page writes for uncommitted
//!   versions therefore land in an in-memory overlay ([`PageIo::write_page_buffered`]
//!   / [`PageIo::allocate_page_buffered`]) and are made durable by
//!   [`crate::commit`] immediately before the commit-reference test-and-set:
//!   one scatter-gather [`PageIo::flush_blocks_batched`] call carrying every
//!   dirty data page (children-first order preserved inside the batch), then
//!   the version page by itself, strictly last.  ([`PageIo::flush_blocks`] is
//!   the per-page fallback, kept for the before/after measurement.)  Aborts
//!   simply drop the buffer; crash recovery treats an unflushed uncommitted
//!   version as aborted, which is exactly the paper's "uncommitted versions
//!   need not be salvaged" rule.  The overlay is *authoritative* for the blocks
//!   it holds: every read path consults it first, because a buffered block's
//!   on-disk contents do not exist yet.
//!
//! * **A sharded clean-page cache of `Arc<Page>`.**  The optional flag cache of
//!   §5.4 ("The Amoeba File Servers can also conveniently cache the concurrency
//!   control administration, the flag bits") is a sharded LRU keyed by block
//!   number.  Hits hand back an `Arc` clone — no deep copy of the data or the
//!   reference table — and independent shards keep concurrent commit/validation
//!   scans from serialising on a single lock.
//!
//! * **I/O counters**, so the benchmarks report physical disk traffic rather than
//!   wall-clock time alone.  `page_writes` counts *physical* writes only: a k-write
//!   update to one page costs 0 physical writes until commit, then O(dirty pages)
//!   at flush time (visible separately as `pages_flushed_at_commit`).
//!   `block_write_calls` counts write *calls*: the batched flush makes it O(1)
//!   per commit while `page_writes` stays O(dirty pages) — the counter pair is
//!   what proves the k-pages-in-1-call claim instead of inferring it.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use amoeba_block::{BlockNr, BlockServer};
use amoeba_capability::Capability;

use crate::page::Page;
use crate::types::Result;

/// I/O statistics of the file service.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PageIoStats {
    /// Pages read from the block service (physical reads).
    pub page_reads: u64,
    /// Pages written to the block service (physical writes, including flushes).
    pub page_writes: u64,
    /// Pages newly allocated (copy-on-write copies, fresh pages, version pages).
    pub pages_allocated: u64,
    /// Pages freed (aborted versions, garbage collection).
    pub pages_freed: u64,
    /// Reads satisfied from the clean-page cache or the write-back buffer without
    /// touching the block service.
    pub cache_hits: u64,
    /// Physical page writes performed by commit-time flushes of the write-back
    /// buffer.  The write-through cost of the same workload is the number of
    /// buffered (logical) writes; the difference is the I/O the write-back design
    /// elides.
    pub pages_flushed_at_commit: u64,
    /// Physical block-write *calls* issued to the block service, as opposed to
    /// pages written: a batched k-page commit flush counts one call, a
    /// write-through page write counts one call per page.
    /// `page_writes / block_write_calls` is the realised batching factor — the
    /// observable form of the k-pages-in-1-call claim.
    pub block_write_calls: u64,
}

impl PageIoStats {
    /// Field-wise difference `self - earlier`.
    pub fn since(&self, earlier: &PageIoStats) -> PageIoStats {
        PageIoStats {
            page_reads: self.page_reads - earlier.page_reads,
            page_writes: self.page_writes - earlier.page_writes,
            pages_allocated: self.pages_allocated - earlier.pages_allocated,
            pages_freed: self.pages_freed - earlier.pages_freed,
            cache_hits: self.cache_hits - earlier.cache_hits,
            pages_flushed_at_commit: self.pages_flushed_at_commit - earlier.pages_flushed_at_commit,
            block_write_calls: self.block_write_calls - earlier.block_write_calls,
        }
    }

    /// Field-wise sum `self + other`: the aggregate I/O of several independent
    /// services (the shards of a sharded store report one combined figure).
    pub fn merged(&self, other: &PageIoStats) -> PageIoStats {
        PageIoStats {
            page_reads: self.page_reads + other.page_reads,
            page_writes: self.page_writes + other.page_writes,
            pages_allocated: self.pages_allocated + other.pages_allocated,
            pages_freed: self.pages_freed + other.pages_freed,
            cache_hits: self.cache_hits + other.cache_hits,
            pages_flushed_at_commit: self.pages_flushed_at_commit + other.pages_flushed_at_commit,
            block_write_calls: self.block_write_calls + other.block_write_calls,
        }
    }
}

/// Number of independent shards in the clean-page cache.
const CACHE_SHARDS: usize = 16;

/// A sharded LRU cache of decoded pages.  Each shard is guarded by its own lock so
/// hot read paths (commit validation, cache revalidation, GC marking) running on
/// different blocks do not contend.
struct PageCache {
    shards: Vec<Mutex<CacheShard>>,
}

struct CacheShard {
    capacity: usize,
    /// Block → (page, last-use stamp).
    map: HashMap<BlockNr, (Arc<Page>, u64)>,
    /// Lazily maintained LRU queue of (block, stamp) pairs.  Entries whose stamp no
    /// longer matches the map are stale and skipped during eviction; the queue is
    /// compacted when it grows well beyond the shard capacity, keeping both hit and
    /// eviction cost amortised O(1).
    queue: VecDeque<(BlockNr, u64)>,
    tick: u64,
}

impl CacheShard {
    fn touch(&mut self, nr: BlockNr) -> Option<Arc<Page>> {
        self.tick += 1;
        let tick = self.tick;
        let (page, stamp) = self.map.get_mut(&nr)?;
        *stamp = tick;
        let page = Arc::clone(page);
        self.queue.push_back((nr, tick));
        self.maybe_compact();
        Some(page)
    }

    fn insert(&mut self, nr: BlockNr, page: Arc<Page>) {
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(nr, (page, tick));
        self.queue.push_back((nr, tick));
        while self.map.len() > self.capacity {
            match self.queue.pop_front() {
                Some((victim, stamp)) => {
                    if self.map.get(&victim).is_some_and(|(_, s)| *s == stamp) {
                        self.map.remove(&victim);
                    }
                }
                None => break,
            }
        }
        self.maybe_compact();
    }

    fn remove(&mut self, nr: BlockNr) {
        self.map.remove(&nr);
    }

    fn maybe_compact(&mut self) {
        if self.queue.len() > (4 * self.capacity).max(64) {
            let map = &self.map;
            self.queue
                .retain(|(nr, stamp)| map.get(nr).is_some_and(|(_, s)| s == stamp));
        }
    }
}

impl PageCache {
    fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(CACHE_SHARDS).max(1);
        PageCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| {
                    Mutex::new(CacheShard {
                        capacity: per_shard,
                        map: HashMap::new(),
                        queue: VecDeque::new(),
                        tick: 0,
                    })
                })
                .collect(),
        }
    }

    fn shard(&self, nr: BlockNr) -> &Mutex<CacheShard> {
        // Fibonacci-hash the block number so consecutive blocks spread over shards.
        let h = (u64::from(nr)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % CACHE_SHARDS]
    }

    fn get(&self, nr: BlockNr) -> Option<Arc<Page>> {
        self.shard(nr).lock().touch(nr)
    }

    fn insert(&self, nr: BlockNr, page: &Arc<Page>) {
        self.shard(nr).lock().insert(nr, Arc::clone(page));
    }

    fn remove(&self, nr: BlockNr) {
        self.shard(nr).lock().remove(nr);
    }
}

/// The write-back buffer: dirty pages of uncommitted versions, keyed by the block
/// number they will occupy once flushed.  Authoritative over the disk.  Sharded
/// like the clean cache so concurrent versions' page writes (and the membership
/// probes on every read) do not serialise on one lock.
struct Overlay {
    shards: Vec<RwLock<HashMap<BlockNr, Arc<Page>>>>,
}

impl Overlay {
    fn new() -> Self {
        Overlay {
            shards: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, nr: BlockNr) -> &RwLock<HashMap<BlockNr, Arc<Page>>> {
        let h = (u64::from(nr)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % CACHE_SHARDS]
    }

    fn get(&self, nr: BlockNr) -> Option<Arc<Page>> {
        self.shard(nr).read().get(&nr).cloned()
    }

    fn contains(&self, nr: BlockNr) -> bool {
        self.shard(nr).read().contains_key(&nr)
    }

    fn insert(&self, nr: BlockNr, page: Arc<Page>) {
        self.shard(nr).write().insert(nr, page);
    }

    fn remove(&self, nr: BlockNr) -> Option<Arc<Page>> {
        self.shard(nr).write().remove(&nr)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

/// The page view handed to [`PageIo::update_page`] closures: dereferences to
/// [`Page`] for reading, and clones the page **only on the first mutable
/// access** (auto-deref makes this invisible at the call site).  A closure
/// that merely examines the page — the common "test" half of test-and-set,
/// which returns `(false, …)` — therefore costs no page copy at all.
pub struct PageMut<'a> {
    /// The shared original; `None` when the view was constructed over an owned
    /// page (the disk path, where the decoded page is already private).
    base: Option<&'a Page>,
    /// The private copy, made lazily on first mutable access.
    copy: Option<Page>,
}

impl<'a> PageMut<'a> {
    fn shared(base: &'a Page) -> PageMut<'a> {
        PageMut {
            base: Some(base),
            copy: None,
        }
    }

    fn owned(page: Page) -> PageMut<'static> {
        PageMut {
            base: None,
            copy: Some(page),
        }
    }

    /// The page to write back, if the closure asked for one: the private copy
    /// when the page was touched mutably, `None` when a shared page was only
    /// read (nothing changed, so there is nothing to write).
    fn into_written(self) -> Option<Page> {
        self.copy
    }
}

impl std::ops::Deref for PageMut<'_> {
    type Target = Page;
    fn deref(&self) -> &Page {
        self.copy
            .as_ref()
            .or(self.base)
            .expect("PageMut holds a base or a copy")
    }
}

impl std::ops::DerefMut for PageMut<'_> {
    fn deref_mut(&mut self) -> &mut Page {
        if self.copy.is_none() {
            self.copy = Some(
                self.base
                    .expect("PageMut without a copy holds a base")
                    .clone(),
            );
        }
        self.copy.as_mut().expect("copy just ensured")
    }
}

/// Page-granularity I/O over a [`BlockServer`] account.
pub struct PageIo {
    server: Arc<BlockServer>,
    account: Capability,
    cache: Option<PageCache>,
    overlay: Overlay,
    reads: AtomicU64,
    writes: AtomicU64,
    write_calls: AtomicU64,
    allocated: AtomicU64,
    freed: AtomicU64,
    cache_hits: AtomicU64,
    flushed_at_commit: AtomicU64,
}

impl PageIo {
    /// Creates a page I/O layer with the server-side page/flag cache enabled.
    pub fn new(server: Arc<BlockServer>, account: Capability) -> Self {
        Self::with_cache(server, account, Some(4096))
    }

    /// Creates a page I/O layer; `cache_capacity: None` disables the server-side
    /// cache entirely (used by experiment E13 to measure its benefit).
    pub fn with_cache(
        server: Arc<BlockServer>,
        account: Capability,
        cache_capacity: Option<usize>,
    ) -> Self {
        PageIo {
            server,
            account,
            cache: cache_capacity.map(PageCache::new),
            overlay: Overlay::new(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_calls: AtomicU64::new(0),
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            flushed_at_commit: AtomicU64::new(0),
        }
    }

    /// The block server this page I/O layer writes to.
    pub fn block_server(&self) -> &Arc<BlockServer> {
        &self.server
    }

    /// The account capability under which pages are stored.
    pub fn account(&self) -> &Capability {
        &self.account
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PageIoStats {
        PageIoStats {
            page_reads: self.reads.load(Ordering::Relaxed),
            page_writes: self.writes.load(Ordering::Relaxed),
            pages_allocated: self.allocated.load(Ordering::Relaxed),
            pages_freed: self.freed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            pages_flushed_at_commit: self.flushed_at_commit.load(Ordering::Relaxed),
            block_write_calls: self.write_calls.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Write-through operations (committed state, merge writes).
    // ------------------------------------------------------------------

    /// Allocates a block and physically stores `page` in it.
    pub fn allocate_page(&self, page: &Arc<Page>) -> Result<BlockNr> {
        let encoded = page.encode()?;
        let nr = self.server.allocate_and_write(&self.account, encoded)?;
        self.allocated.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.write_calls.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            cache.insert(nr, page);
        }
        Ok(nr)
    }

    /// Writes `page` into the existing block `nr`, physically and immediately.
    pub fn write_page(&self, nr: BlockNr, page: &Arc<Page>) -> Result<()> {
        let encoded = page.encode()?;
        self.server.write(&self.account, nr, encoded)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.write_calls.fetch_add(1, Ordering::Relaxed);
        // Disk is now authoritative again for this block.
        self.overlay.remove(nr);
        if let Some(cache) = &self.cache {
            cache.insert(nr, page);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Write-back operations (uncommitted versions).
    // ------------------------------------------------------------------

    /// Allocates a block number for `page` but keeps the contents in the write-back
    /// buffer; nothing is physically written until [`PageIo::flush_blocks`].
    pub fn allocate_page_buffered(&self, page: &Arc<Page>) -> Result<BlockNr> {
        let nr = self.server.allocate(&self.account)?;
        self.allocated.fetch_add(1, Ordering::Relaxed);
        self.overlay.insert(nr, Arc::clone(page));
        Ok(nr)
    }

    /// Records `page` as the (logical) contents of block `nr` in the write-back
    /// buffer.  Costs no physical I/O.
    pub fn write_page_buffered(&self, nr: BlockNr, page: &Arc<Page>) {
        self.overlay.insert(nr, Arc::clone(page));
    }

    /// True if block `nr` currently has buffered, unflushed contents.
    pub fn is_buffered(&self, nr: BlockNr) -> bool {
        self.overlay.contains(nr)
    }

    /// Drops the buffered contents of block `nr` without writing them (abort path).
    /// The block itself remains allocated; callers free it separately.
    pub fn drop_buffered(&self, nr: BlockNr) {
        self.overlay.remove(nr);
    }

    /// Physically writes the buffered pages of `blocks` one page per write
    /// call, in the given order, and removes them from the write-back buffer.
    /// Blocks with no buffered contents are skipped.  Returns the number of
    /// pages written.
    ///
    /// This is the unbatched flush ([`crate::ServiceConfig::batch_flush`] off);
    /// [`PageIo::flush_blocks_batched`] is the one-scatter-gather-call fast
    /// path.  The caller is responsible for ordering: [`crate::commit`] passes
    /// children before parents with the version page last, so a crash mid-flush
    /// can never leave a durable page referencing a page that was not written.
    pub fn flush_blocks<I: IntoIterator<Item = BlockNr>>(&self, blocks: I) -> Result<usize> {
        let mut flushed = 0usize;
        for nr in blocks {
            // Take the entry out in one lock acquisition; on a failed write it is
            // restored so the caller can retry the flush later without data loss.
            let Some(page) = self.overlay.remove(nr) else {
                continue;
            };
            let result = page
                .encode()
                .and_then(|encoded| Ok(self.server.write(&self.account, nr, encoded)?));
            if let Err(e) = result {
                self.overlay.insert(nr, page);
                return Err(e);
            }
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.write_calls.fetch_add(1, Ordering::Relaxed);
            self.flushed_at_commit.fetch_add(1, Ordering::Relaxed);
            if let Some(cache) = &self.cache {
                cache.insert(nr, &page);
            }
            flushed += 1;
        }
        Ok(flushed)
    }

    /// Physically writes the buffered pages of `blocks` as **one scatter-gather
    /// block-write call**, preserving the given order within the batch, and
    /// removes them from the write-back buffer.  Blocks with no buffered
    /// contents are skipped.  Returns the number of pages written.
    ///
    /// Ordering still matters even batched: stores apply batch entries in
    /// order (see [`amoeba_block::BlockStore::write_batch`]), so a crash
    /// mid-batch leaves a children-first prefix durable, never a parent without
    /// its children.  On failure every taken page is restored to the buffer —
    /// re-flushing an already-applied prefix is an idempotent re-put.
    pub fn flush_blocks_batched<I: IntoIterator<Item = BlockNr>>(
        &self,
        blocks: I,
    ) -> Result<usize> {
        let mut taken: Vec<(BlockNr, Arc<Page>)> = Vec::new();
        let mut encoded: Vec<(BlockNr, bytes::Bytes)> = Vec::new();
        for nr in blocks {
            let Some(page) = self.overlay.remove(nr) else {
                continue;
            };
            match page.encode() {
                Ok(bytes) => {
                    encoded.push((nr, bytes));
                    taken.push((nr, page));
                }
                Err(e) => {
                    self.overlay.insert(nr, page);
                    for (nr, page) in taken {
                        self.overlay.insert(nr, page);
                    }
                    return Err(e);
                }
            }
        }
        if encoded.is_empty() {
            return Ok(0);
        }
        if let Err(e) = self.server.write_batch(&self.account, &encoded) {
            for (nr, page) in taken {
                self.overlay.insert(nr, page);
            }
            return Err(e.into());
        }
        let flushed = taken.len();
        self.writes.fetch_add(flushed as u64, Ordering::Relaxed);
        self.write_calls.fetch_add(1, Ordering::Relaxed);
        self.flushed_at_commit
            .fetch_add(flushed as u64, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            for (nr, page) in &taken {
                cache.insert(*nr, page);
            }
        }
        Ok(flushed)
    }

    // ------------------------------------------------------------------
    // Reads.
    // ------------------------------------------------------------------

    /// Reads and decodes the page stored in block `nr`.  Consults the write-back
    /// buffer first (it is authoritative), then the clean cache, then the disk.
    pub fn read_page(&self, nr: BlockNr) -> Result<Arc<Page>> {
        if let Some(page) = self.overlay.get(nr) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(page);
        }
        if let Some(cache) = &self.cache {
            if let Some(page) = cache.get(nr) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(page);
            }
        }
        let raw = self.server.read(&self.account, nr)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        let page = Arc::new(Page::decode(raw)?);
        if let Some(cache) = &self.cache {
            cache.insert(nr, &page);
        }
        Ok(page)
    }

    /// Reads a page bypassing the clean cache.  Used by the commit critical section
    /// and the chain walks, which must see the on-disk truth for committed pages.
    /// The write-back buffer is still consulted: for a buffered block the buffer
    /// *is* the truth (its disk contents do not exist yet).
    pub fn read_page_uncached(&self, nr: BlockNr) -> Result<Arc<Page>> {
        if let Some(page) = self.overlay.get(nr) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(page);
        }
        let raw = self.server.read(&self.account, nr)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::new(Page::decode(raw)?))
    }

    // ------------------------------------------------------------------
    // Free and invalidate.
    // ------------------------------------------------------------------

    /// Frees the block holding a page, dropping any buffered or cached copy.
    pub fn free_page(&self, nr: BlockNr) -> Result<()> {
        self.server.free(&self.account, nr)?;
        self.freed.fetch_add(1, Ordering::Relaxed);
        self.overlay.remove(nr);
        if let Some(cache) = &self.cache {
            cache.remove(nr);
        }
        Ok(())
    }

    /// Invalidates one cache entry (used after another server may have changed the
    /// block underneath us, e.g. a commit reference written by a companion manager).
    pub fn invalidate(&self, nr: BlockNr) {
        if let Some(cache) = &self.cache {
            cache.remove(nr);
        }
    }

    /// The commit critical section: lock block `nr`, give the closure a
    /// [`PageMut`] view of the decoded page, optionally write back the page it
    /// mutated, unlock.  Mirrors [`BlockServer::update_block`] at page
    /// granularity; closure errors pass through typed via
    /// [`BlockServer::update_block_with`].
    ///
    /// The view clones the page only on the closure's first mutable access, so
    /// the read-only `(false, …)` outcome — a failed test-and-set, an
    /// already-clear lock field — costs no page copy.
    ///
    /// For a block that lives in the write-back buffer the update is applied to the
    /// buffered copy under the buffer lock instead: such blocks belong to exactly
    /// one uncommitted version, and all mutation of that version is serialised by
    /// its `VersionMeta` lock (in `crate::service`), so the block-server lock
    /// adds nothing but I/O.
    pub fn update_page<R>(
        &self,
        nr: BlockNr,
        f: impl FnOnce(&mut PageMut<'_>) -> Result<(bool, R)>,
    ) -> Result<R> {
        // Cheap read-locked membership probe first: the common case (a committed
        // block) must not contend on the overlay's write locks at all.
        if self.overlay.contains(nr) {
            let mut shard = self.overlay.shard(nr).write();
            if let Some(entry) = shard.get_mut(&nr) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                let mut view = PageMut::shared(entry);
                let (write_back, value) = f(&mut view)?;
                if write_back {
                    if let Some(written) = view.into_written() {
                        *entry = Arc::new(written);
                    }
                }
                return Ok(value);
            }
            // Raced with a flush: fall through to the disk path below.
        }
        let result: Result<(R, Option<Page>)> =
            self.server.update_block_with(&self.account, nr, |raw| {
                let page = Page::decode(raw)?;
                // The decoded page is already private, so the view starts
                // owned: mutable access costs nothing extra.
                let mut view = PageMut::owned(page);
                let (write_back, value) = f(&mut view)?;
                if write_back {
                    let written = view.into_written().expect("owned view keeps its page");
                    let encoded = written.encode()?;
                    Ok((Some(encoded), (value, Some(written))))
                } else {
                    Ok((None, (value, None)))
                }
            });
        let (value, written) = result?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(page) = written {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.write_calls.fetch_add(1, Ordering::Relaxed);
            if let Some(cache) = &self.cache {
                cache.insert(nr, &Arc::new(page));
            }
        }
        Ok(value)
    }
}

impl std::fmt::Debug for PageIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageIo")
            .field("stats", &self.stats())
            .field("cache_enabled", &self.cache.is_some())
            .field("buffered_pages", &self.overlay.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_block::MemStore;
    use bytes::Bytes;

    fn page_io(cache: Option<usize>) -> PageIo {
        let server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
        let account = server.create_account();
        PageIo::with_cache(server, account, cache)
    }

    fn leaf(data: &'static [u8]) -> Arc<Page> {
        Arc::new(Page::leaf(Bytes::from_static(data)))
    }

    #[test]
    fn allocate_read_write_free_cycle() {
        let io = page_io(Some(16));
        let page = leaf(b"hello");
        let nr = io.allocate_page(&page).unwrap();
        assert_eq!(io.read_page(nr).unwrap(), page);
        let mut page2 = (*page).clone();
        page2.set_data(Bytes::from_static(b"world")).unwrap();
        let page2 = Arc::new(page2);
        io.write_page(nr, &page2).unwrap();
        assert_eq!(io.read_page(nr).unwrap(), page2);
        io.free_page(nr).unwrap();
        assert!(io.read_page(nr).is_err());
    }

    #[test]
    fn cache_hits_avoid_physical_reads() {
        let io = page_io(Some(16));
        let nr = io.allocate_page(&leaf(b"x")).unwrap();
        let before = io.stats();
        for _ in 0..10 {
            io.read_page(nr).unwrap();
        }
        let delta = io.stats().since(&before);
        assert_eq!(delta.page_reads, 0);
        assert_eq!(delta.cache_hits, 10);
    }

    #[test]
    fn disabled_cache_always_reads_physically() {
        let io = page_io(None);
        let nr = io.allocate_page(&leaf(b"x")).unwrap();
        let before = io.stats();
        for _ in 0..10 {
            io.read_page(nr).unwrap();
        }
        let delta = io.stats().since(&before);
        assert_eq!(delta.page_reads, 10);
        assert_eq!(delta.cache_hits, 0);
    }

    #[test]
    fn cache_eviction_keeps_capacity_bounded() {
        let io = page_io(Some(2));
        let mut blocks = Vec::new();
        for i in 0..64u8 {
            blocks.push(
                io.allocate_page(&Arc::new(Page::leaf(Bytes::from(vec![i]))))
                    .unwrap(),
            );
        }
        // All pages are still readable even though only a few fit in the cache.
        for (i, nr) in blocks.iter().enumerate() {
            assert_eq!(io.read_page(*nr).unwrap().data, Bytes::from(vec![i as u8]));
        }
    }

    #[test]
    fn buffered_writes_cost_no_physical_io_until_flush() {
        let io = page_io(Some(16));
        let before = io.stats();
        let nr = io.allocate_page_buffered(&leaf(b"v0")).unwrap();
        for i in 0..10u8 {
            io.write_page_buffered(nr, &Arc::new(Page::leaf(Bytes::from(vec![i]))));
        }
        let staged = io.stats().since(&before);
        assert_eq!(staged.page_writes, 0, "buffered writes must stay in memory");
        assert!(io.is_buffered(nr));
        // Reads see the buffered contents.
        assert_eq!(io.read_page(nr).unwrap().data, Bytes::from(vec![9u8]));
        assert_eq!(
            io.read_page_uncached(nr).unwrap().data,
            Bytes::from(vec![9u8])
        );

        let flushed = io.flush_blocks([nr]).unwrap();
        assert_eq!(flushed, 1);
        let total = io.stats().since(&before);
        assert_eq!(total.page_writes, 1, "ten logical writes, one physical");
        assert_eq!(total.pages_flushed_at_commit, 1);
        assert!(!io.is_buffered(nr));
        // The flushed contents are now on disk.
        assert_eq!(
            io.read_page_uncached(nr).unwrap().data,
            Bytes::from(vec![9u8])
        );
    }

    #[test]
    fn batched_flush_is_one_write_call_for_many_pages() {
        let io = page_io(Some(16));
        let before = io.stats();
        let blocks: Vec<BlockNr> = (0..6u8)
            .map(|i| {
                io.allocate_page_buffered(&Arc::new(Page::leaf(Bytes::from(vec![i]))))
                    .unwrap()
            })
            .collect();
        let flushed = io.flush_blocks_batched(blocks.iter().copied()).unwrap();
        assert_eq!(flushed, 6);
        let delta = io.stats().since(&before);
        assert_eq!(delta.page_writes, 6, "every page is physically written");
        assert_eq!(delta.block_write_calls, 1, "…in one scatter-gather call");
        assert_eq!(delta.pages_flushed_at_commit, 6);
        for (i, nr) in blocks.iter().enumerate() {
            assert!(!io.is_buffered(*nr));
            assert_eq!(
                io.read_page_uncached(*nr).unwrap().data,
                Bytes::from(vec![i as u8])
            );
        }
        // Flushing blocks with no buffered contents is a no-call no-op.
        let before = io.stats();
        assert_eq!(io.flush_blocks_batched(blocks).unwrap(), 0);
        assert_eq!(io.stats().since(&before).block_write_calls, 0);
    }

    #[test]
    fn update_page_read_only_outcome_leaves_the_buffered_arc_untouched() {
        let io = page_io(Some(16));
        let nr = io.allocate_page_buffered(&leaf(b"shared")).unwrap();
        let original = io.read_page(nr).unwrap();
        let observed: Bytes = io
            .update_page(nr, |page| Ok((false, page.data.clone())))
            .unwrap();
        assert_eq!(observed, Bytes::from_static(b"shared"));
        // The no-mutation path must not have replaced (or copied into) the
        // buffered entry: the same allocation is still served.
        let after = io.read_page(nr).unwrap();
        assert!(
            Arc::ptr_eq(&original, &after),
            "a (false, _) update must leave the buffered Arc<Page> in place"
        );
    }

    #[test]
    fn dropped_buffers_never_reach_the_disk() {
        let io = page_io(Some(16));
        let nr = io.allocate_page_buffered(&leaf(b"doomed")).unwrap();
        io.drop_buffered(nr);
        assert_eq!(io.flush_blocks([nr]).unwrap(), 0);
        // The block is still allocated but holds no decodable page.
        assert!(io.read_page(nr).is_err());
        io.free_page(nr).unwrap();
    }

    #[test]
    fn update_page_applies_changes_atomically() {
        let io = Arc::new(page_io(Some(16)));
        let nr = io
            .allocate_page(&Arc::new(Page::leaf(Bytes::from(
                0u64.to_le_bytes().to_vec(),
            ))))
            .unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let io = Arc::clone(&io);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    io.update_page(nr, |page| {
                        let v = u64::from_le_bytes(page.data[..8].try_into().unwrap());
                        page.set_data(Bytes::from((v + 1).to_le_bytes().to_vec()))
                            .unwrap();
                        Ok((true, ()))
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let final_page = io.read_page_uncached(nr).unwrap();
        assert_eq!(
            u64::from_le_bytes(final_page.data[..8].try_into().unwrap()),
            400
        );
    }

    #[test]
    fn update_page_without_write_back_changes_nothing() {
        let io = page_io(Some(16));
        let nr = io.allocate_page(&leaf(b"keep")).unwrap();
        let observed: Bytes = io
            .update_page(nr, |page| Ok((false, page.data.clone())))
            .unwrap();
        assert_eq!(observed, Bytes::from_static(b"keep"));
        assert_eq!(io.read_page(nr).unwrap().data, Bytes::from_static(b"keep"));
    }

    #[test]
    fn update_page_mutates_buffered_blocks_in_memory() {
        let io = page_io(Some(16));
        let nr = io.allocate_page_buffered(&leaf(b"before")).unwrap();
        let phys_before = io.stats();
        io.update_page(nr, |page| {
            page.set_data(Bytes::from_static(b"after")).unwrap();
            Ok((true, ()))
        })
        .unwrap();
        let delta = io.stats().since(&phys_before);
        assert_eq!(delta.page_reads, 0);
        assert_eq!(delta.page_writes, 0);
        assert_eq!(io.read_page(nr).unwrap().data, Bytes::from_static(b"after"));
    }

    #[test]
    fn stats_count_allocation_and_free() {
        let io = page_io(Some(16));
        let nr = io.allocate_page(&Arc::new(Page::empty())).unwrap();
        io.free_page(nr).unwrap();
        let s = io.stats();
        assert_eq!(s.pages_allocated, 1);
        assert_eq!(s.pages_freed, 1);
    }

    #[test]
    fn sharded_cache_serves_concurrent_readers_and_evicts() {
        let io = Arc::new(page_io(Some(64)));
        let mut blocks = Vec::new();
        for i in 0..200u32 {
            blocks.push(
                io.allocate_page(&Arc::new(Page::leaf(Bytes::from(i.to_le_bytes().to_vec()))))
                    .unwrap(),
            );
        }
        let blocks = Arc::new(blocks);
        let mut handles = Vec::new();
        for t in 0..8usize {
            let io = Arc::clone(&io);
            let blocks = Arc::clone(&blocks);
            handles.push(std::thread::spawn(move || {
                for round in 0..50usize {
                    let i = (t * 31 + round * 7) % blocks.len();
                    let page = io.read_page(blocks[i]).unwrap();
                    assert_eq!(
                        u32::from_le_bytes(page.data[..4].try_into().unwrap()),
                        i as u32
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The cache stayed bounded (more blocks than capacity) yet produced hits.
        let stats = io.stats();
        assert!(stats.cache_hits > 0, "expected some cache hits");
    }
}
