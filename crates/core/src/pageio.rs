//! Page I/O: reading and writing pages through the block service.
//!
//! All pages of all versions live in blocks of a [`BlockServer`] owned by the file
//! service's account.  `PageIo` adds:
//!
//! * encoding/decoding between [`Page`] and raw block contents,
//! * an optional *flag cache* (§5.4: "The Amoeba File Servers can also conveniently
//!   cache the concurrency control administration, the flag bits.  This allows
//!   serialisability tests without having to read the page tree.") — implemented as a
//!   bounded cache of decoded pages keyed by block number, and
//! * counters for physical page reads/writes so the benchmarks can report disk I/O
//!   rather than wall-clock time alone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use amoeba_block::{BlockNr, BlockServer};
use amoeba_capability::Capability;

use crate::page::Page;
use crate::types::Result;

/// I/O statistics of the file service.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PageIoStats {
    /// Pages read from the block service (physical reads).
    pub page_reads: u64,
    /// Pages written to the block service.
    pub page_writes: u64,
    /// Pages newly allocated (copy-on-write copies, fresh pages, version pages).
    pub pages_allocated: u64,
    /// Pages freed (aborted versions, garbage collection).
    pub pages_freed: u64,
    /// Reads satisfied from the flag cache without touching the block service.
    pub cache_hits: u64,
}

impl PageIoStats {
    /// Field-wise difference `self - earlier`.
    pub fn since(&self, earlier: &PageIoStats) -> PageIoStats {
        PageIoStats {
            page_reads: self.page_reads - earlier.page_reads,
            page_writes: self.page_writes - earlier.page_writes,
            pages_allocated: self.pages_allocated - earlier.pages_allocated,
            pages_freed: self.pages_freed - earlier.pages_freed,
            cache_hits: self.cache_hits - earlier.cache_hits,
        }
    }
}

/// Page-granularity I/O over a [`BlockServer`] account.
pub struct PageIo {
    server: Arc<BlockServer>,
    account: Capability,
    cache: Option<Mutex<PageCacheInner>>,
    reads: AtomicU64,
    writes: AtomicU64,
    allocated: AtomicU64,
    freed: AtomicU64,
    cache_hits: AtomicU64,
}

#[derive(Debug)]
struct PageCacheInner {
    capacity: usize,
    pages: HashMap<BlockNr, Page>,
    /// Simple FIFO eviction order; good enough for the flag-cache experiments.
    order: std::collections::VecDeque<BlockNr>,
}

impl PageCacheInner {
    fn insert(&mut self, nr: BlockNr, page: Page) {
        if !self.pages.contains_key(&nr) {
            self.order.push_back(nr);
        }
        self.pages.insert(nr, page);
        while self.pages.len() > self.capacity {
            if let Some(evict) = self.order.pop_front() {
                self.pages.remove(&evict);
            } else {
                break;
            }
        }
    }
}

impl PageIo {
    /// Creates a page I/O layer with the server-side page/flag cache enabled.
    pub fn new(server: Arc<BlockServer>, account: Capability) -> Self {
        Self::with_cache(server, account, Some(4096))
    }

    /// Creates a page I/O layer; `cache_capacity: None` disables the server-side
    /// cache entirely (used by experiment E13 to measure its benefit).
    pub fn with_cache(
        server: Arc<BlockServer>,
        account: Capability,
        cache_capacity: Option<usize>,
    ) -> Self {
        PageIo {
            server,
            account,
            cache: cache_capacity.map(|capacity| {
                Mutex::new(PageCacheInner {
                    capacity,
                    pages: HashMap::new(),
                    order: std::collections::VecDeque::new(),
                })
            }),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// The block server this page I/O layer writes to.
    pub fn block_server(&self) -> &Arc<BlockServer> {
        &self.server
    }

    /// The account capability under which pages are stored.
    pub fn account(&self) -> &Capability {
        &self.account
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PageIoStats {
        PageIoStats {
            page_reads: self.reads.load(Ordering::Relaxed),
            page_writes: self.writes.load(Ordering::Relaxed),
            pages_allocated: self.allocated.load(Ordering::Relaxed),
            pages_freed: self.freed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Allocates a block and stores `page` in it.
    pub fn allocate_page(&self, page: &Page) -> Result<BlockNr> {
        let encoded = page.encode()?;
        let nr = self.server.allocate_and_write(&self.account, encoded)?;
        self.allocated.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            cache.lock().insert(nr, page.clone());
        }
        Ok(nr)
    }

    /// Reads and decodes the page stored in block `nr`.
    pub fn read_page(&self, nr: BlockNr) -> Result<Page> {
        if let Some(cache) = &self.cache {
            if let Some(page) = cache.lock().pages.get(&nr) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(page.clone());
            }
        }
        let raw = self.server.read(&self.account, nr)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        let page = Page::decode(raw)?;
        if let Some(cache) = &self.cache {
            cache.lock().insert(nr, page.clone());
        }
        Ok(page)
    }

    /// Reads a page directly from the block service, bypassing the cache.  Used by
    /// the commit critical section, which must see the on-disk truth.
    pub fn read_page_uncached(&self, nr: BlockNr) -> Result<Page> {
        let raw = self.server.read(&self.account, nr)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Page::decode(raw)
    }

    /// Writes `page` into the existing block `nr` (writing a private copy in place).
    pub fn write_page(&self, nr: BlockNr, page: &Page) -> Result<()> {
        let encoded = page.encode()?;
        self.server.write(&self.account, nr, encoded)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            cache.lock().insert(nr, page.clone());
        }
        Ok(())
    }

    /// Frees the block holding a page.
    pub fn free_page(&self, nr: BlockNr) -> Result<()> {
        self.server.free(&self.account, nr)?;
        self.freed.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            let mut cache = cache.lock();
            cache.pages.remove(&nr);
        }
        Ok(())
    }

    /// Invalidates one cache entry (used after another server may have changed the
    /// block underneath us, e.g. a commit reference written by a companion manager).
    pub fn invalidate(&self, nr: BlockNr) {
        if let Some(cache) = &self.cache {
            cache.lock().pages.remove(&nr);
        }
    }

    /// The commit critical section: lock block `nr`, give the closure the decoded
    /// page, optionally write back the page it returns, unlock.  Mirrors
    /// [`BlockServer::update_block`] at page granularity.
    pub fn update_page<R>(
        &self,
        nr: BlockNr,
        f: impl FnOnce(&mut Page) -> Result<(bool, R)>,
    ) -> Result<R> {
        let account = self.account;
        let result = self.server.update_block(&account, nr, |raw| {
            let mut page = Page::decode(raw).map_err(fs_to_block)?;
            let (write_back, value) = f(&mut page).map_err(fs_to_block)?;
            if write_back {
                let encoded = page.encode().map_err(fs_to_block)?;
                Ok((Some(encoded), (value, write_back, page)))
            } else {
                Ok((None, (value, write_back, page)))
            }
        });
        match result {
            Ok((value, wrote, page)) => {
                self.reads.fetch_add(1, Ordering::Relaxed);
                if wrote {
                    self.writes.fetch_add(1, Ordering::Relaxed);
                    if let Some(cache) = &self.cache {
                        cache.lock().insert(nr, page);
                    }
                }
                Ok(value)
            }
            Err(e) => Err(block_to_fs(e)),
        }
    }
}

/// Smuggles an [`crate::types::FsError`] through the block layer's error type so
/// `update_block` closures can fail with file-service errors.
fn fs_to_block(e: crate::types::FsError) -> amoeba_block::BlockError {
    match e {
        crate::types::FsError::Block(inner) => inner,
        other => amoeba_block::BlockError::Io(format!("fs:{other}")),
    }
}

fn block_to_fs(e: amoeba_block::BlockError) -> crate::types::FsError {
    if let amoeba_block::BlockError::Io(msg) = &e {
        if let Some(stripped) = msg.strip_prefix("fs:") {
            // Reconstruct the common cases; anything else stays a block error.
            if stripped.starts_with("commit failed") {
                return crate::types::FsError::SerialisabilityConflict;
            }
        }
    }
    crate::types::FsError::from(e)
}

impl std::fmt::Debug for PageIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageIo")
            .field("stats", &self.stats())
            .field("cache_enabled", &self.cache.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_block::MemStore;
    use bytes::Bytes;

    fn page_io(cache: Option<usize>) -> PageIo {
        let server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
        let account = server.create_account();
        PageIo::with_cache(server, account, cache)
    }

    #[test]
    fn allocate_read_write_free_cycle() {
        let io = page_io(Some(16));
        let page = Page::leaf(Bytes::from_static(b"hello"));
        let nr = io.allocate_page(&page).unwrap();
        assert_eq!(io.read_page(nr).unwrap(), page);
        let mut page2 = page.clone();
        page2.set_data(Bytes::from_static(b"world")).unwrap();
        io.write_page(nr, &page2).unwrap();
        assert_eq!(io.read_page(nr).unwrap(), page2);
        io.free_page(nr).unwrap();
        assert!(io.read_page(nr).is_err());
    }

    #[test]
    fn cache_hits_avoid_physical_reads() {
        let io = page_io(Some(16));
        let nr = io
            .allocate_page(&Page::leaf(Bytes::from_static(b"x")))
            .unwrap();
        let before = io.stats();
        for _ in 0..10 {
            io.read_page(nr).unwrap();
        }
        let delta = io.stats().since(&before);
        assert_eq!(delta.page_reads, 0);
        assert_eq!(delta.cache_hits, 10);
    }

    #[test]
    fn disabled_cache_always_reads_physically() {
        let io = page_io(None);
        let nr = io
            .allocate_page(&Page::leaf(Bytes::from_static(b"x")))
            .unwrap();
        let before = io.stats();
        for _ in 0..10 {
            io.read_page(nr).unwrap();
        }
        let delta = io.stats().since(&before);
        assert_eq!(delta.page_reads, 10);
        assert_eq!(delta.cache_hits, 0);
    }

    #[test]
    fn cache_eviction_keeps_capacity_bounded() {
        let io = page_io(Some(2));
        let mut blocks = Vec::new();
        for i in 0..5u8 {
            blocks.push(io.allocate_page(&Page::leaf(Bytes::from(vec![i]))).unwrap());
        }
        // All pages are still readable even though only two fit in the cache.
        for (i, nr) in blocks.iter().enumerate() {
            assert_eq!(io.read_page(*nr).unwrap().data, Bytes::from(vec![i as u8]));
        }
    }

    #[test]
    fn update_page_applies_changes_atomically() {
        let io = Arc::new(page_io(Some(16)));
        let nr = io
            .allocate_page(&Page::leaf(Bytes::from(0u64.to_le_bytes().to_vec())))
            .unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let io = Arc::clone(&io);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    io.update_page(nr, |page| {
                        let v = u64::from_le_bytes(page.data[..8].try_into().unwrap());
                        page.set_data(Bytes::from((v + 1).to_le_bytes().to_vec()))
                            .unwrap();
                        Ok((true, ()))
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let final_page = io.read_page_uncached(nr).unwrap();
        assert_eq!(
            u64::from_le_bytes(final_page.data[..8].try_into().unwrap()),
            400
        );
    }

    #[test]
    fn update_page_without_write_back_changes_nothing() {
        let io = page_io(Some(16));
        let nr = io
            .allocate_page(&Page::leaf(Bytes::from_static(b"keep")))
            .unwrap();
        let observed: Bytes = io
            .update_page(nr, |page| Ok((false, page.data.clone())))
            .unwrap();
        assert_eq!(observed, Bytes::from_static(b"keep"));
        assert_eq!(io.read_page(nr).unwrap().data, Bytes::from_static(b"keep"));
    }

    #[test]
    fn stats_count_allocation_and_free() {
        let io = page_io(Some(16));
        let nr = io.allocate_page(&Page::empty()).unwrap();
        io.free_page(nr).unwrap();
        let s = io.stats();
        assert_eq!(s.pages_allocated, 1);
        assert_eq!(s.pages_freed, 1);
    }
}
