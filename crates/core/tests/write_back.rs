//! Integration tests for the write-back page path: durability is established at
//! commit time (the paper's "first it ascertains that all of V.b's pages are safely
//! on disk"), not per page access.

use std::sync::Arc;

use bytes::Bytes;

use afs_core::{
    BlockServer, Capability, FileService, MemStore, PagePath, ServiceConfig, VersionState,
};

fn service_with(write_back: bool) -> Arc<FileService> {
    let server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
    FileService::with_config(
        server,
        ServiceConfig {
            write_back,
            ..ServiceConfig::default()
        },
    )
}

/// Builds a committed file with a depth-2 path root → interior → leaf and returns
/// the leaf path.
fn deep_file(service: &FileService) -> (Capability, PagePath) {
    let file = service.create_file().unwrap();
    let v = service.create_version(&file).unwrap();
    let interior = service
        .append_page(&v, &PagePath::root(), Bytes::from_static(b"interior"))
        .unwrap();
    let leaf = service
        .append_page(&v, &interior, Bytes::from_static(b"leaf"))
        .unwrap();
    service.commit(&v).unwrap();
    (file, leaf)
}

#[test]
fn repeated_writes_cost_o_dirty_pages_at_commit_not_o_k_depth() {
    let service = service_with(true);
    let (file, leaf) = deep_file(&service);

    const K: usize = 50;
    // Version creation itself performs one physical write: the top-lock
    // test-and-set on the shared current version page.  Measure after it.
    let v = service.create_version(&file).unwrap();
    let before = service.io_stats();
    for i in 0..K {
        service
            .write_page(&v, &leaf, Bytes::from(vec![i as u8; 64]))
            .unwrap();
    }
    let staged = service.io_stats().since(&before);
    assert_eq!(
        staged.page_writes, 0,
        "uncommitted page writes must stay in the write-back buffer"
    );

    service.commit(&v).unwrap();
    let total = service.io_stats().since(&before);
    // The flush writes the dirty pages once each (leaf copy, interior copy, version
    // page); commit adds the commit-reference test-and-set and the lock clear.  The
    // write-through seed paid O(K · depth) writes for the same workload.
    assert!(
        total.pages_flushed_at_commit <= 4,
        "expected O(dirty) flushed pages, got {total:?}"
    );
    assert!(
        (total.page_writes as usize) < K,
        "expected O(dirty) physical writes for {K} logical writes, got {total:?}"
    );

    // The committed contents are the last write.
    let current = service.current_version(&file).unwrap();
    assert_eq!(
        service.read_committed_page(&current, &leaf).unwrap(),
        Bytes::from(vec![(K - 1) as u8; 64])
    );
}

#[test]
fn write_back_elides_physical_io_the_write_through_mode_pays() {
    let run = |write_back: bool| {
        let service = service_with(write_back);
        let (file, leaf) = deep_file(&service);
        let before = service.io_stats();
        for round in 0..10u8 {
            let v = service.create_version(&file).unwrap();
            for i in 0..10u8 {
                service
                    .write_page(&v, &leaf, Bytes::from(vec![round, i]))
                    .unwrap();
            }
            service.commit(&v).unwrap();
        }
        service.io_stats().since(&before)
    };
    let write_through = run(false);
    let write_back = run(true);
    assert!(
        write_back.page_writes < write_through.page_writes,
        "write-back ({write_back:?}) must beat write-through ({write_through:?})"
    );
    assert!(write_back.pages_flushed_at_commit > 0);
    assert_eq!(write_through.pages_flushed_at_commit, 0);
}

#[test]
fn shadow_trail_rewrites_are_elided_on_repeated_access() {
    let service = service_with(false); // write-through makes every rewrite visible
    let (file, leaf) = deep_file(&service);
    let v = service.create_version(&file).unwrap();
    service
        .write_page(&v, &leaf, Bytes::from_static(b"first"))
        .unwrap();
    let after_first = service.io_stats();
    // Repeated writes through the now fully shadowed, fully flagged trail must
    // rewrite only the leaf, not the interior pages or the version page.
    for i in 0..5u8 {
        service.write_page(&v, &leaf, Bytes::from(vec![i])).unwrap();
    }
    let delta = service.io_stats().since(&after_first);
    assert_eq!(
        delta.page_writes, 5,
        "each repeated write must rewrite exactly the target page: {delta:?}"
    );
    // Repeated reads of an already read page rewrite nothing at all.  (The very
    // first read records the R flag in the leaf's parent, which is one rewrite.)
    service.read_page(&v, &leaf).unwrap();
    let before_reads = service.io_stats();
    for _ in 0..5 {
        service.read_page(&v, &leaf).unwrap();
    }
    let delta = service.io_stats().since(&before_reads);
    assert_eq!(delta.page_writes, 0, "re-reads must not rewrite: {delta:?}");
    service.commit(&v).unwrap();
}

#[test]
fn crash_before_commit_recovers_the_version_as_aborted() {
    let block_server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
    let service = FileService::new(Arc::clone(&block_server));
    let account = service.storage_account();

    let file = service.create_file().unwrap();
    let v = service.create_version(&file).unwrap();
    let page = service
        .append_page(&v, &PagePath::root(), Bytes::from_static(b"durable"))
        .unwrap();
    service.commit(&v).unwrap();

    // An update in progress: buffered only, never committed.
    let pending = service.create_version(&file).unwrap();
    service
        .write_page(&pending, &page, Bytes::from_static(b"volatile"))
        .unwrap();
    let blocks_before_crash = block_server.store().allocated_count();

    // The server process dies; the write-back buffer dies with it.
    drop(service);

    let (recovered, report) = FileService::recover_from_storage(
        Arc::clone(&block_server),
        account,
        ServiceConfig::default(),
    )
    .unwrap();
    assert_eq!(report.files.len(), 1);
    assert!(
        report.freed_unflushed > 0,
        "the unflushed version's blocks are crash garbage: {report:?}"
    );
    // The uncommitted update is gone without trace: only the committed chain
    // remains, and its contents are the committed ones.
    let tree = recovered.family_tree(&report.files[0]).unwrap();
    assert!(tree.uncommitted.is_empty());
    let current = recovered.current_version(&report.files[0]).unwrap();
    assert_eq!(
        recovered.version_state(&current).unwrap(),
        VersionState::Committed
    );
    assert_eq!(
        recovered.read_committed_page(&current, &page).unwrap(),
        Bytes::from_static(b"durable")
    );
    assert!(
        block_server.store().allocated_count() < blocks_before_crash,
        "recovery must reclaim the unflushed blocks"
    );
}

#[test]
fn aborts_drop_the_buffer_without_physical_writes() {
    let service = service_with(true);
    let (file, leaf) = deep_file(&service);
    // Creating and aborting a version each write the shared current version page
    // once (top-lock set and clear); everything in between must cost nothing.
    let v = service.create_version(&file).unwrap();
    let before = service.io_stats();
    for i in 0..20u8 {
        service.write_page(&v, &leaf, Bytes::from(vec![i])).unwrap();
    }
    let staged = service.io_stats().since(&before);
    assert_eq!(
        staged.page_writes, 0,
        "an aborted buffered update must never touch the disk: {staged:?}"
    );
    service.abort_version(&v).unwrap();
    let delta = service.io_stats().since(&before);
    assert_eq!(delta.pages_flushed_at_commit, 0);
    // The committed state is untouched.
    let current = service.current_version(&file).unwrap();
    assert_eq!(
        service.read_committed_page(&current, &leaf).unwrap(),
        Bytes::from_static(b"leaf")
    );
}

#[test]
fn concurrent_committers_share_the_cache_and_stay_correct() {
    let service = service_with(true);
    let file = service.create_file().unwrap();
    let setup = service.create_version(&file).unwrap();
    let mut paths = Vec::new();
    for i in 0..8u8 {
        paths.push(
            service
                .append_page(&setup, &PagePath::root(), Bytes::from(vec![i]))
                .unwrap(),
        );
    }
    service.commit(&setup).unwrap();
    let paths = Arc::new(paths);

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let service = Arc::clone(&service);
            let paths = Arc::clone(&paths);
            scope.spawn(move || {
                for round in 0..25usize {
                    loop {
                        let v = service.create_version(&file).unwrap();
                        let path = &paths[(t * 2 + round) % paths.len()];
                        service
                            .write_page(&v, path, Bytes::from(vec![t as u8, round as u8]))
                            .unwrap();
                        match service.commit(&v) {
                            Ok(_) => break,
                            Err(afs_core::FsError::SerialisabilityConflict) => continue,
                            Err(e) => panic!("unexpected commit failure: {e}"),
                        }
                    }
                }
            });
        }
    });

    // All committed state is readable and the cache produced hits.
    let current = service.current_version(&file).unwrap();
    for path in paths.iter() {
        service.read_committed_page(&current, path).unwrap();
    }
    assert!(service.io_stats().cache_hits > 0);
}

// ---------------------------------------------------------------------------
// Batched commit flush (PR 4).
// ---------------------------------------------------------------------------

/// Commits a version with `dirty` freshly appended pages and returns the
/// `(page_writes, block_write_calls)` delta of the commit itself.
fn commit_cost(service: &FileService, file: &Capability, dirty: usize) -> (u64, u64) {
    let v = service.create_version(file).unwrap();
    for i in 0..dirty {
        service
            .append_page(&v, &PagePath::root(), Bytes::from(vec![i as u8; 64]))
            .unwrap();
    }
    let before = service.io_stats();
    service.commit(&v).unwrap();
    let delta = service.io_stats().since(&before);
    (delta.page_writes, delta.block_write_calls)
}

#[test]
fn a_k_dirty_page_commit_costs_o1_block_write_calls() {
    let service = service_with(true);
    let file = service.create_file().unwrap();

    let (writes_small, calls_small) = commit_cost(&service, &file, 4);
    let (writes_large, calls_large) = commit_cost(&service, &file, 32);

    // Pages written grow with the dirty set…
    assert!(writes_large > writes_small);
    assert!(writes_large >= 32);
    // …but the physical write calls do not: one data-page batch, one version
    // page, one commit-reference test-and-set.
    assert_eq!(
        calls_small, calls_large,
        "write calls must not grow with the dirty-page count"
    );
    assert!(
        calls_large <= 3,
        "a commit is 1 batch + 1 version page + 1 test-and-set, got {calls_large}"
    );
}

#[test]
fn unbatched_flush_pays_one_call_per_page_and_stays_equivalent() {
    let batched = service_with(true);
    let unbatched = {
        let server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
        FileService::with_config(
            server,
            ServiceConfig {
                write_back: true,
                batch_flush: false,
                ..ServiceConfig::default()
            },
        )
    };

    let mut currents = Vec::new();
    for service in [&batched, &unbatched] {
        let file = service.create_file().unwrap();
        let (_, calls) = commit_cost(service, &file, 16);
        let io = service.io_stats();
        if std::ptr::eq(service, &batched) {
            assert!(calls <= 3, "batched flush is O(1) calls, got {calls}");
        } else {
            assert!(
                calls >= 17,
                "unbatched flush pays one call per dirty page, got {calls}"
            );
            assert_eq!(
                io.page_writes, io.block_write_calls,
                "without batching, calls equal pages written"
            );
        }
        // Identical logical state either way.
        let current = service.current_version(&file).unwrap();
        let mut pages = Vec::new();
        for i in 0..16u16 {
            pages.push(
                service
                    .read_committed_page(&current, &PagePath::new(vec![i]))
                    .unwrap(),
            );
        }
        currents.push(pages);
    }
    assert_eq!(currents[0], currents[1]);
}

#[test]
fn replica_killed_mid_commit_batch_is_fully_replayed_by_resync() {
    use amoeba_block::{BlockStore, FaultyStore, ReplicatedBlockStore};

    let disks: Vec<Arc<FaultyStore<MemStore>>> = (0..2)
        .map(|_| Arc::new(FaultyStore::new(MemStore::new())))
        .collect();
    let replicas = ReplicatedBlockStore::new(
        disks
            .iter()
            .map(|d| Arc::clone(d) as Arc<dyn BlockStore>)
            .collect(),
    );
    // The page cache is disabled so the final reads provably come from the
    // recovered replica's disk.
    let service = FileService::with_config(
        Arc::new(BlockServer::new(
            Arc::clone(&replicas) as Arc<dyn BlockStore>
        )),
        ServiceConfig {
            flag_cache_capacity: None,
            ..ServiceConfig::default()
        },
    );
    let file = service.create_file().unwrap();
    let v = service.create_version(&file).unwrap();
    let paths: Vec<PagePath> = (0..8u8)
        .map(|i| {
            service
                .append_page(&v, &PagePath::root(), Bytes::from(vec![i; 48]))
                .unwrap()
        })
        .collect();

    // Replica 1's disk dies after 3 more block writes: the commit's data-page
    // batch is cut off mid-stream on that replica.  The commit must still
    // succeed on the survivor, with the whole batch queued as an intention.
    disks[1].crash_after_writes(3);
    service.commit(&v).unwrap();
    assert!(
        replicas.is_down(1),
        "the mid-batch corpse was auto-detected"
    );
    assert!(
        replicas.replica_stats().intentions_recorded > 0,
        "the missed batch must be queued for resync"
    );
    assert!(!replicas.divergent_blocks().is_empty());

    // Recover the disk, resync the replica: the whole batch is replayed.
    disks[1].recover();
    replicas.resync(1).unwrap();
    assert!(
        replicas.divergent_blocks().is_empty(),
        "resync must replay the full batch, not just a suffix"
    );

    // The acid test: serve everything from the recovered replica alone.
    replicas.crash(0);
    let current = service.current_version(&file).unwrap();
    for (i, path) in paths.iter().enumerate() {
        assert_eq!(
            service.read_committed_page(&current, path).unwrap(),
            Bytes::from(vec![i as u8; 48]),
            "committed page {i} lost on the resynced replica"
        );
    }
}
