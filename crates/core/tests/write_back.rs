//! Integration tests for the write-back page path: durability is established at
//! commit time (the paper's "first it ascertains that all of V.b's pages are safely
//! on disk"), not per page access.

use std::sync::Arc;

use bytes::Bytes;

use afs_core::{
    BlockServer, Capability, FileService, MemStore, PagePath, ServiceConfig, VersionState,
};

fn service_with(write_back: bool) -> Arc<FileService> {
    let server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
    FileService::with_config(
        server,
        ServiceConfig {
            write_back,
            ..ServiceConfig::default()
        },
    )
}

/// Builds a committed file with a depth-2 path root → interior → leaf and returns
/// the leaf path.
fn deep_file(service: &FileService) -> (Capability, PagePath) {
    let file = service.create_file().unwrap();
    let v = service.create_version(&file).unwrap();
    let interior = service
        .append_page(&v, &PagePath::root(), Bytes::from_static(b"interior"))
        .unwrap();
    let leaf = service
        .append_page(&v, &interior, Bytes::from_static(b"leaf"))
        .unwrap();
    service.commit(&v).unwrap();
    (file, leaf)
}

#[test]
fn repeated_writes_cost_o_dirty_pages_at_commit_not_o_k_depth() {
    let service = service_with(true);
    let (file, leaf) = deep_file(&service);

    const K: usize = 50;
    // Version creation itself performs one physical write: the top-lock
    // test-and-set on the shared current version page.  Measure after it.
    let v = service.create_version(&file).unwrap();
    let before = service.io_stats();
    for i in 0..K {
        service
            .write_page(&v, &leaf, Bytes::from(vec![i as u8; 64]))
            .unwrap();
    }
    let staged = service.io_stats().since(&before);
    assert_eq!(
        staged.page_writes, 0,
        "uncommitted page writes must stay in the write-back buffer"
    );

    service.commit(&v).unwrap();
    let total = service.io_stats().since(&before);
    // The flush writes the dirty pages once each (leaf copy, interior copy, version
    // page); commit adds the commit-reference test-and-set and the lock clear.  The
    // write-through seed paid O(K · depth) writes for the same workload.
    assert!(
        total.pages_flushed_at_commit <= 4,
        "expected O(dirty) flushed pages, got {total:?}"
    );
    assert!(
        (total.page_writes as usize) < K,
        "expected O(dirty) physical writes for {K} logical writes, got {total:?}"
    );

    // The committed contents are the last write.
    let current = service.current_version(&file).unwrap();
    assert_eq!(
        service.read_committed_page(&current, &leaf).unwrap(),
        Bytes::from(vec![(K - 1) as u8; 64])
    );
}

#[test]
fn write_back_elides_physical_io_the_write_through_mode_pays() {
    let run = |write_back: bool| {
        let service = service_with(write_back);
        let (file, leaf) = deep_file(&service);
        let before = service.io_stats();
        for round in 0..10u8 {
            let v = service.create_version(&file).unwrap();
            for i in 0..10u8 {
                service
                    .write_page(&v, &leaf, Bytes::from(vec![round, i]))
                    .unwrap();
            }
            service.commit(&v).unwrap();
        }
        service.io_stats().since(&before)
    };
    let write_through = run(false);
    let write_back = run(true);
    assert!(
        write_back.page_writes < write_through.page_writes,
        "write-back ({write_back:?}) must beat write-through ({write_through:?})"
    );
    assert!(write_back.pages_flushed_at_commit > 0);
    assert_eq!(write_through.pages_flushed_at_commit, 0);
}

#[test]
fn shadow_trail_rewrites_are_elided_on_repeated_access() {
    let service = service_with(false); // write-through makes every rewrite visible
    let (file, leaf) = deep_file(&service);
    let v = service.create_version(&file).unwrap();
    service
        .write_page(&v, &leaf, Bytes::from_static(b"first"))
        .unwrap();
    let after_first = service.io_stats();
    // Repeated writes through the now fully shadowed, fully flagged trail must
    // rewrite only the leaf, not the interior pages or the version page.
    for i in 0..5u8 {
        service.write_page(&v, &leaf, Bytes::from(vec![i])).unwrap();
    }
    let delta = service.io_stats().since(&after_first);
    assert_eq!(
        delta.page_writes, 5,
        "each repeated write must rewrite exactly the target page: {delta:?}"
    );
    // Repeated reads of an already read page rewrite nothing at all.  (The very
    // first read records the R flag in the leaf's parent, which is one rewrite.)
    service.read_page(&v, &leaf).unwrap();
    let before_reads = service.io_stats();
    for _ in 0..5 {
        service.read_page(&v, &leaf).unwrap();
    }
    let delta = service.io_stats().since(&before_reads);
    assert_eq!(delta.page_writes, 0, "re-reads must not rewrite: {delta:?}");
    service.commit(&v).unwrap();
}

#[test]
fn crash_before_commit_recovers_the_version_as_aborted() {
    let block_server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
    let service = FileService::new(Arc::clone(&block_server));
    let account = service.storage_account();

    let file = service.create_file().unwrap();
    let v = service.create_version(&file).unwrap();
    let page = service
        .append_page(&v, &PagePath::root(), Bytes::from_static(b"durable"))
        .unwrap();
    service.commit(&v).unwrap();

    // An update in progress: buffered only, never committed.
    let pending = service.create_version(&file).unwrap();
    service
        .write_page(&pending, &page, Bytes::from_static(b"volatile"))
        .unwrap();
    let blocks_before_crash = block_server.store().allocated_count();

    // The server process dies; the write-back buffer dies with it.
    drop(service);

    let (recovered, report) = FileService::recover_from_storage(
        Arc::clone(&block_server),
        account,
        ServiceConfig::default(),
    )
    .unwrap();
    assert_eq!(report.files.len(), 1);
    assert!(
        report.freed_unflushed > 0,
        "the unflushed version's blocks are crash garbage: {report:?}"
    );
    // The uncommitted update is gone without trace: only the committed chain
    // remains, and its contents are the committed ones.
    let tree = recovered.family_tree(&report.files[0]).unwrap();
    assert!(tree.uncommitted.is_empty());
    let current = recovered.current_version(&report.files[0]).unwrap();
    assert_eq!(
        recovered.version_state(&current).unwrap(),
        VersionState::Committed
    );
    assert_eq!(
        recovered.read_committed_page(&current, &page).unwrap(),
        Bytes::from_static(b"durable")
    );
    assert!(
        block_server.store().allocated_count() < blocks_before_crash,
        "recovery must reclaim the unflushed blocks"
    );
}

#[test]
fn aborts_drop_the_buffer_without_physical_writes() {
    let service = service_with(true);
    let (file, leaf) = deep_file(&service);
    // Creating and aborting a version each write the shared current version page
    // once (top-lock set and clear); everything in between must cost nothing.
    let v = service.create_version(&file).unwrap();
    let before = service.io_stats();
    for i in 0..20u8 {
        service.write_page(&v, &leaf, Bytes::from(vec![i])).unwrap();
    }
    let staged = service.io_stats().since(&before);
    assert_eq!(
        staged.page_writes, 0,
        "an aborted buffered update must never touch the disk: {staged:?}"
    );
    service.abort_version(&v).unwrap();
    let delta = service.io_stats().since(&before);
    assert_eq!(delta.pages_flushed_at_commit, 0);
    // The committed state is untouched.
    let current = service.current_version(&file).unwrap();
    assert_eq!(
        service.read_committed_page(&current, &leaf).unwrap(),
        Bytes::from_static(b"leaf")
    );
}

#[test]
fn concurrent_committers_share_the_cache_and_stay_correct() {
    let service = service_with(true);
    let file = service.create_file().unwrap();
    let setup = service.create_version(&file).unwrap();
    let mut paths = Vec::new();
    for i in 0..8u8 {
        paths.push(
            service
                .append_page(&setup, &PagePath::root(), Bytes::from(vec![i]))
                .unwrap(),
        );
    }
    service.commit(&setup).unwrap();
    let paths = Arc::new(paths);

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let service = Arc::clone(&service);
            let paths = Arc::clone(&paths);
            scope.spawn(move || {
                for round in 0..25usize {
                    loop {
                        let v = service.create_version(&file).unwrap();
                        let path = &paths[(t * 2 + round) % paths.len()];
                        service
                            .write_page(&v, path, Bytes::from(vec![t as u8, round as u8]))
                            .unwrap();
                        match service.commit(&v) {
                            Ok(_) => break,
                            Err(afs_core::FsError::SerialisabilityConflict) => continue,
                            Err(e) => panic!("unexpected commit failure: {e}"),
                        }
                    }
                }
            });
        }
    });

    // All committed state is readable and the cache produced hits.
    let current = service.current_version(&file).unwrap();
    for path in paths.iter() {
        service.read_committed_page(&current, path).unwrap();
    }
    assert!(service.io_stats().cache_hits > 0);
}
