//! Multi-shard workload scenarios: the experiment harness driving a
//! `ShardedStore` — hot-shard skew, a one-replica crash with resync, and a
//! whole-shard outage with recovery — all through the same `run_workload`
//! driver every unsharded scenario uses.

use std::sync::Arc;

use afs_baselines::StoreAdapter;
use afs_client::ShardedStore;
use afs_core::{FileService, FileStore};
use afs_sim::{run_workload, RunConfig};
use afs_workload::sharded_mix;

const SHARDS: usize = 3;
const REPLICAS: usize = 2;

type LocalSharded = ShardedStore<Arc<FileService>>;

fn sharded_adapter() -> (
    StoreAdapter<LocalSharded>,
    Vec<Arc<afs_core::ReplicatedBlockStore>>,
) {
    let (store, replica_sets) = ShardedStore::local_replicated(SHARDS, REPLICAS);
    (
        StoreAdapter::over(store, "amoeba-occ-sharded"),
        replica_sets,
    )
}

fn config(mix: afs_workload::MixConfig) -> RunConfig {
    RunConfig {
        clients: 4,
        transactions_per_client: 60,
        max_retries: 10_000,
        mix,
    }
}

/// Uniform multi-file traffic spreads physical I/O over every shard, and the
/// aggregate the driver reports is the sum of the per-shard figures.
#[test]
fn uniform_load_reaches_every_shard() {
    let (cc, _replicas) = sharded_adapter();
    let result = run_workload(&cc, &config(sharded_mix(12, 16, 0.0, 11)));
    assert_eq!(result.committed, 240);
    assert_eq!(result.gave_up, 0);

    let per_shard = result.io_per_shard.expect("local shards report I/O");
    assert_eq!(per_shard.len(), SHARDS);
    for (shard, io) in per_shard.iter().enumerate() {
        assert!(io.page_writes > 0, "shard {shard} saw no writes");
    }
    let total = result.io.expect("aggregate I/O reported");
    assert_eq!(
        total.page_writes,
        per_shard.iter().map(|s| s.page_writes).sum::<u64>(),
        "aggregate must be the per-shard sum, not shard 0's counters"
    );
    assert!(per_shard.iter().all(|s| s.page_writes < total.page_writes));
}

/// Zipf-skewed file choice concentrates traffic on the shard holding the
/// popular files (files are placed round-robin, so file 0 — the hottest — lands
/// on shard 0).  The deployment must absorb the skew without starving anyone.
#[test]
fn hot_shard_skew_is_visible_in_per_shard_io() {
    let (cc, _replicas) = sharded_adapter();
    let result = run_workload(&cc, &config(sharded_mix(12, 16, 0.95, 13)));
    assert_eq!(result.committed, 240);
    assert_eq!(result.gave_up, 0);

    let per_shard = result.io_per_shard.expect("local shards report I/O");
    let hottest = per_shard
        .iter()
        .map(|s| s.page_writes)
        .max()
        .expect("some shard");
    let coldest = per_shard
        .iter()
        .map(|s| s.page_writes)
        .min()
        .expect("some shard");
    assert!(
        hottest > coldest,
        "a 0.95-Zipf file skew must produce uneven shard load \
         (hottest={hottest}, coldest={coldest})"
    );
    assert!(coldest > 0, "cold shards still make progress");
}

/// Killing one replica of one shard mid-deployment loses nothing: writes
/// continue in degraded mode with intentions recorded, resync restores
/// read-one/write-all agreement, and every committed page is still readable.
#[test]
fn one_replica_crash_loses_no_committed_data() {
    let (cc, replica_sets) = sharded_adapter();

    // Phase 1: healthy traffic.
    let result = run_workload(&cc, &config(sharded_mix(9, 16, 0.0, 17)));
    assert_eq!(result.committed, 240);

    // Phase 2: replica 0 of shard 1 crashes; the workload continues in
    // degraded write-all mode on that shard.
    replica_sets[1].crash(0);
    let result = run_workload(&cc, &config(sharded_mix(9, 16, 0.0, 19)));
    assert_eq!(result.committed, 240, "degraded mode must not lose commits");
    assert_eq!(result.gave_up, 0);
    let stats = replica_sets[1].replica_stats();
    assert!(
        stats.intentions_recorded > 0,
        "the crashed replica must accumulate intentions"
    );

    // Phase 3: resync, then verify agreement and another healthy run.
    let applied = replica_sets[1].resync(0).expect("resync");
    assert!(applied as u64 >= stats.intentions_recorded);
    assert!(
        replica_sets[1].divergent_blocks().is_empty(),
        "resync must restore read-one/write-all agreement"
    );
    let result = run_workload(&cc, &config(sharded_mix(9, 16, 0.0, 23)));
    assert_eq!(result.committed, 240);
}

/// A whole-shard outage (every replica down) fails only the traffic routed to
/// that shard; the others keep serving.  After recovery the shard's committed
/// data is intact.
#[test]
fn whole_shard_crash_and_recover() {
    // Disable the server-side page cache so reads during the outage genuinely
    // hit the (crashed) block storage instead of being served from memory.
    let (store, replica_sets) = ShardedStore::local_replicated_with_config(
        SHARDS,
        REPLICAS,
        afs_core::ServiceConfig {
            flag_cache_capacity: None,
            ..afs_core::ServiceConfig::default()
        },
    );
    let store = Arc::new(store);

    // Commit one page per file, two files per shard.
    use afs_core::{FileStoreExt, PagePath};
    let mut files = Vec::new();
    for i in 0..(2 * SHARDS) as u8 {
        let file = store.create_file().unwrap();
        let page = store
            .update(&file, |tx| {
                tx.append(&PagePath::root(), afs_core::Bytes::from(vec![i; 48]))
            })
            .unwrap();
        files.push((file, page, i));
    }

    // Take shard 0 down entirely.
    replica_sets[0].crash(0);
    replica_sets[0].crash(1);

    for (file, page, i) in &files {
        let shard = afs_core::shard_of(file, SHARDS);
        let attempt = store
            .current_version(file)
            .and_then(|current| store.read_committed_page(&current, page));
        if shard == 0 {
            assert!(
                attempt.is_err(),
                "shard 0 is down; reads of its files must fail"
            );
        } else {
            assert_eq!(
                attempt.expect("other shards keep serving"),
                afs_core::Bytes::from(vec![*i; 48])
            );
        }
    }

    // Recover the whole shard: both replicas resync (no intentions were
    // recordable while *all* replicas were down — writes were refused, which is
    // why nothing can diverge).
    replica_sets[0].resync(0).expect("resync replica 0");
    replica_sets[0].resync(1).expect("resync replica 1");
    assert!(replica_sets[0].divergent_blocks().is_empty());

    for (file, page, i) in &files {
        let current = store.current_version(file).unwrap();
        assert_eq!(
            store.read_committed_page(&current, page).unwrap(),
            afs_core::Bytes::from(vec![*i; 48]),
            "committed data must survive a whole-shard outage"
        );
    }

    // And the shard takes new traffic again.
    let cc = StoreAdapter::over(Arc::clone(&store), "amoeba-occ-sharded");
    let result = run_workload(&cc, &config(sharded_mix(6, 8, 0.0, 29)));
    assert_eq!(result.committed, 240);
    assert_eq!(result.gave_up, 0);
}

/// The identical sharded workload runs over RPC: a `ShardedCluster` of server
/// groups, one `RemoteFs` per shard behind the same router.
#[test]
fn the_sharded_workload_runs_over_rpc() {
    use afs_server::ShardedCluster;
    use amoeba_rpc::LocalNetwork;

    let network = Arc::new(LocalNetwork::new());
    let cluster = ShardedCluster::launch(&network, SHARDS, REPLICAS, 2);
    let remote = ShardedStore::connect(Arc::clone(&network), cluster.shard_ports());
    let cc = StoreAdapter::over(remote, "amoeba-occ-sharded-rpc");

    let result = run_workload(&cc, &config(sharded_mix(9, 8, 0.0, 31)));
    assert_eq!(result.mechanism, "amoeba-occ-sharded-rpc");
    assert_eq!(result.committed, 240);
    assert_eq!(result.gave_up, 0);
    // Remote stores cannot see server-side I/O counters.
    assert!(result.io.is_none());
    assert!(result.io_per_shard.is_none());

    // Crash one server process per shard: clients fail over to the replica
    // process, and the run still completes.
    for shard in 0..SHARDS {
        cluster.shard(shard).group().process(0).crash();
    }
    let result = run_workload(&cc, &config(sharded_mix(9, 8, 0.0, 37)));
    assert_eq!(result.committed, 240);
    assert_eq!(result.gave_up, 0);
}
