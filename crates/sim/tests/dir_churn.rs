//! Naming-layer scenarios: the `dir_churn` workload over sharded deployments,
//! and the hot-directory rename race — concurrent renames of entries in one
//! directory must all eventually commit through OCC retry, losing nothing.

use std::sync::Arc;

use afs_client::ShardedStore;
use afs_core::{FileStore, RetryPolicy};
use afs_dir::{DirStore, EntryKind};
use afs_sim::{run_dir_churn, DirChurnRun};
use amoeba_capability::Rights;

/// Concurrent renames on ONE hot directory: every client renames its own
/// entries, so every rename can succeed — but they all contend on the same
/// directory file, so OCC conflicts are guaranteed.  All must commit via
/// retry, and no entry may be lost or duplicated.
#[test]
fn concurrent_renames_on_a_hot_directory_all_commit() {
    let (store, _replicas) = ShardedStore::local_replicated(3, 2);
    let store = Arc::new(store);
    let dirs = DirStore::new(Arc::clone(&store));
    let root = dirs.create_root().unwrap();
    let hot = dirs.mkdir(&root, "hot", Rights::ALL).unwrap();

    let threads = 4;
    let per_thread = 6;
    // Pre-populate: each client owns its own entries in the shared directory.
    for t in 0..threads {
        for i in 0..per_thread {
            let file = store.create_file().unwrap();
            dirs.link_with(
                &hot,
                &format!("t{t}-old{i}"),
                file,
                Rights::ALL,
                EntryKind::File,
                RetryPolicy::with_max_attempts(10_000),
            )
            .unwrap();
        }
    }

    // The race: every client renames all of its entries concurrently.
    let total_attempts: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let dirs = DirStore::new(Arc::clone(&store));
            handles.push(scope.spawn(move || {
                let mut attempts = 0;
                for i in 0..per_thread {
                    let outcome = dirs
                        .rename_with(
                            &hot,
                            &format!("t{t}-old{i}"),
                            &hot,
                            &format!("t{t}-new{i}"),
                            RetryPolicy::with_max_attempts(10_000),
                        )
                        .expect("every rename must eventually commit");
                    attempts += outcome.attempts;
                }
                attempts
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    // No entry lost, none duplicated, every rename visible.
    let entries = dirs.read_dir(&hot).unwrap();
    assert_eq!(
        entries.len(),
        threads * per_thread,
        "the rename race must not lose or duplicate entries"
    );
    for t in 0..threads {
        for i in 0..per_thread {
            assert!(
                dirs.lookup_any(&hot, &format!("t{t}-new{i}")).is_ok(),
                "t{t}-new{i} missing after the race"
            );
            assert!(
                dirs.lookup_any(&hot, &format!("t{t}-old{i}")).is_err(),
                "t{t}-old{i} still present after its rename committed"
            );
        }
    }
    // The contention was real: the commits needed more attempts than renames.
    assert!(
        total_attempts > threads * per_thread,
        "a hot directory must force OCC retries (got {total_attempts} attempts \
         for {} renames)",
        threads * per_thread
    );
}

/// The Zipf-skewed churn mix over a local sharded deployment: all operations
/// complete, no name is ever lost to a conflict, and the hot directories show
/// more mutation traffic (higher generation) than the cold ones.
#[test]
fn zipf_churn_concentrates_on_hot_directories_without_losing_ops() {
    let (store, _replicas) = ShardedStore::local_replicated(3, 2);
    let dirs = DirStore::new(&store);
    let root = dirs.create_root().unwrap();

    let run = DirChurnRun {
        clients: 4,
        ops_per_client: 60,
        policy: RetryPolicy::with_max_attempts(10_000),
        config: afs_workload::dir_churn(8, 0.9, 17),
    };
    let result = run_dir_churn(&store, &root, &run);
    assert_eq!(result.committed, 240, "every churn op must complete");
    assert_eq!(result.failed, 0, "client-unique names never collide");
    assert!(result.renames > 0, "the mix must exercise rename");

    // Hot directories absorbed more mutations: generation is the per-directory
    // mutation counter, so the Zipf skew must be visible in it.
    let generations: Vec<u64> = (0..8)
        .map(|i| {
            let dir = dirs
                .lookup_any(&root, &format!("d{i}"))
                .unwrap()
                .as_dir()
                .unwrap();
            dirs.generation(&dir).unwrap()
        })
        .collect();
    let hottest = *generations.iter().max().unwrap();
    let coldest = *generations.iter().min().unwrap();
    assert!(
        hottest > coldest,
        "0.9-Zipf directory skew must produce uneven churn \
         (generations: {generations:?})"
    );
}

/// The identical churn runs over RPC: a `ShardedCluster` behind a
/// `ShardedStore` of remote connections, directories spread over the shards.
#[test]
fn the_churn_runs_over_a_sharded_cluster() {
    use afs_server::ShardedCluster;
    use amoeba_rpc::LocalNetwork;

    let network = Arc::new(LocalNetwork::new());
    let cluster = ShardedCluster::launch(&network, 3, 2, 2);
    let remote = ShardedStore::connect(Arc::clone(&network), cluster.shard_ports());
    let dirs = DirStore::new(&remote);
    let root = dirs.create_root().unwrap();

    let run = DirChurnRun {
        clients: 3,
        ops_per_client: 20,
        policy: RetryPolicy::with_max_attempts(10_000),
        config: afs_workload::dir_churn(6, 0.5, 23),
    };
    let result = run_dir_churn(&remote, &root, &run);
    assert_eq!(result.committed, 60);
    assert_eq!(result.failed, 0);

    // Crash one server process per shard mid-deployment and run again (a
    // fresh seed, so the new clients' names don't collide with round one):
    // the naming layer fails over with the file layer underneath it.
    for shard in 0..cluster.shard_count() {
        cluster.shard(shard).group().process(0).crash();
    }
    let run = DirChurnRun {
        config: afs_workload::dir_churn(6, 0.5, 29),
        ..run
    };
    let result = run_dir_churn(&remote, &root, &run);
    assert_eq!(result.committed, 60);
    assert_eq!(result.failed, 0);

    // Single-replica crashes under the directories lose nothing either: every
    // directory provisioned by the runs is still listable afterwards.
    for shard in 0..cluster.shard_count() {
        cluster.shard(shard).replicas().crash(0);
    }
    for i in 0..6 {
        let dir = dirs
            .lookup_any(&root, &format!("d{i}"))
            .unwrap()
            .as_dir()
            .unwrap();
        dirs.read_dir(&dir).unwrap();
    }
}
