//! Experiment harness: multi-client drivers, metrics and the per-experiment sweeps
//! that regenerate the paper's claims (see DESIGN.md, experiments E1–E14).
//!
//! Every experiment is a plain function returning printable rows, so the same code
//! backs the `cargo bench` targets, the `exp_*` binaries in `afs-bench`, and the
//! smoke tests in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dir_driver;
pub mod driver;
pub mod experiments;
pub mod metrics;

pub use dir_driver::{provision_dirs, run_dir_churn, DirChurnResult, DirChurnRun};
pub use driver::{run_workload, RunConfig, RunResult};
pub use metrics::LatencyStats;
