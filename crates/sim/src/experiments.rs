//! The per-experiment sweeps (DESIGN.md E1–E14).
//!
//! Every function here regenerates one of the paper's claims: it builds the systems
//! involved, runs the workload, and returns printable rows.  The `afs-bench` crate
//! wraps each function in a binary (`exp_e1`, `exp_e2`, …) and EXPERIMENTS.md records
//! paper-claim vs. measured output.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use afs_baselines::{
    AmoebaAdapter, CallbackCacheServer, ConcurrencyControl, TimestampOrderingServer,
    TwoPhaseLockingServer, TxProfile,
};
use afs_core::{FileService, GarbageCollector, PagePath, Port, ServiceConfig, VersionOptions};
use afs_workload::{airline_mix, compiler_temp_mix, AccessDistribution, MixConfig};
use amoeba_block::{
    BlockServer, BlockStore, CompanionPair, FaultyStore, MemStore, StableStore, WriteOnceStore,
};

use crate::driver::{run_workload, RunConfig};

/// Prints a slice of displayable rows with a heading.
pub fn print_rows<T: std::fmt::Display>(title: &str, rows: &[T]) {
    println!("\n== {title} ==");
    for row in rows {
        println!("{row}");
    }
}

// ---------------------------------------------------------------------------
// E1: OCC vs locking vs timestamps across conflict levels (§3.1, §6).
// ---------------------------------------------------------------------------

/// One row of the E1 comparison table.
#[derive(Debug, Clone)]
pub struct MechanismRow {
    /// Mechanism name.
    pub mechanism: &'static str,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Pages written per transaction.
    pub tx_size: usize,
    /// Access skew description.
    pub skew: &'static str,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Aborts (redone updates) per committed transaction.
    pub abort_ratio: f64,
    /// Median commit latency in microseconds.
    pub p50_us: u128,
}

impl std::fmt::Display for MechanismRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<20} clients={:<3} tx_size={:<3} skew={:<8} throughput={:>9.1} tx/s  aborts/commit={:<6.3} p50={:>6} µs",
            self.mechanism, self.clients, self.tx_size, self.skew, self.throughput, self.abort_ratio, self.p50_us
        )
    }
}

/// Runs one (mechanism, clients, tx-size, skew) cell of experiment E1.
fn e1_cell(
    cc: &(impl ConcurrencyControl + 'static),
    clients: usize,
    tx_size: usize,
    skew: AccessDistribution,
    skew_name: &'static str,
    txs_per_client: usize,
    pages_per_file: usize,
) -> MechanismRow {
    let config = RunConfig {
        clients,
        transactions_per_client: txs_per_client,
        max_retries: 10_000,
        mix: MixConfig {
            files: 1,
            pages_per_file,
            reads_per_tx: tx_size,
            writes_per_tx: tx_size,
            payload: 128,
            page_skew: skew,
            ..MixConfig::default()
        },
    };
    let result = run_workload(cc, &config);
    MechanismRow {
        mechanism: result.mechanism,
        clients,
        tx_size,
        skew: skew_name,
        throughput: result.throughput(),
        abort_ratio: result.abort_ratio(),
        p50_us: result.latency.p50.as_micros(),
    }
}

/// Experiment E1: throughput and abort rate of OCC vs 2PL vs timestamp ordering as
/// concurrency, transaction size and skew vary.
pub fn e1_occ_vs_locking(
    client_counts: &[usize],
    tx_sizes: &[usize],
    txs_per_client: usize,
    pages_per_file: usize,
) -> Vec<MechanismRow> {
    let skews: [(AccessDistribution, &'static str); 2] = [
        (AccessDistribution::Uniform, "uniform"),
        (AccessDistribution::Zipf { theta: 0.9 }, "zipf0.9"),
    ];
    let mut rows = Vec::new();
    for &clients in client_counts {
        for &tx_size in tx_sizes {
            for (skew, skew_name) in skews {
                let occ = AmoebaAdapter::in_memory();
                rows.push(e1_cell(
                    &occ,
                    clients,
                    tx_size,
                    skew,
                    skew_name,
                    txs_per_client,
                    pages_per_file,
                ));
                let tpl = TwoPhaseLockingServer::in_memory();
                rows.push(e1_cell(
                    &tpl,
                    clients,
                    tx_size,
                    skew,
                    skew_name,
                    txs_per_client,
                    pages_per_file,
                ));
                let ts = TimestampOrderingServer::in_memory();
                rows.push(e1_cell(
                    &ts,
                    clients,
                    tx_size,
                    skew,
                    skew_name,
                    txs_per_client,
                    pages_per_file,
                ));
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E2: cost of the serialisability test vs overlap and file size (§5.2, §5.4).
// ---------------------------------------------------------------------------

/// One row of the E2 table.
#[derive(Debug, Clone)]
pub struct SerialiseRow {
    /// Pages in the file.
    pub file_pages: usize,
    /// Pages touched by each of the two concurrent updates.
    pub touched: usize,
    /// Pages the two updates touch in common.
    pub overlap: usize,
    /// Pages visited by the validation pass.
    pub pages_compared: usize,
    /// Whether the second commit succeeded.
    pub serialisable: bool,
}

impl std::fmt::Display for SerialiseRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "file={:<6} touched={:<4} overlap={:<4} pages_compared={:<5} serialisable={}",
            self.file_pages, self.touched, self.overlap, self.pages_compared, self.serialisable
        )
    }
}

/// Experiment E2: the validation cost tracks the *overlap* of the two updates, not
/// the size of the file.
pub fn e2_serialise_cost(
    file_sizes: &[usize],
    touched: usize,
    overlaps: &[usize],
) -> Vec<SerialiseRow> {
    let mut rows = Vec::new();
    for &pages in file_sizes {
        for &overlap in overlaps {
            let overlap = overlap.min(touched);
            let service = FileService::in_memory();
            let file = service.create_file().unwrap();
            let v0 = service.create_version(&file).unwrap();
            let mut paths = Vec::new();
            for i in 0..pages {
                paths.push(
                    service
                        .append_page(&v0, &PagePath::root(), Bytes::from(vec![(i % 251) as u8]))
                        .unwrap(),
                );
            }
            service.commit(&v0).unwrap();

            // A writes pages [0, touched); B blind-writes pages so that `overlap` of
            // them fall inside A's write set and the rest beyond it.
            let va = service.create_version(&file).unwrap();
            let vb = service.create_version(&file).unwrap();
            for path in paths.iter().take(touched) {
                service
                    .write_page(&va, path, Bytes::from_static(b"A"))
                    .unwrap();
            }
            for i in 0..touched {
                let index = if i < overlap { i } else { touched + i };
                service
                    .write_page(&vb, &paths[index.min(pages - 1)], Bytes::from_static(b"B"))
                    .unwrap();
            }
            service.commit(&va).unwrap();
            let receipt = service.commit(&vb);
            let (pages_compared, serialisable) = match receipt {
                Ok(r) => (r.pages_compared, true),
                Err(_) => (0, false),
            };
            rows.push(SerialiseRow {
                file_pages: pages,
                touched,
                overlap,
                pages_compared,
                serialisable,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E3: cache validation without unsolicited messages (§5.4).
// ---------------------------------------------------------------------------

/// One row of the E3 comparison.
#[derive(Debug, Clone)]
pub struct CacheRow {
    /// Strategy name.
    pub strategy: &'static str,
    /// Number of remote updates that happened since the cache was filled.
    pub remote_updates: usize,
    /// Server → client messages that were *not* requested by the client.
    pub unsolicited_messages: u64,
    /// Cached pages that had to be discarded.
    pub discarded_pages: usize,
    /// Cached pages that stayed valid.
    pub retained_pages: usize,
}

impl std::fmt::Display for CacheRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<18} remote_updates={:<4} unsolicited={:<4} discarded={:<4} retained={:<4}",
            self.strategy,
            self.remote_updates,
            self.unsolicited_messages,
            self.discarded_pages,
            self.retained_pages
        )
    }
}

/// Experiment E3: Amoeba's validate-on-use cache vs the XDFS-style callback cache.
pub fn e3_cache_validation(cached_pages: usize, remote_updates: usize) -> Vec<CacheRow> {
    let mut rows = Vec::new();

    // Amoeba: fill a cache, let other clients update some pages, validate once.
    {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let v0 = service.create_version(&file).unwrap();
        let mut paths = Vec::new();
        for i in 0..cached_pages {
            paths.push(
                service
                    .append_page(&v0, &PagePath::root(), Bytes::from(vec![i as u8]))
                    .unwrap(),
            );
        }
        service.commit(&v0).unwrap();
        let cached_version = service.current_version_block(&file).unwrap();
        for i in 0..remote_updates {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &paths[i % cached_pages], Bytes::from_static(b"remote"))
                .unwrap();
            service.commit(&v).unwrap();
        }
        let validation = service.validate_cache(&file, cached_version).unwrap();
        let discarded = paths.iter().filter(|p| !validation.keeps(p)).count();
        rows.push(CacheRow {
            strategy: "amoeba-validate",
            remote_updates,
            unsolicited_messages: 0,
            discarded_pages: discarded,
            retained_pages: cached_pages - discarded,
        });
    }

    // XDFS style: the same access pattern with invalidation callbacks.
    {
        let server = CallbackCacheServer::new();
        server.create_file(1, cached_pages as u32, 64);
        let client = server.connect();
        for page in 0..cached_pages as u32 {
            client.read(1, page).unwrap();
        }
        for i in 0..remote_updates {
            server.write(1, (i % cached_pages) as u32, Bytes::from_static(b"remote"));
        }
        let unsolicited = server
            .stats
            .callbacks_sent
            .load(std::sync::atomic::Ordering::Relaxed);
        // Touch one page so the client drains its mailbox and we can count what is
        // left in its cache.
        client.read(1, 0).unwrap();
        let retained = client.cached_pages();
        rows.push(CacheRow {
            strategy: "xdfs-callbacks",
            remote_updates,
            unsolicited_messages: unsolicited,
            discarded_pages: cached_pages.saturating_sub(retained),
            retained_pages: retained,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E4: crash recovery work (§3.1, §6).
// ---------------------------------------------------------------------------

/// One row of the E4 comparison.
#[derive(Debug, Clone)]
pub struct CrashRow {
    /// Mechanism name.
    pub mechanism: &'static str,
    /// Locks that had to be cleared before normal operation resumed.
    pub locks_cleared: usize,
    /// Intentions-list entries that had to be processed.
    pub intentions_processed: usize,
    /// Whether any committed data was lost or rolled back.
    pub rollback_needed: bool,
    /// Microseconds from the crash until the next update could commit.
    pub recovery_us: u128,
}

impl std::fmt::Display for CrashRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<20} locks_cleared={:<4} intentions={:<4} rollback={:<5} time_to_next_commit={:>7} µs",
            self.mechanism, self.locks_cleared, self.intentions_processed, self.rollback_needed, self.recovery_us
        )
    }
}

/// Experiment E4: a client crashes in the middle of an update; how much work stands
/// between the crash and the next successful commit?
pub fn e4_crash_recovery(pages: usize) -> Vec<CrashRow> {
    let mut rows = Vec::new();

    // Amoeba OCC: the crashed update's uncommitted version is simply abandoned.
    {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let v0 = service.create_version(&file).unwrap();
        let mut paths = Vec::new();
        for i in 0..pages {
            paths.push(
                service
                    .append_page(&v0, &PagePath::root(), Bytes::from(vec![i as u8]))
                    .unwrap(),
            );
        }
        service.commit(&v0).unwrap();
        // The doomed update writes half the pages and then the client dies.
        let doomed = service.create_version(&file).unwrap();
        for path in paths.iter().take(pages / 2) {
            service
                .write_page(&doomed, path, Bytes::from_static(b"half"))
                .unwrap();
        }
        let _ = doomed; // Crash: nobody will ever commit or abort it explicitly.

        let begin = Instant::now();
        let v = service.create_version(&file).unwrap();
        service
            .write_page(&v, &paths[0], Bytes::from_static(b"after crash"))
            .unwrap();
        service.commit(&v).unwrap();
        rows.push(CrashRow {
            mechanism: "amoeba-occ",
            locks_cleared: 0,
            intentions_processed: 0,
            rollback_needed: false,
            recovery_us: begin.elapsed().as_micros(),
        });
    }

    // Two-phase locking: locks stay held and the intentions list dangles until the
    // recovery pass runs.
    {
        let server = TwoPhaseLockingServer::in_memory();
        let file = server.create_file(pages as u32, 64);
        let mut tx = server.begin(file);
        for page in 0..(pages / 2) as u32 {
            tx.write(page, Bytes::from_static(b"half")).unwrap();
        }
        let crashed = tx.crash();

        let begin = Instant::now();
        let (locks, intentions) = server.recover_after_crash(&[crashed]);
        server
            .run_transaction(
                file,
                &TxProfile::write_only(vec![(0, Bytes::from_static(b"after crash"))]),
            )
            .unwrap();
        rows.push(CrashRow {
            mechanism: "two-phase-locking",
            locks_cleared: locks,
            intentions_processed: intentions,
            rollback_needed: true,
            recovery_us: begin.elapsed().as_micros(),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E5: commit scaling — the critical section is one test-and-set (§5.2).
// ---------------------------------------------------------------------------

/// One row of the E5 table.
#[derive(Debug, Clone)]
pub struct CommitScalingRow {
    /// Concurrent committers.
    pub clients: usize,
    /// Whether all clients hammer one file (shared) or each has its own.
    pub shared_file: bool,
    /// Commits per second.
    pub commits_per_sec: f64,
    /// Fast-path (no validation) fraction.
    pub fast_path_fraction: f64,
}

impl std::fmt::Display for CommitScalingRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "clients={:<3} shared_file={:<5} commits/s={:>10.1} fast_path={:>5.1}%",
            self.clients,
            self.shared_file,
            self.commits_per_sec,
            self.fast_path_fraction * 100.0
        )
    }
}

/// Experiment E5: commit throughput as committers are added, for disjoint files
/// (perfect scaling expected) and one shared file (validation kicks in, commits still
/// proceed).
pub fn e5_commit_scaling(
    client_counts: &[usize],
    commits_per_client: usize,
) -> Vec<CommitScalingRow> {
    let mut rows = Vec::new();
    for &clients in client_counts {
        for shared in [false, true] {
            let service = FileService::in_memory();
            let files: Vec<_> = (0..if shared { 1 } else { clients })
                .map(|_| {
                    let file = service.create_file().unwrap();
                    let v = service.create_version(&file).unwrap();
                    for i in 0..64u16 {
                        service
                            .append_page(&v, &PagePath::root(), Bytes::from(vec![i as u8]))
                            .unwrap();
                    }
                    service.commit(&v).unwrap();
                    file
                })
                .collect();
            let start = Instant::now();
            std::thread::scope(|scope| {
                for client in 0..clients {
                    let service = &service;
                    let files = &files;
                    scope.spawn(move || {
                        let file = &files[if shared { 0 } else { client }];
                        let page = PagePath::new(vec![(client % 64) as u16]);
                        for round in 0..commits_per_client {
                            loop {
                                let v = service.create_version(file).unwrap();
                                service
                                    .write_page(&v, &page, Bytes::from(vec![round as u8]))
                                    .unwrap();
                                match service.commit(&v) {
                                    Ok(_) => break,
                                    Err(afs_core::FsError::SerialisabilityConflict) => continue,
                                    Err(e) => panic!("unexpected commit failure: {e}"),
                                }
                            }
                        }
                    });
                }
            });
            let elapsed = start.elapsed();
            let stats = service.commit_stats();
            let total = stats.fast_path + stats.validated;
            rows.push(CommitScalingRow {
                clients,
                shared_file: shared,
                commits_per_sec: (clients * commits_per_client) as f64 / elapsed.as_secs_f64(),
                fast_path_fraction: if total == 0 {
                    1.0
                } else {
                    stats.fast_path as f64 / total as f64
                },
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E6: super-file updates — locking vs pure OCC (§5.3, §6).
// ---------------------------------------------------------------------------

/// One row of the E6 comparison.
#[derive(Debug, Clone)]
pub struct SuperfileRow {
    /// Strategy used for the large reorganisation.
    pub strategy: &'static str,
    /// Times the big update had to be redone.
    pub big_update_retries: usize,
    /// Small-file transactions committed while the big update ran.
    pub small_commits: u64,
    /// Microseconds the big update took from first attempt to final commit.
    pub big_update_us: u128,
}

impl std::fmt::Display for SuperfileRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<22} retries={:<4} concurrent_small_commits={:<6} big_update_time={:>8} µs",
            self.strategy, self.big_update_retries, self.small_commits, self.big_update_us
        )
    }
}

/// Experiment E6: a reorganisation touching several sub-files, run once with the
/// §5.3 locking scheme and once as a plain optimistic update, while background
/// clients keep updating the same sub-files.
pub fn e6_superfile_locking(sub_files: usize, background_ops: usize) -> Vec<SuperfileRow> {
    let mut rows = Vec::new();
    for use_locking in [true, false] {
        let service = FileService::in_memory();
        let super_file = service.create_file().unwrap();
        let mut subs = Vec::new();
        for _ in 0..sub_files {
            let sub = service.create_sub_file(&super_file).unwrap();
            let v = service.create_version(&sub).unwrap();
            service
                .write_page(&v, &PagePath::root(), Bytes::from_static(b"initial"))
                .unwrap();
            service.commit(&v).unwrap();
            subs.push(sub);
        }
        let small_commits = std::sync::atomic::AtomicU64::new(0);
        let stop = std::sync::atomic::AtomicU64::new(0);

        let (retries, big_us) = std::thread::scope(|scope| {
            // Background small-file traffic on the same sub-files.
            for (i, sub) in subs.iter().enumerate() {
                let service = &service;
                let small_commits = &small_commits;
                let stop = &stop;
                let sub = *sub;
                scope.spawn(move || {
                    for round in 0..background_ops {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) != 0 {
                            break;
                        }
                        let v = match service.create_version(&sub) {
                            Ok(v) => v,
                            Err(_) => continue,
                        };
                        if service
                            .write_page(
                                &v,
                                &PagePath::root(),
                                Bytes::from(vec![i as u8, round as u8]),
                            )
                            .is_err()
                        {
                            continue;
                        }
                        if service.commit(&v).is_ok() {
                            small_commits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }

            // The big reorganisation.
            let begin = Instant::now();
            let mut retries = 0usize;
            if use_locking {
                let port = Port::from_raw(0xb1);
                let mut update = service.begin_super_update(&super_file, port, true).unwrap();
                let mut sub_versions = Vec::new();
                for sub in &subs {
                    sub_versions.push(service.super_update_edit(&mut update, sub).unwrap());
                }
                for v in &sub_versions {
                    service
                        .write_page(v, &PagePath::root(), Bytes::from_static(b"reorganised"))
                        .unwrap();
                }
                service.commit_super_update(update).unwrap();
            } else {
                // Pure OCC: retry the whole multi-file update until every sub-file
                // commit succeeds in the same attempt.
                'attempt: loop {
                    let mut versions = Vec::new();
                    for sub in &subs {
                        let v = service.create_version(sub).unwrap();
                        service
                            .write_page(&v, &PagePath::root(), Bytes::from_static(b"reorganised"))
                            .unwrap();
                        versions.push(v);
                    }
                    for v in &versions {
                        if service.commit(v).is_err() {
                            retries += 1;
                            continue 'attempt;
                        }
                    }
                    break;
                }
            }
            let big_us = begin.elapsed().as_micros();
            stop.store(1, std::sync::atomic::Ordering::Relaxed);
            (retries, big_us)
        });

        rows.push(SuperfileRow {
            strategy: if use_locking {
                "top/inner locking"
            } else {
                "pure optimistic"
            },
            big_update_retries: retries,
            small_commits: small_commits.load(std::sync::atomic::Ordering::Relaxed),
            big_update_us: big_us,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E7: dual-server stable storage (§4).
// ---------------------------------------------------------------------------

/// One row of the E7 table.
#[derive(Debug, Clone)]
pub struct StableRow {
    /// Storage scheme.
    pub scheme: &'static str,
    /// Blocks written.
    pub writes: usize,
    /// Physical block writes performed (replication factor shows up here).
    pub physical_writes: u64,
    /// Reads served after one replica failed.
    pub reads_after_failure: usize,
    /// Whether all data survived the failure.
    pub survived_failure: bool,
}

impl std::fmt::Display for StableRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<24} writes={:<5} physical_writes={:<6} reads_after_failure={:<5} survived={}",
            self.scheme,
            self.writes,
            self.physical_writes,
            self.reads_after_failure,
            self.survived_failure
        )
    }
}

/// Experiment E7: single disk vs Lampson–Sturgis vs the paper's two-server scheme.
pub fn e7_stable_storage(block_count: usize) -> Vec<StableRow> {
    let payload = |i: usize| Bytes::from(vec![(i % 251) as u8; 128]);
    let mut rows = Vec::new();

    // Single disk: fast, but a crash loses access to everything.
    {
        let disk = FaultyStore::new(MemStore::new());
        let mut blocks = Vec::new();
        for i in 0..block_count {
            let nr = disk.allocate().unwrap();
            disk.write(nr, payload(i)).unwrap();
            blocks.push(nr);
        }
        let physical = disk.stats().writes;
        disk.crash();
        let readable = blocks.iter().filter(|&&nr| disk.read(nr).is_ok()).count();
        rows.push(StableRow {
            scheme: "single disk",
            writes: block_count,
            physical_writes: physical,
            reads_after_failure: readable,
            survived_failure: readable == block_count,
        });
    }

    // Lampson–Sturgis: one server, two disks.
    {
        let stable = StableStore::new(
            FaultyStore::new(MemStore::new()),
            FaultyStore::new(MemStore::new()),
        );
        let mut blocks = Vec::new();
        for i in 0..block_count {
            let nr = stable.allocate().unwrap();
            stable.write(nr, payload(i)).unwrap();
            blocks.push(nr);
        }
        let physical = stable.disk(0).stats().writes + stable.disk(1).stats().writes;
        stable.disk(0).crash();
        let readable = blocks.iter().filter(|&&nr| stable.read(nr).is_ok()).count();
        rows.push(StableRow {
            scheme: "lampson-sturgis 1s/2d",
            writes: block_count,
            physical_writes: physical,
            reads_after_failure: readable,
            survived_failure: readable == block_count,
        });
    }

    // The paper's scheme: two servers, two disks, with fail-over.
    {
        let disk_a: Arc<FaultyStore<MemStore>> = Arc::new(FaultyStore::new(MemStore::new()));
        let disk_b: Arc<FaultyStore<MemStore>> = Arc::new(FaultyStore::new(MemStore::new()));
        let pair = CompanionPair::new(disk_a.clone(), disk_b.clone());
        let handle = pair.handle(0);
        let mut blocks = Vec::new();
        for i in 0..block_count {
            blocks.push(handle.allocate_and_write(payload(i)).unwrap());
        }
        let physical = disk_a.stats().writes + disk_b.stats().writes;
        pair.crash(0);
        let readable = blocks.iter().filter(|&&nr| handle.read(nr).is_ok()).count();
        rows.push(StableRow {
            scheme: "companion pair 2s/2d",
            writes: block_count,
            physical_writes: physical,
            reads_after_failure: readable,
            survived_failure: readable == block_count,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E8: copy-on-write overhead vs tree shape (§5.1).
// ---------------------------------------------------------------------------

/// One row of the E8 table.
#[derive(Debug, Clone)]
pub struct CowRow {
    /// Depth of the page tree below the root.
    pub depth: usize,
    /// Fan-out at each level.
    pub fanout: usize,
    /// Pages in the file.
    pub total_pages: usize,
    /// Blocks newly allocated by a single leaf update (the bubble-up cost).
    pub blocks_per_leaf_update: u64,
    /// Blocks reclaimed by the garbage collector afterwards.
    pub gc_reclaimed: usize,
}

impl std::fmt::Display for CowRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "depth={:<2} fanout={:<3} pages={:<6} blocks/leaf-update={:<4} gc_reclaimed={:<4}",
            self.depth,
            self.fanout,
            self.total_pages,
            self.blocks_per_leaf_update,
            self.gc_reclaimed
        )
    }
}

/// Experiment E8: the number of new blocks per update equals the depth of the updated
/// leaf (plus the version page), independent of file width.
pub fn e8_cow_overhead(shapes: &[(usize, usize)]) -> Vec<CowRow> {
    let mut rows = Vec::new();
    for &(depth, fanout) in shapes {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        // Build a uniform tree of the requested shape.
        let mut frontier = vec![PagePath::root()];
        let mut total_pages = 0usize;
        for _level in 0..depth {
            let mut next = Vec::new();
            for parent in &frontier {
                for _ in 0..fanout {
                    let child = service
                        .append_page(&v, parent, Bytes::from_static(b"node"))
                        .unwrap();
                    total_pages += 1;
                    next.push(child);
                }
            }
            frontier = next;
        }
        service.commit(&v).unwrap();

        // One deep-leaf update.
        let leaf = frontier.first().cloned().unwrap_or_else(PagePath::root);
        let v = service.create_version(&file).unwrap();
        let before = service.io_stats();
        service
            .write_page(&v, &leaf, Bytes::from_static(b"updated leaf"))
            .unwrap();
        let allocated = service.io_stats().since(&before).pages_allocated;
        service.commit(&v).unwrap();

        // Let a follow-up update supersede it and run the collector.
        let v2 = service.create_version(&file).unwrap();
        service
            .write_page(&v2, &leaf, Bytes::from_static(b"again"))
            .unwrap();
        service.commit(&v2).unwrap();
        let report = service.gc_file(&file).unwrap();

        rows.push(CowRow {
            depth,
            fanout,
            total_pages,
            blocks_per_leaf_update: allocated,
            gc_reclaimed: report.freed_blocks,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E9: one-page files pay no concurrency-control cost (§2, §6).
// ---------------------------------------------------------------------------

/// One row of the E9 table.
#[derive(Debug, Clone)]
pub struct OnePageRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Mechanism.
    pub mechanism: &'static str,
    /// Mean time per complete update (create version / transaction, write, commit).
    pub mean_us: u128,
    /// Aborts per committed transaction.
    pub abort_ratio: f64,
}

impl std::fmt::Display for OnePageRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<16} {:<20} mean={:>7} µs  aborts/commit={:.3}",
            self.scenario, self.mechanism, self.mean_us, self.abort_ratio
        )
    }
}

/// Experiment E9: the compiler-temporary workload (unshared one-page files) vs the
/// shared airline workload, on Amoeba and on the 2PL baseline.
pub fn e9_one_page_files(files: usize, ops: usize) -> Vec<OnePageRow> {
    let mut rows = Vec::new();
    let scenarios: [(&'static str, MixConfig); 2] = [
        ("compiler-temp", compiler_temp_mix(files, 11)),
        ("airline-shared", airline_mix(64, 12)),
    ];
    for (name, mix) in scenarios {
        let config = RunConfig {
            clients: 4,
            transactions_per_client: ops,
            max_retries: 10_000,
            mix,
        };
        let occ = AmoebaAdapter::in_memory();
        let result = run_workload(&occ, &config);
        rows.push(OnePageRow {
            scenario: name,
            mechanism: result.mechanism,
            mean_us: result.latency.mean.as_micros(),
            abort_ratio: result.abort_ratio(),
        });
        let tpl = TwoPhaseLockingServer::in_memory();
        let result = run_workload(&tpl, &config);
        rows.push(OnePageRow {
            scenario: name,
            mechanism: result.mechanism,
            mean_us: result.latency.mean.as_micros(),
            abort_ratio: result.abort_ratio(),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E10: the garbage collector runs in parallel (abstract).
// ---------------------------------------------------------------------------

/// One row of the E10 table.
#[derive(Debug, Clone)]
pub struct GcRow {
    /// Whether the background collector was running.
    pub gc_running: bool,
    /// Foreground throughput in commits per second.
    pub throughput: f64,
    /// Blocks allocated at the end of the run (storage footprint).
    pub final_blocks: usize,
    /// Blocks the collector reclaimed.
    pub reclaimed: usize,
}

impl std::fmt::Display for GcRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gc_running={:<5} throughput={:>9.1} tx/s final_blocks={:<6} reclaimed={:<6}",
            self.gc_running, self.throughput, self.final_blocks, self.reclaimed
        )
    }
}

/// Experiment E10: foreground throughput and storage footprint with and without the
/// concurrent garbage collector.
pub fn e10_gc_interference(clients: usize, ops_per_client: usize) -> Vec<GcRow> {
    let mut rows = Vec::new();
    for gc_running in [false, true] {
        let service = FileService::in_memory();
        let adapter = AmoebaAdapter::new(Arc::clone(&service));
        let collector = gc_running
            .then(|| GarbageCollector::start(Arc::clone(&service), Duration::from_millis(1)));
        let config = RunConfig {
            clients,
            transactions_per_client: ops_per_client,
            max_retries: 10_000,
            mix: MixConfig {
                files: 2,
                pages_per_file: 32,
                reads_per_tx: 2,
                writes_per_tx: 2,
                payload: 64,
                ..MixConfig::default()
            },
        };
        let result = run_workload(&adapter, &config);
        let reclaimed = match collector {
            Some(c) => {
                let report = c.stop();
                report.freed_blocks
            }
            None => 0,
        };
        rows.push(GcRow {
            gc_running,
            throughput: result.throughput(),
            final_blocks: service.block_server().store().allocated_count(),
            reclaimed,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E11 + E12: soft locks and starvation of large updates (§5.3, §6).
// ---------------------------------------------------------------------------

/// One row of the E11/E12 table.
#[derive(Debug, Clone)]
pub struct StarvationRow {
    /// Strategy used by the large update.
    pub strategy: &'static str,
    /// Number of small hot-spot writers running concurrently.
    pub writers: usize,
    /// Retries the large update needed before committing (usize::MAX = starved).
    pub large_update_retries: usize,
    /// Whether the large update eventually committed.
    pub committed: bool,
}

impl std::fmt::Display for StarvationRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<22} writers={:<3} retries={:<6} committed={}",
            self.strategy, self.writers, self.large_update_retries, self.committed
        )
    }
}

/// Experiments E11/E12: a large update on a hot file either retries optimistically
/// (and may starve) or takes the soft-lock path (waits for the file to go idle, then
/// excludes the small writers via the top lock honoured by everyone).
pub fn e11_starvation(writers: usize, writer_ops: usize, max_retries: usize) -> Vec<StarvationRow> {
    let mut rows = Vec::new();
    for strategy in ["pure optimistic", "soft lock"] {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        let mut paths = Vec::new();
        for i in 0..32u16 {
            paths.push(
                service
                    .append_page(&v, &PagePath::root(), Bytes::from(vec![i as u8]))
                    .unwrap(),
            );
        }
        service.commit(&v).unwrap();

        let stop = std::sync::atomic::AtomicBool::new(false);
        let (retries, committed) = std::thread::scope(|scope| {
            for w in 0..writers {
                let service = &service;
                let file = &file;
                let stop = &stop;
                let hot = paths[0].clone();
                scope.spawn(move || {
                    for round in 0..writer_ops {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                        // Small writers honour the soft-lock hint: they do not start
                        // an update while a large update holds the top lock.
                        let opts = VersionOptions {
                            respect_top_lock: true,
                            wait_for_locks: true,
                            lock_port: Some(Port::from_raw(0x1000 + w as u64)),
                        };
                        let Ok(v) = service.create_version_with(file, opts) else {
                            continue;
                        };
                        let _ =
                            service.write_page(&v, &hot, Bytes::from(vec![w as u8, round as u8]));
                        let _ = service.commit(&v);
                    }
                });
            }

            // The large update reads and rewrites every page, including the hot one.
            let large_port = Port::from_raw(0x9999);
            let mut retries = 0usize;
            let mut committed = false;
            while retries <= max_retries {
                let opts = VersionOptions {
                    respect_top_lock: strategy == "soft lock",
                    wait_for_locks: true,
                    lock_port: Some(large_port),
                };
                let Ok(v) = service.create_version_with(&file, opts) else {
                    retries += 1;
                    continue;
                };
                let mut ok = true;
                for path in &paths {
                    if service.read_page(&v, path).is_err()
                        || service
                            .write_page(&v, path, Bytes::from_static(b"bulk rewrite"))
                            .is_err()
                    {
                        ok = false;
                        break;
                    }
                }
                if ok && service.commit(&v).is_ok() {
                    committed = true;
                    break;
                }
                let _ = service.abort_version(&v);
                retries += 1;
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            (retries, committed)
        });

        rows.push(StarvationRow {
            strategy,
            writers,
            large_update_retries: retries,
            committed,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E13: caching the flag bits (§5.4).
// ---------------------------------------------------------------------------

/// One row of the E13 table.
#[derive(Debug, Clone)]
pub struct FlagCacheRow {
    /// Whether the server-side page/flag cache was enabled.
    pub cache_enabled: bool,
    /// Physical page reads during the validation-heavy run.
    pub physical_reads: u64,
    /// Cache hits during the run.
    pub cache_hits: u64,
}

impl std::fmt::Display for FlagCacheRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flag_cache={:<5} physical_page_reads={:<7} cache_hits={:<7}",
            self.cache_enabled, self.physical_reads, self.cache_hits
        )
    }
}

/// Experiment E13: repeated conflicting commits with and without the server-side
/// flag/page cache.
pub fn e13_flag_cache(rounds: usize) -> Vec<FlagCacheRow> {
    let mut rows = Vec::new();
    for cache_enabled in [true, false] {
        let config = ServiceConfig {
            flag_cache_capacity: cache_enabled.then_some(4096),
            ..ServiceConfig::default()
        };
        let block_server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
        let service = FileService::with_config(block_server, config);
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        let mut paths = Vec::new();
        for i in 0..32u16 {
            paths.push(
                service
                    .append_page(&v, &PagePath::root(), Bytes::from(vec![i as u8]))
                    .unwrap(),
            );
        }
        service.commit(&v).unwrap();

        let before = service.io_stats();
        for round in 0..rounds {
            // Two concurrent disjoint updates: the second always validates.
            let va = service.create_version(&file).unwrap();
            let vb = service.create_version(&file).unwrap();
            service
                .write_page(&va, &paths[round % 16], Bytes::from(vec![round as u8]))
                .unwrap();
            service
                .write_page(&vb, &paths[16 + round % 16], Bytes::from(vec![round as u8]))
                .unwrap();
            service.commit(&va).unwrap();
            service.commit(&vb).unwrap();
        }
        let delta = service.io_stats().since(&before);
        rows.push(FlagCacheRow {
            cache_enabled,
            physical_reads: delta.page_reads,
            cache_hits: delta.cache_hits,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E14: write-once (optical) media (§6).
// ---------------------------------------------------------------------------

/// One row of the E14 table.
#[derive(Debug, Clone)]
pub struct WriteOnceRow {
    /// Backend description.
    pub backend: &'static str,
    /// Updates applied.
    pub updates: usize,
    /// Blocks occupied at the end.
    pub blocks_used: usize,
    /// Writes rejected because a block had already been written (must stay 0 for the
    /// version store to be write-once friendly; the root version pages are kept on
    /// rewritable media in the paper and in this setup).
    pub rejected_overwrites: usize,
    /// Whether the final contents read back correctly.
    pub contents_correct: bool,
}

impl std::fmt::Display for WriteOnceRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<22} updates={:<4} blocks_used={:<6} rejected_overwrites={:<3} correct={}",
            self.backend,
            self.updates,
            self.blocks_used,
            self.rejected_overwrites,
            self.contents_correct
        )
    }
}

/// Experiment E14: the interior pages of the version store never require overwriting,
/// so the design works on write-once media; compare space use against a rewritable
/// backend.  (Version pages are updated in place — commit references, locks — and in
/// the paper live on magnetic media; here the whole store is write-once-wrapped, so
/// the rejected-overwrite count isolates exactly those version-page updates.)
pub fn e14_write_once(updates: usize) -> Vec<WriteOnceRow> {
    let mut rows = Vec::new();

    // Rewritable backend for reference.
    {
        let service = FileService::in_memory();
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        let p = service
            .append_page(&v, &PagePath::root(), Bytes::from_static(b"v0"))
            .unwrap();
        service.commit(&v).unwrap();
        for i in 0..updates {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &p, Bytes::from(vec![i as u8; 64]))
                .unwrap();
            service.commit(&v).unwrap();
        }
        let current = service.current_version(&file).unwrap();
        let correct =
            service.read_committed_page(&current, &p).unwrap() == vec![(updates - 1) as u8; 64];
        rows.push(WriteOnceRow {
            backend: "rewritable (memory)",
            updates,
            blocks_used: service.block_server().store().allocated_count(),
            rejected_overwrites: 0,
            contents_correct: correct,
        });
    }

    // Hybrid store modelling the paper's setup: the bulk of the page tree lives on a
    // write-once (optical) store; the few in-place rewrites — version pages getting
    // their commit reference or lock fields updated — are absorbed by a small
    // rewritable "magnetic" overlay and counted.
    {
        let optical = Arc::new(HybridOpticalStore::new());
        let block_server = Arc::new(BlockServer::new(optical.clone() as Arc<dyn BlockStore>));
        let service = FileService::with_config(block_server, ServiceConfig::default());
        let file = service.create_file().unwrap();
        let v = service.create_version(&file).unwrap();
        let p = service
            .append_page(&v, &PagePath::root(), Bytes::from_static(b"v0"))
            .unwrap();
        service.commit(&v).unwrap();
        for i in 0..updates {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &p, Bytes::from(vec![i as u8; 64]))
                .unwrap();
            service.commit(&v).unwrap();
        }
        let current = service.current_version(&file).unwrap();
        let correct =
            service.read_committed_page(&current, &p).unwrap() == vec![(updates - 1) as u8; 64];
        rows.push(WriteOnceRow {
            backend: "write-once + overlay",
            updates,
            blocks_used: optical.optical_blocks(),
            rejected_overwrites: optical.magnetic_blocks(),
            contents_correct: correct,
        });
    }
    rows
}

/// A block store that writes every block to write-once (optical) media and diverts
/// blocks that are rewritten in place — in practice only version pages — to a small
/// rewritable "magnetic" overlay, counting how many blocks needed it.
struct HybridOpticalStore {
    optical: WriteOnceStore<MemStore>,
    magnetic: parking_lot::Mutex<std::collections::HashMap<amoeba_block::BlockNr, Bytes>>,
}

impl HybridOpticalStore {
    fn new() -> Self {
        HybridOpticalStore {
            optical: WriteOnceStore::new(MemStore::new()),
            magnetic: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Blocks whose (immutable) contents live on the optical medium.
    fn optical_blocks(&self) -> usize {
        self.optical.written_blocks()
    }

    /// Blocks that needed in-place rewriting and therefore magnetic media.
    fn magnetic_blocks(&self) -> usize {
        self.magnetic.lock().len()
    }
}

impl BlockStore for HybridOpticalStore {
    fn block_size(&self) -> usize {
        self.optical.block_size()
    }
    fn allocate(&self) -> amoeba_block::Result<amoeba_block::BlockNr> {
        self.optical.allocate()
    }
    fn allocate_at(&self, nr: amoeba_block::BlockNr) -> amoeba_block::Result<()> {
        self.optical.allocate_at(nr)
    }
    fn free(&self, nr: amoeba_block::BlockNr) -> amoeba_block::Result<()> {
        self.magnetic.lock().remove(&nr);
        self.optical.free(nr)
    }
    fn read(&self, nr: amoeba_block::BlockNr) -> amoeba_block::Result<Bytes> {
        if let Some(data) = self.magnetic.lock().get(&nr) {
            return Ok(data.clone());
        }
        self.optical.read(nr)
    }
    fn write(&self, nr: amoeba_block::BlockNr, data: Bytes) -> amoeba_block::Result<()> {
        match self.optical.write(nr, data.clone()) {
            Ok(()) => Ok(()),
            Err(amoeba_block::BlockError::WriteOnce(_)) => {
                // The block was already burned once: it needs rewritable media.
                if !self.optical.is_allocated(nr) {
                    return Err(amoeba_block::BlockError::NoSuchBlock(nr));
                }
                self.magnetic.lock().insert(nr, data);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
    fn is_allocated(&self, nr: amoeba_block::BlockNr) -> bool {
        self.optical.is_allocated(nr)
    }
    fn allocated_count(&self) -> usize {
        self.optical.allocated_count()
    }
    fn stats(&self) -> amoeba_block::StoreStats {
        self.optical.stats()
    }
    fn allocated_blocks(&self) -> Vec<amoeba_block::BlockNr> {
        self.optical.allocated_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_produces_rows_for_every_mechanism() {
        let rows = e1_occ_vs_locking(&[2], &[1], 5, 32);
        assert_eq!(rows.len(), 6); // 1 client count × 1 size × 2 skews × 3 mechanisms
        assert!(rows.iter().any(|r| r.mechanism == "amoeba-occ"));
        assert!(rows.iter().any(|r| r.mechanism == "two-phase-locking"));
        assert!(rows.iter().any(|r| r.mechanism == "timestamp-ordering"));
        for row in &rows {
            assert!(row.throughput > 0.0);
        }
    }

    #[test]
    fn e2_cost_tracks_overlap_not_file_size() {
        let rows = e2_serialise_cost(&[64, 512], 8, &[0, 8]);
        // Zero overlap: few pages compared and serialisable.
        for row in rows.iter().filter(|r| r.overlap == 0) {
            assert!(row.serialisable);
        }
        // Full overlap blind writes are still serialisable but compare more pages.
        let small_zero = rows
            .iter()
            .find(|r| r.file_pages == 64 && r.overlap == 0)
            .unwrap();
        let large_zero = rows
            .iter()
            .find(|r| r.file_pages == 512 && r.overlap == 0)
            .unwrap();
        assert!(
            small_zero
                .pages_compared
                .abs_diff(large_zero.pages_compared)
                <= 2,
            "validation cost should not grow with file size: {small_zero:?} vs {large_zero:?}"
        );
    }

    #[test]
    fn e3_amoeba_needs_no_unsolicited_messages() {
        let rows = e3_cache_validation(8, 4);
        let amoeba = rows
            .iter()
            .find(|r| r.strategy == "amoeba-validate")
            .unwrap();
        let xdfs = rows
            .iter()
            .find(|r| r.strategy == "xdfs-callbacks")
            .unwrap();
        assert_eq!(amoeba.unsolicited_messages, 0);
        assert!(xdfs.unsolicited_messages > 0);
        assert!(amoeba.retained_pages >= 4);
    }

    #[test]
    fn e4_amoeba_recovery_needs_no_lock_clearing() {
        let rows = e4_crash_recovery(8);
        let amoeba = rows.iter().find(|r| r.mechanism == "amoeba-occ").unwrap();
        let tpl = rows
            .iter()
            .find(|r| r.mechanism == "two-phase-locking")
            .unwrap();
        assert_eq!(amoeba.locks_cleared, 0);
        assert!(!amoeba.rollback_needed);
        assert!(tpl.locks_cleared > 0);
    }

    #[test]
    fn e5_disjoint_commits_are_all_fast_path() {
        let rows = e5_commit_scaling(&[2], 10);
        let disjoint = rows.iter().find(|r| !r.shared_file).unwrap();
        assert!(disjoint.fast_path_fraction > 0.99);
    }

    #[test]
    fn e6_locking_avoids_redoing_the_big_update() {
        let rows = e6_superfile_locking(3, 10);
        let locked = rows
            .iter()
            .find(|r| r.strategy == "top/inner locking")
            .unwrap();
        assert_eq!(locked.big_update_retries, 0);
    }

    #[test]
    fn e7_replicated_schemes_survive_a_disk_failure() {
        let rows = e7_stable_storage(16);
        assert!(
            !rows
                .iter()
                .find(|r| r.scheme == "single disk")
                .unwrap()
                .survived_failure
        );
        assert!(
            rows.iter()
                .find(|r| r.scheme == "lampson-sturgis 1s/2d")
                .unwrap()
                .survived_failure
        );
        assert!(
            rows.iter()
                .find(|r| r.scheme == "companion pair 2s/2d")
                .unwrap()
                .survived_failure
        );
    }

    #[test]
    fn e8_cow_cost_scales_with_depth_not_width() {
        let rows = e8_cow_overhead(&[(1, 4), (2, 4)]);
        let shallow = &rows[0];
        let deep = &rows[1];
        assert!(deep.blocks_per_leaf_update > shallow.blocks_per_leaf_update);
    }

    #[test]
    fn e13_cache_eliminates_most_physical_reads() {
        let rows = e13_flag_cache(10);
        let with = rows.iter().find(|r| r.cache_enabled).unwrap();
        let without = rows.iter().find(|r| !r.cache_enabled).unwrap();
        assert!(with.physical_reads < without.physical_reads);
        assert!(with.cache_hits > 0);
    }

    #[test]
    fn e14_write_once_backend_accumulates_blocks() {
        let rows = e14_write_once(5);
        let optical = rows
            .iter()
            .find(|r| r.backend == "write-once + overlay")
            .unwrap();
        assert!(optical.blocks_used > 0);
        assert!(optical.contents_correct);
        // Only version pages (a handful of blocks) ever needed rewritable media.
        assert!(optical.rejected_overwrites < optical.blocks_used);
    }
}
