//! Measurement helpers.

use std::time::Duration;

/// Latency summary over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median (50th percentile).
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum observed latency.
    pub max: Duration,
}

impl LatencyStats {
    /// Computes a summary from raw samples.  Returns zeroes for an empty input.
    pub fn from_samples(mut samples: Vec<Duration>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats {
                count: 0,
                mean: Duration::ZERO,
                p50: Duration::ZERO,
                p99: Duration::ZERO,
                max: Duration::ZERO,
            };
        }
        samples.sort_unstable();
        let count = samples.len();
        let total: Duration = samples.iter().sum();
        let percentile = |p: f64| {
            let idx = ((count as f64 - 1.0) * p) as usize;
            samples[idx.min(count - 1)]
        };
        LatencyStats {
            count,
            mean: total / count as u32,
            p50: percentile(0.50),
            p99: percentile(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_yield_zeroes() {
        let stats = LatencyStats::from_samples(Vec::new());
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean, Duration::ZERO);
    }

    #[test]
    fn percentiles_are_ordered() {
        let samples = (1..=100).map(Duration::from_millis).collect();
        let stats = LatencyStats::from_samples(samples);
        assert_eq!(stats.count, 100);
        assert!(stats.p50 <= stats.p99);
        assert!(stats.p99 <= stats.max);
        assert_eq!(stats.max, Duration::from_millis(100));
        assert_eq!(stats.p50, Duration::from_millis(50));
    }
}
