//! The multi-client driver of the `dir_churn` naming workload.
//!
//! Mirrors [`crate::driver::run_workload`] one layer up: each client thread
//! draws [`DirChurnOp`]s from its own deterministic generator and applies them
//! through an [`afs_dir::DirStore`] over any [`FileStore`] — so the identical
//! churn stream drives a local service, a sharded router, or a remote
//! connection.  Mutations run as OCC transactions against the hot directory's
//! backing file; the driver counts the retries the conflicts cost, which is
//! the naming layer's analogue of the abort ratio.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use afs_core::{FileStore, RetryPolicy};
use afs_dir::{DirCap, DirError, DirStore, EntryKind};
use afs_workload::{DirChurnConfig, DirChurnGenerator, DirChurnOp};
use amoeba_capability::Rights;

/// How a `dir_churn` run is shaped.
#[derive(Debug, Clone)]
pub struct DirChurnRun {
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Operations each client performs.
    pub ops_per_client: usize,
    /// Retry budget per directory commit.
    pub policy: RetryPolicy,
    /// The operation mix (each client derives its own seed from it).
    pub config: DirChurnConfig,
}

impl Default for DirChurnRun {
    fn default() -> Self {
        DirChurnRun {
            clients: 4,
            ops_per_client: 50,
            policy: RetryPolicy::with_max_attempts(10_000),
            config: afs_workload::dir_churn(8, 0.9, 42),
        }
    }
}

/// Aggregate outcome of a `dir_churn` run.
#[derive(Debug, Clone)]
pub struct DirChurnResult {
    /// Operations that completed successfully.
    pub committed: u64,
    /// Extra OCC attempts spent on directory conflicts (0 = no contention).
    pub retries: u64,
    /// Operations that failed at the directory layer (name collisions etc.;
    /// zero under the generator's client-unique naming discipline).
    pub failed: u64,
    /// Mutating operations among the committed ones.
    pub mutations: u64,
    /// Renames among the committed ones.
    pub renames: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl DirChurnResult {
    /// Committed naming operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed as f64 / self.elapsed.as_secs_f64()
    }

    /// Extra attempts per committed operation — the OCC redo rate of the
    /// naming layer.
    pub fn retry_rate(&self) -> f64 {
        if self.committed == 0 {
            return self.retries as f64;
        }
        self.retries as f64 / self.committed as f64
    }
}

/// Creates the run's working set — `config.dirs` directories under `root`,
/// named `d0`, `d1`, … — and returns their capabilities in index order.
/// Existing directories of the same names are reused, so several runs can
/// share one hierarchy.
pub fn provision_dirs<S: FileStore>(
    dirs: &DirStore<S>,
    root: &DirCap,
    config: &DirChurnConfig,
) -> Result<Vec<DirCap>, DirError> {
    let mut caps = Vec::with_capacity(config.dirs);
    for i in 0..config.dirs {
        let name = format!("d{i}");
        let cap = match dirs.mkdir(root, &name, Rights::ALL) {
            Ok(cap) => cap,
            Err(DirError::AlreadyExists(_)) => dirs
                .lookup_any(root, &name)?
                .as_dir()
                .ok_or(DirError::NotADirectory(name))?,
            Err(e) => return Err(e),
        };
        caps.push(cap);
    }
    Ok(caps)
}

/// Runs the configured churn against `store` and collects the outcome.
///
/// Every client gets its own generator seeded from the mix seed, so names
/// never collide across clients and every operation can succeed; directories
/// *do* collide (that is the point), and the retries column reports what the
/// OCC discipline paid for it.
pub fn run_dir_churn<S: FileStore>(store: &S, root: &DirCap, run: &DirChurnRun) -> DirChurnResult {
    let dirs = DirStore::new(store);
    let dir_caps = provision_dirs(&dirs, root, &run.config).expect("provision dir_churn dirs");

    let committed = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let mutations = AtomicU64::new(0);
    let renames = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for client in 0..run.clients {
            let dir_caps = &dir_caps;
            let committed = &committed;
            let retries = &retries;
            let failed = &failed;
            let mutations = &mutations;
            let renames = &renames;
            let config = DirChurnConfig {
                seed: run.config.seed.wrapping_add(client as u64 * 7919),
                ..run.config.clone()
            };
            let policy = run.policy;
            let ops = run.ops_per_client;
            let dirs = DirStore::new(store);
            scope.spawn(move || {
                let mut generator = DirChurnGenerator::new(config);
                for _ in 0..ops {
                    let op = generator.next_op();
                    let is_mutation = op.is_mutation();
                    let is_rename = matches!(op, DirChurnOp::Rename { .. });
                    let outcome: Result<usize, DirError> = match op {
                        DirChurnOp::MkDir { dir, name } => dirs
                            .mkdir_with(&dir_caps[dir], &name, Rights::ALL, policy)
                            .map(|o| o.attempts),
                        DirChurnOp::Create { dir, name } => match dirs.store().create_file() {
                            Ok(cap) => dirs
                                .link_with(
                                    &dir_caps[dir],
                                    &name,
                                    cap,
                                    Rights::ALL,
                                    EntryKind::File,
                                    policy,
                                )
                                .map(|o| o.attempts),
                            Err(e) => Err(DirError::Fs(e)),
                        },
                        DirChurnOp::Lookup { dir, name } => {
                            dirs.lookup_any(&dir_caps[dir], &name).map(|_| 1)
                        }
                        DirChurnOp::ReadDir { dir } => dirs.read_dir(&dir_caps[dir]).map(|_| 1),
                        DirChurnOp::Rename { dir, from, to } => dirs
                            .rename_with(&dir_caps[dir], &from, &dir_caps[dir], &to, policy)
                            .map(|o| o.attempts),
                    };
                    match outcome {
                        Ok(attempts) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                            retries.fetch_add(attempts.saturating_sub(1) as u64, Ordering::Relaxed);
                            if is_mutation {
                                mutations.fetch_add(1, Ordering::Relaxed);
                            }
                            if is_rename {
                                renames.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(DirError::Fs(e)) => panic!("file service fault during dir_churn: {e}"),
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    DirChurnResult {
        committed: committed.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        mutations: mutations.load(Ordering::Relaxed),
        renames: renames.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_core::FileService;

    #[test]
    fn the_churn_runs_to_completion_over_a_local_service() {
        let service = FileService::in_memory();
        let dirs = DirStore::new(&*service);
        let root = dirs.create_root().unwrap();
        let run = DirChurnRun {
            clients: 3,
            ops_per_client: 20,
            ..DirChurnRun::default()
        };
        let result = run_dir_churn(&*service, &root, &run);
        assert_eq!(result.committed, 60);
        assert_eq!(result.failed, 0, "client-unique names never collide");
        assert!(result.mutations > 0);
        assert!(result.throughput() > 0.0);
    }

    #[test]
    fn provisioning_is_idempotent() {
        let service = FileService::in_memory();
        let dirs = DirStore::new(&*service);
        let root = dirs.create_root().unwrap();
        let config = afs_workload::dir_churn(4, 0.0, 9);
        let a = provision_dirs(&dirs, &root, &config).unwrap();
        let b = provision_dirs(&dirs, &root, &config).unwrap();
        assert_eq!(a, b, "re-provisioning reuses the same directories");
    }
}
