//! The multi-client transaction driver used by the comparison experiments.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use afs_baselines::{ConcurrencyControl, TxAbort, TxProfile};
use afs_workload::{MixConfig, WorkloadGenerator};

use crate::metrics::LatencyStats;

/// How a workload run is shaped.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Transactions each client must successfully commit.
    pub transactions_per_client: usize,
    /// Maximum retries per transaction before giving up (counted as a failure).
    pub max_retries: usize,
    /// The transaction mix.
    pub mix: MixConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            clients: 4,
            transactions_per_client: 100,
            max_retries: 64,
            mix: MixConfig::default(),
        }
    }
}

/// Aggregate outcome of a workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Mechanism name reported by the server.
    pub mechanism: &'static str,
    /// Transactions that eventually committed.
    pub committed: u64,
    /// Aborts observed (every abort is followed by a retry until `max_retries`).
    pub aborts: u64,
    /// Transactions abandoned after exhausting their retries.
    pub gave_up: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Commit latency statistics (time from first attempt to successful commit).
    pub latency: LatencyStats,
    /// Physical page I/O performed during the run (including
    /// `pages_flushed_at_commit`, the write-back flush traffic), when the
    /// mechanism exposes its counters; `None` for the baselines and remote stores.
    /// For a sharded store this is the *sum* over all shards.
    pub io: Option<afs_core::PageIoStats>,
    /// Per-shard physical page I/O for the run, in shard order, when the
    /// mechanism exposes its counters.  An unsharded mechanism reports one
    /// entry; use it to see hot-shard skew that the aggregate hides.
    pub io_per_shard: Option<Vec<afs_core::PageIoStats>>,
    /// RPC-client statistics for the run (backed-off retry rounds, transport
    /// reconnects, in-flight high-water mark), when the mechanism runs over a
    /// remote connection; `None` for local mechanisms and the baselines.
    pub client_stats: Option<amoeba_rpc::ClientStats>,
}

impl RunResult {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed as f64 / self.elapsed.as_secs_f64()
    }

    /// Aborts per committed transaction (the redo rate of §6).
    pub fn abort_ratio(&self) -> f64 {
        if self.committed == 0 {
            return self.aborts as f64;
        }
        self.aborts as f64 / self.committed as f64
    }
}

/// Runs the configured workload against a concurrency-control mechanism and collects
/// the outcome.  Files are created up front; each client thread then draws
/// transactions from its own deterministic generator and retries aborted ones.
pub fn run_workload(
    cc: &(impl ConcurrencyControl + 'static + ?Sized),
    config: &RunConfig,
) -> RunResult
where
{
    // Create the working set.
    let files: Vec<u64> = (0..config.mix.files)
        .map(|_| cc.create_file(config.mix.pages_per_file as u32, config.mix.payload))
        .collect();
    let files = Arc::new(files);

    let committed = AtomicU64::new(0);
    let aborts = AtomicU64::new(0);
    let gave_up = AtomicU64::new(0);
    let io_before = cc.io_stats();
    let io_per_shard_before = cc.shard_io_stats();
    let client_stats_before = cc.client_stats();
    let start = Instant::now();

    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..config.clients {
            let files = Arc::clone(&files);
            let committed = &committed;
            let aborts = &aborts;
            let gave_up = &gave_up;
            let mix = MixConfig {
                seed: config.mix.seed.wrapping_add(client as u64 * 7919),
                ..config.mix.clone()
            };
            let max_retries = config.max_retries;
            let per_client = config.transactions_per_client;
            handles.push(scope.spawn(move || {
                let mut generator = WorkloadGenerator::new(mix);
                let mut rng = StdRng::seed_from_u64(client as u64);
                let mut samples = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let spec = generator.next_tx();
                    let profile = TxProfile {
                        reads: spec.reads.clone(),
                        writes: spec
                            .writes
                            .iter()
                            .map(|&p| (p, Bytes::from(vec![client as u8; spec.payload.max(1)])))
                            .collect(),
                    };
                    let file = files[spec.file % files.len()];
                    let begun = Instant::now();
                    let mut attempts = 0usize;
                    loop {
                        match cc.run_transaction(file, &profile) {
                            Ok(_) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                                samples.push(begun.elapsed());
                                break;
                            }
                            Err(TxAbort::Fault(msg)) => {
                                panic!("storage fault during workload: {msg}");
                            }
                            Err(_) => {
                                aborts.fetch_add(1, Ordering::Relaxed);
                                attempts += 1;
                                if attempts > max_retries {
                                    gave_up.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                // Random backoff, as the paper suggests for redoing
                                // conflicting updates.
                                std::thread::sleep(Duration::from_micros(rng.gen_range(0..200)));
                            }
                        }
                    }
                }
                samples
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    RunResult {
        mechanism: cc.name(),
        committed: committed.load(Ordering::Relaxed),
        aborts: aborts.load(Ordering::Relaxed),
        gave_up: gave_up.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: LatencyStats::from_samples(latencies),
        io: match (io_before, cc.io_stats()) {
            (Some(before), Some(after)) => Some(after.since(&before)),
            _ => None,
        },
        io_per_shard: match (io_per_shard_before, cc.shard_io_stats()) {
            (Some(before), Some(after)) if before.len() == after.len() => Some(
                after
                    .iter()
                    .zip(before.iter())
                    .map(|(a, b)| a.since(b))
                    .collect(),
            ),
            _ => None,
        },
        client_stats: match (client_stats_before, cc.client_stats()) {
            (Some(before), Some(after)) => Some(after.since(&before)),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_baselines::{
        AmoebaAdapter, StoreAdapter, TimestampOrderingServer, TwoPhaseLockingServer,
    };

    fn tiny_config() -> RunConfig {
        RunConfig {
            clients: 3,
            transactions_per_client: 20,
            max_retries: 200,
            mix: MixConfig {
                files: 2,
                pages_per_file: 16,
                reads_per_tx: 1,
                writes_per_tx: 1,
                payload: 32,
                ..MixConfig::default()
            },
        }
    }

    #[test]
    fn amoeba_runs_the_workload_to_completion() {
        let cc = AmoebaAdapter::in_memory();
        let result = run_workload(&cc, &tiny_config());
        assert_eq!(result.committed, 60);
        assert_eq!(result.gave_up, 0);
        assert!(result.throughput() > 0.0);
        // The local service surfaces its physical I/O, including the write-back
        // flush traffic, through the uniform interface.
        let io = result.io.expect("the local service reports I/O stats");
        assert!(io.pages_flushed_at_commit > 0);
        assert!(io.page_writes >= io.pages_flushed_at_commit);
    }

    #[test]
    fn baselines_report_no_io_stats() {
        let cc = TwoPhaseLockingServer::in_memory();
        let result = run_workload(&cc, &tiny_config());
        assert!(result.io.is_none());
    }

    #[test]
    fn two_phase_locking_runs_the_workload_to_completion() {
        let cc = TwoPhaseLockingServer::in_memory();
        let result = run_workload(&cc, &tiny_config());
        assert_eq!(result.committed, 60);
    }

    #[test]
    fn timestamp_ordering_runs_the_workload_to_completion() {
        let cc = TimestampOrderingServer::in_memory();
        let result = run_workload(&cc, &tiny_config());
        assert_eq!(result.committed, 60);
    }

    /// The unified `FileStore` trait means the identical workload harness runs
    /// over the RPC client: wrap a `RemoteFs` in the same adapter and drive it.
    #[test]
    fn the_same_workload_runs_over_rpc() {
        use afs_client::RemoteFs;
        use afs_core::FileService;
        use afs_server::ServerGroup;
        use amoeba_rpc::LocalNetwork;

        let network = Arc::new(LocalNetwork::new());
        let service = FileService::in_memory();
        let group = ServerGroup::start(&network, &service, 2);
        let remote = Arc::new(RemoteFs::new(Arc::clone(&network), group.ports()));
        let probe = Arc::clone(&remote);
        let cc =
            StoreAdapter::over(remote, "amoeba-occ-rpc").with_client_stats(move || probe.stats());

        let result = run_workload(&cc, &tiny_config());
        assert_eq!(result.mechanism, "amoeba-occ-rpc");
        assert_eq!(result.committed, 60);
        assert_eq!(result.gave_up, 0);
        // The remote adapter surfaces uniform client statistics; a healthy
        // in-process network needs no retries and no reconnects.
        let stats = result.client_stats.expect("remote adapter reports stats");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.reconnects, 0);
        // Batched page ops keep the wire chatter bounded: per transaction one
        // CreateVersion + at most one ReadPages + one WritePages + one Commit
        // (plus setup and retries).
        let per_tx_budget = 5 * (result.committed + result.aborts) + 64;
        assert!(
            network.transaction_count() <= per_tx_budget,
            "expected O(1) RPCs per transaction: {} transactions for {} commits",
            network.transaction_count(),
            result.committed
        );
    }
}
