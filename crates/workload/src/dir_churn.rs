//! The `dir_churn` scenario: naming-layer traffic.
//!
//! The directory service stores every directory in an ordinary file, so
//! concurrent mutations of one *hot* directory all contend on that file's root
//! page and serialise through OCC retry.  This generator produces the mix that
//! stresses exactly that: mkdir / create / lookup / readdir / rename over a
//! set of directories chosen with Zipf skew, so a minority of hot directories
//! absorbs most of the mutation traffic — the worst case for a naming layer
//! built on optimistic concurrency, and the scenario the sim tests use to
//! prove that racing renames on one directory never lose an entry.
//!
//! Each generator instance models one client: the names it creates are
//! namespaced by its seed, so concurrent clients never collide on *names*
//! (every one of their operations can succeed) while still colliding on
//! *directories* (every one of their commits can conflict).  Lookups and
//! renames draw from the client's own previously created names; when the
//! chosen directory holds none yet, the operation degrades to a create.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::AccessDistribution;

/// One generated naming operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirChurnOp {
    /// Create a sub-directory `name` in directory `dir`.
    MkDir {
        /// Index of the target directory.
        dir: usize,
        /// Fresh, client-unique name.
        name: String,
    },
    /// Create a file and bind it as `name` in directory `dir`.
    Create {
        /// Index of the target directory.
        dir: usize,
        /// Fresh, client-unique name.
        name: String,
    },
    /// Look up `name` in directory `dir`.
    Lookup {
        /// Index of the target directory.
        dir: usize,
        /// A name this client created earlier in `dir`.
        name: String,
    },
    /// List directory `dir`.
    ReadDir {
        /// Index of the target directory.
        dir: usize,
    },
    /// Rename `from` to `to` within directory `dir` (same-directory rename —
    /// the atomic single-commit case, and the one hot directories contend on).
    Rename {
        /// Index of the target directory.
        dir: usize,
        /// A name this client created earlier in `dir`.
        from: String,
        /// Fresh, client-unique name.
        to: String,
    },
}

impl DirChurnOp {
    /// The index of the directory this operation touches.
    pub fn dir(&self) -> usize {
        match self {
            DirChurnOp::MkDir { dir, .. }
            | DirChurnOp::Create { dir, .. }
            | DirChurnOp::Lookup { dir, .. }
            | DirChurnOp::ReadDir { dir }
            | DirChurnOp::Rename { dir, .. } => *dir,
        }
    }

    /// True if the operation mutates its directory.
    pub fn is_mutation(&self) -> bool {
        !matches!(self, DirChurnOp::Lookup { .. } | DirChurnOp::ReadDir { .. })
    }
}

/// Configuration of a `dir_churn` mix.  The five weights are relative; they
/// need not sum to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DirChurnConfig {
    /// Number of directories in the working set.
    pub dirs: usize,
    /// Relative frequency of `MkDir`.
    pub mkdir_weight: f64,
    /// Relative frequency of `Create`.
    pub create_weight: f64,
    /// Relative frequency of `Lookup`.
    pub lookup_weight: f64,
    /// Relative frequency of `ReadDir`.
    pub readdir_weight: f64,
    /// Relative frequency of `Rename`.
    pub rename_weight: f64,
    /// How directories are chosen ([`AccessDistribution::Zipf`] concentrates
    /// the churn on a few hot directories).
    pub dir_skew: AccessDistribution,
    /// RNG seed; also namespaces this client's entry names.
    pub seed: u64,
}

/// A deterministic stream of [`DirChurnOp`]s for one client.
#[derive(Debug)]
pub struct DirChurnGenerator {
    config: DirChurnConfig,
    rng: StdRng,
    /// Names this client currently owns, per directory.
    owned: Vec<Vec<String>>,
    next_name: u64,
}

impl DirChurnGenerator {
    /// Creates a generator for the given mix.
    pub fn new(config: DirChurnConfig) -> Self {
        assert!(config.dirs > 0, "dir_churn needs at least one directory");
        let owned = vec![Vec::new(); config.dirs];
        let rng = StdRng::seed_from_u64(config.seed);
        DirChurnGenerator {
            config,
            rng,
            owned,
            next_name: 0,
        }
    }

    /// The configuration the generator was built with.
    pub fn config(&self) -> &DirChurnConfig {
        &self.config
    }

    fn fresh_name(&mut self) -> String {
        let name = format!("c{}-{}", self.config.seed, self.next_name);
        self.next_name += 1;
        name
    }

    /// Produces the next operation.
    pub fn next_op(&mut self) -> DirChurnOp {
        let cfg = &self.config;
        let dir = cfg.dir_skew.sample(&mut self.rng, cfg.dirs);
        let total = cfg.mkdir_weight
            + cfg.create_weight
            + cfg.lookup_weight
            + cfg.readdir_weight
            + cfg.rename_weight;
        let mut draw = self.rng.gen_range(0.0..total.max(f64::EPSILON));
        let mut pick = 4usize; // default to the last bucket (rename)
        for (i, w) in [
            cfg.mkdir_weight,
            cfg.create_weight,
            cfg.lookup_weight,
            cfg.readdir_weight,
            cfg.rename_weight,
        ]
        .into_iter()
        .enumerate()
        {
            if draw < w {
                pick = i;
                break;
            }
            draw -= w;
        }
        match pick {
            0 => {
                let name = self.fresh_name();
                DirChurnOp::MkDir { dir, name }
            }
            1 => {
                let name = self.fresh_name();
                self.owned[dir].push(name.clone());
                DirChurnOp::Create { dir, name }
            }
            2 => match self.pick_owned(dir) {
                Some(name) => DirChurnOp::Lookup { dir, name },
                None => {
                    let name = self.fresh_name();
                    self.owned[dir].push(name.clone());
                    DirChurnOp::Create { dir, name }
                }
            },
            3 => DirChurnOp::ReadDir { dir },
            _ => match self.pick_owned_index(dir) {
                Some(idx) => {
                    let to = self.fresh_name();
                    let from = std::mem::replace(&mut self.owned[dir][idx], to.clone());
                    DirChurnOp::Rename { dir, from, to }
                }
                None => {
                    let name = self.fresh_name();
                    self.owned[dir].push(name.clone());
                    DirChurnOp::Create { dir, name }
                }
            },
        }
    }

    fn pick_owned_index(&mut self, dir: usize) -> Option<usize> {
        if self.owned[dir].is_empty() {
            return None;
        }
        Some(self.rng.gen_range(0..self.owned[dir].len()))
    }

    fn pick_owned(&mut self, dir: usize) -> Option<String> {
        self.pick_owned_index(dir)
            .map(|idx| self.owned[dir][idx].clone())
    }

    /// Produces a batch of `count` operations.
    pub fn batch(&mut self, count: usize) -> Vec<DirChurnOp> {
        (0..count).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::dir_churn;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = DirChurnGenerator::new(dir_churn(8, 0.9, 7)).batch(100);
        let b = DirChurnGenerator::new(dir_churn(8, 0.9, 7)).batch(100);
        assert_eq!(a, b);
        let c = DirChurnGenerator::new(dir_churn(8, 0.9, 8)).batch(100);
        assert_ne!(a, c);
    }

    #[test]
    fn names_are_namespaced_by_seed() {
        let a = DirChurnGenerator::new(dir_churn(4, 0.0, 1)).batch(50);
        let b = DirChurnGenerator::new(dir_churn(4, 0.0, 2)).batch(50);
        let names = |ops: &[DirChurnOp]| -> Vec<String> {
            ops.iter()
                .filter_map(|op| match op {
                    DirChurnOp::Create { name, .. } | DirChurnOp::MkDir { name, .. } => {
                        Some(name.clone())
                    }
                    DirChurnOp::Rename { to, .. } => Some(to.clone()),
                    _ => None,
                })
                .collect()
        };
        for name in names(&a) {
            assert!(
                !names(&b).contains(&name),
                "clients must never collide on names ({name})"
            );
        }
    }

    #[test]
    fn lookups_and_renames_only_touch_owned_names() {
        let mut generator = DirChurnGenerator::new(dir_churn(4, 0.5, 3));
        let mut created: Vec<(usize, String)> = Vec::new();
        for op in generator.batch(300) {
            match op {
                DirChurnOp::Create { dir, name } => created.push((dir, name)),
                DirChurnOp::Lookup { dir, name } => {
                    assert!(created.contains(&(dir, name.clone())));
                }
                DirChurnOp::Rename { dir, from, to } => {
                    let idx = created
                        .iter()
                        .position(|(d, n)| *d == dir && *n == from)
                        .expect("rename source must have been created");
                    created[idx] = (dir, to);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn zipf_skew_concentrates_churn_on_hot_directories() {
        let mut generator = DirChurnGenerator::new(dir_churn(12, 0.95, 11));
        let ops = generator.batch(600);
        let hot = ops.iter().filter(|op| op.dir() == 0).count();
        let cold = ops.iter().filter(|op| op.dir() == 11).count();
        assert!(
            hot > 3 * cold.max(1),
            "Zipf skew must concentrate directory traffic (hot={hot}, cold={cold})"
        );
    }

    #[test]
    fn the_mix_contains_every_operation_kind() {
        let mut generator = DirChurnGenerator::new(dir_churn(4, 0.0, 5));
        let ops = generator.batch(400);
        assert!(ops.iter().any(|op| matches!(op, DirChurnOp::MkDir { .. })));
        assert!(ops.iter().any(|op| matches!(op, DirChurnOp::Create { .. })));
        assert!(ops.iter().any(|op| matches!(op, DirChurnOp::Lookup { .. })));
        assert!(ops
            .iter()
            .any(|op| matches!(op, DirChurnOp::ReadDir { .. })));
        assert!(ops.iter().any(|op| matches!(op, DirChurnOp::Rename { .. })));
        assert!(ops.iter().any(|op| op.is_mutation()));
        assert!(ops.iter().any(|op| !op.is_mutation()));
    }
}
