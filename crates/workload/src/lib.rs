//! Workload generators for the Amoeba File Service experiments.
//!
//! The paper motivates its design with a handful of concrete usage patterns: the
//! compiler writing a temporary file it never shares (§2), an airline-reservation
//! database whose updates rarely touch the same pages (§6), a source-code-control
//! system layered on versions (§2.1), and occasional large reorganisations that span
//! several files and call for locking (§5.3).  This crate turns those patterns into
//! parameterised, reproducible transaction streams the experiment harness can feed to
//! the Amoeba service and to the baseline servers alike.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod dir_churn;
pub mod dist;
pub mod mix;
pub mod scenarios;

pub use apply::{apply_spec, provision_file};
pub use dir_churn::{DirChurnConfig, DirChurnGenerator, DirChurnOp};
pub use dist::AccessDistribution;
pub use mix::{MixConfig, TxSpec, WorkloadGenerator};
pub use scenarios::{
    airline_mix, compiler_temp_mix, dir_churn, hot_spot_mix, sccs_mix, sharded_mix,
};
