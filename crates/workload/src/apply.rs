//! Executing generated transactions against any [`FileStore`].
//!
//! [`provision_file`] and [`apply_spec`] connect the workload generator to the
//! unified store protocol: a [`TxSpec`] runs as one retrying
//! [`afs_core::FileStoreExt::update`] using the batched page operations, so the
//! identical workload stream drives a local `FileService` and a remote
//! `RemoteFs` connection — the latter in O(1) round trips per transaction.

use bytes::Bytes;

use afs_core::{Capability, Committed, FileStore, FileStoreExt, PagePath, Result, RetryPolicy};

use crate::mix::TxSpec;

/// Creates a committed file with `pages` leaf pages of `payload` zero bytes
/// each — the working-set shape every mix assumes — and returns its capability.
pub fn provision_file<S: FileStore + ?Sized>(
    store: &S,
    pages: usize,
    payload: usize,
) -> Result<Capability> {
    let file = store.create_file()?;
    let version = store.create_version(&file)?;
    for _ in 0..pages {
        store.append_page(&version, &PagePath::root(), Bytes::from(vec![0u8; payload]))?;
    }
    store.commit(&version)?;
    Ok(file)
}

fn page_path(index: u32) -> PagePath {
    PagePath::new(vec![index as u16])
}

/// Runs one generated transaction as a retrying update against `file`: reads
/// the spec's read set, overwrites its write set with `fill` bytes, commits,
/// and redoes the whole transaction on serialisability conflicts.
///
/// Returns the committed outcome (attempts used, commit receipt).
pub fn apply_spec<S: FileStore + ?Sized>(
    store: &S,
    file: &Capability,
    spec: &TxSpec,
    fill: u8,
    policy: RetryPolicy,
) -> Result<Committed<()>> {
    let reads: Vec<PagePath> = spec.reads.iter().map(|&i| page_path(i)).collect();
    let writes: Vec<(PagePath, Bytes)> = spec
        .writes
        .iter()
        .map(|&i| (page_path(i), Bytes::from(vec![fill; spec.payload.max(1)])))
        .collect();
    store.update_with(file, policy, |tx| {
        if !reads.is_empty() {
            tx.read_many(&reads)?;
        }
        if !writes.is_empty() {
            tx.write_many(&writes)?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::{MixConfig, WorkloadGenerator};
    use afs_core::FileService;

    #[test]
    fn generated_transactions_apply_through_the_trait() {
        let service = FileService::in_memory();
        let mix = MixConfig {
            files: 1,
            pages_per_file: 8,
            reads_per_tx: 2,
            writes_per_tx: 2,
            payload: 32,
            ..MixConfig::default()
        };
        let file = provision_file(&*service, mix.pages_per_file, mix.payload).unwrap();
        let mut generator = WorkloadGenerator::new(mix);
        for _ in 0..10 {
            let spec = generator.next_tx();
            let outcome = apply_spec(&*service, &file, &spec, 7, RetryPolicy::default()).unwrap();
            assert_eq!(
                outcome.attempts, 1,
                "uncontended transactions commit first try"
            );
        }
        // The written pages hold the fill byte.
        let current = service.current_version(&file).unwrap();
        let any_written = (0..8u16).any(|i| {
            service
                .read_committed_page(&current, &PagePath::new(vec![i]))
                .map(|data| data.iter().all(|&b| b == 7) && !data.is_empty())
                .unwrap_or(false)
        });
        assert!(any_written);
    }
}
