//! Parameterised transaction mixes.

use crate::dist::AccessDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated transaction: which file it touches, which page indices it reads and
/// writes, and how large the written payloads are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxSpec {
    /// Index of the file the transaction operates on (the harness maps this to a
    /// concrete file handle).
    pub file: usize,
    /// Page indices read before writing.
    pub reads: Vec<u32>,
    /// Page indices written.
    pub writes: Vec<u32>,
    /// Size in bytes of each written payload.
    pub payload: usize,
}

/// Configuration of a transaction mix.
#[derive(Debug, Clone, PartialEq)]
pub struct MixConfig {
    /// Number of files in the working set.
    pub files: usize,
    /// Pages per file.
    pub pages_per_file: usize,
    /// Pages read per transaction.
    pub reads_per_tx: usize,
    /// Pages written per transaction.
    pub writes_per_tx: usize,
    /// Written payload size in bytes.
    pub payload: usize,
    /// How files are chosen.
    pub file_skew: AccessDistribution,
    /// How pages within the chosen file are chosen.
    pub page_skew: AccessDistribution,
    /// Fraction of transactions that are read-only, in [0, 1].
    pub read_only_fraction: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            files: 1,
            pages_per_file: 64,
            reads_per_tx: 2,
            writes_per_tx: 2,
            payload: 256,
            file_skew: AccessDistribution::Uniform,
            page_skew: AccessDistribution::Uniform,
            read_only_fraction: 0.0,
            seed: 42,
        }
    }
}

/// A deterministic stream of [`TxSpec`]s.
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: MixConfig,
    rng: StdRng,
}

impl WorkloadGenerator {
    /// Creates a generator for the given mix.
    pub fn new(config: MixConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        WorkloadGenerator { config, rng }
    }

    /// The configuration the generator was built with.
    pub fn config(&self) -> &MixConfig {
        &self.config
    }

    /// Produces the next transaction.
    pub fn next_tx(&mut self) -> TxSpec {
        let cfg = &self.config;
        let file = cfg.file_skew.sample(&mut self.rng, cfg.files);
        let read_only = self.rng.gen_bool(cfg.read_only_fraction.clamp(0.0, 1.0));
        let writes: Vec<u32> = if read_only {
            Vec::new()
        } else {
            cfg.page_skew
                .sample_distinct(&mut self.rng, cfg.pages_per_file, cfg.writes_per_tx)
                .into_iter()
                .map(|p| p as u32)
                .collect()
        };
        let reads: Vec<u32> = cfg
            .page_skew
            .sample_distinct(&mut self.rng, cfg.pages_per_file, cfg.reads_per_tx)
            .into_iter()
            .map(|p| p as u32)
            .collect();
        TxSpec {
            file,
            reads,
            writes,
            payload: cfg.payload,
        }
    }

    /// Produces a batch of `count` transactions.
    pub fn batch(&mut self, count: usize) -> Vec<TxSpec> {
        (0..count).map(|_| self.next_tx()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = WorkloadGenerator::new(MixConfig::default()).batch(50);
        let b = WorkloadGenerator::new(MixConfig::default()).batch(50);
        assert_eq!(a, b);
        let c = WorkloadGenerator::new(MixConfig {
            seed: 43,
            ..MixConfig::default()
        })
        .batch(50);
        assert_ne!(a, c);
    }

    #[test]
    fn transactions_respect_the_configured_sizes() {
        let cfg = MixConfig {
            files: 4,
            pages_per_file: 32,
            reads_per_tx: 3,
            writes_per_tx: 5,
            ..MixConfig::default()
        };
        let mut generator = WorkloadGenerator::new(cfg);
        for tx in generator.batch(100) {
            assert!(tx.file < 4);
            assert_eq!(tx.reads.len(), 3);
            assert_eq!(tx.writes.len(), 5);
            assert!(tx.reads.iter().all(|&p| (p as usize) < 32));
            assert!(tx.writes.iter().all(|&p| (p as usize) < 32));
        }
    }

    #[test]
    fn read_only_fraction_produces_read_only_transactions() {
        let cfg = MixConfig {
            read_only_fraction: 1.0,
            ..MixConfig::default()
        };
        let mut generator = WorkloadGenerator::new(cfg);
        assert!(generator.batch(20).iter().all(|tx| tx.writes.is_empty()));
    }
}
