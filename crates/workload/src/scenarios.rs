//! The paper's motivating scenarios as ready-made mixes.

use crate::dist::AccessDistribution;
use crate::mix::MixConfig;

/// The airline-reservation example of §6: one large shared file (the reservation
/// database), many concurrent small updates, and — because "changes … for flights
/// from San Francisco to Los Angeles do not conflict with changes to reservations on
/// flights from Amsterdam to London" — mostly disjoint page sets, with mild skew
/// towards popular flights.
pub fn airline_mix(pages: usize, seed: u64) -> MixConfig {
    MixConfig {
        files: 1,
        pages_per_file: pages,
        reads_per_tx: 1,
        writes_per_tx: 1,
        payload: 128,
        file_skew: AccessDistribution::Uniform,
        page_skew: AccessDistribution::Zipf { theta: 0.5 },
        read_only_fraction: 0.3,
        seed,
    }
}

/// The compiler-temporary example of §2 / §6: every "transaction" writes one page of
/// a private file nobody else touches — the Bauer-principle case that must not pay
/// for concurrency control.
pub fn compiler_temp_mix(files: usize, seed: u64) -> MixConfig {
    MixConfig {
        files,
        pages_per_file: 1,
        reads_per_tx: 0,
        writes_per_tx: 1,
        payload: 16 * 1024,
        file_skew: AccessDistribution::Uniform,
        page_skew: AccessDistribution::Uniform,
        read_only_fraction: 0.0,
        seed,
    }
}

/// A source-code-control-system style mix (§2.1): mostly reads of many pages, with an
/// occasional update that appends a new delta.
pub fn sccs_mix(pages: usize, seed: u64) -> MixConfig {
    MixConfig {
        files: 1,
        pages_per_file: pages,
        reads_per_tx: 8,
        writes_per_tx: 1,
        payload: 512,
        file_skew: AccessDistribution::Uniform,
        page_skew: AccessDistribution::Uniform,
        read_only_fraction: 0.8,
        seed,
    }
}

/// A multi-shard mix: many files spread round-robin across the shards of a
/// sharded store, each transaction touching one file.  With `theta > 0` the
/// file choice is Zipf-skewed, so a minority of files — and therefore a
/// minority of *shards* — absorbs most of the traffic: the hot-shard scenario a
/// sharded deployment must survive without starving the cold shards.  With
/// `theta = 0` the load is uniform and throughput should scale with the shard
/// count.
pub fn sharded_mix(files: usize, pages_per_file: usize, theta: f64, seed: u64) -> MixConfig {
    MixConfig {
        files,
        pages_per_file,
        reads_per_tx: 1,
        writes_per_tx: 1,
        payload: 128,
        file_skew: if theta > 0.0 {
            AccessDistribution::Zipf { theta }
        } else {
            AccessDistribution::Uniform
        },
        page_skew: AccessDistribution::Uniform,
        read_only_fraction: 0.2,
        seed,
    }
}

/// The naming-layer churn mix: mkdir / create / lookup / readdir / rename over
/// `dirs` directories, with the directory choice Zipf-skewed by `theta` so a
/// few hot directories absorb most of the mutations.  Directories are ordinary
/// files, so every mutation of a hot directory contends on one root page and
/// serialises through OCC retry — the scenario the sim uses to prove racing
/// renames never lose an entry.
pub fn dir_churn(dirs: usize, theta: f64, seed: u64) -> crate::dir_churn::DirChurnConfig {
    crate::dir_churn::DirChurnConfig {
        dirs,
        mkdir_weight: 0.05,
        create_weight: 0.25,
        lookup_weight: 0.35,
        readdir_weight: 0.1,
        rename_weight: 0.25,
        dir_skew: if theta > 0.0 {
            AccessDistribution::Zipf { theta }
        } else {
            AccessDistribution::Uniform
        },
        seed,
    }
}

/// A hot-spot mix: every transaction reads and writes the same page — the worst case
/// for optimistic concurrency control (§6's starvation discussion) and the best case
/// for locking.
pub fn hot_spot_mix(seed: u64) -> MixConfig {
    MixConfig {
        files: 1,
        pages_per_file: 16,
        reads_per_tx: 1,
        writes_per_tx: 1,
        payload: 128,
        file_skew: AccessDistribution::Uniform,
        page_skew: AccessDistribution::HotSpot,
        read_only_fraction: 0.0,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::WorkloadGenerator;

    #[test]
    fn airline_transactions_are_small() {
        let mut generator = WorkloadGenerator::new(airline_mix(256, 1));
        for tx in generator.batch(50) {
            assert!(tx.reads.len() <= 1);
            assert!(tx.writes.len() <= 1);
        }
    }

    #[test]
    fn compiler_temp_is_write_only_single_page() {
        let mut generator = WorkloadGenerator::new(compiler_temp_mix(10, 1));
        for tx in generator.batch(50) {
            assert!(tx.reads.is_empty());
            assert_eq!(tx.writes, vec![0]);
        }
    }

    #[test]
    fn hot_spot_hits_one_page() {
        let mut generator = WorkloadGenerator::new(hot_spot_mix(1));
        for tx in generator.batch(50) {
            assert_eq!(tx.writes, vec![0]);
        }
    }

    #[test]
    fn sharded_mix_skews_file_choice_when_asked() {
        let mut skewed = WorkloadGenerator::new(sharded_mix(12, 32, 0.9, 7));
        let batch = skewed.batch(600);
        let hot = batch.iter().filter(|t| t.file == 0).count();
        let cold = batch.iter().filter(|t| t.file == 11).count();
        assert!(
            hot > 3 * cold.max(1),
            "Zipf skew must concentrate traffic (hot={hot}, cold={cold})"
        );

        let mut uniform = WorkloadGenerator::new(sharded_mix(12, 32, 0.0, 7));
        let batch = uniform.batch(600);
        for file in 0..12 {
            let n = batch.iter().filter(|t| t.file == file).count();
            assert!(n > 10, "uniform mix starved file {file} ({n} txs)");
        }
    }

    #[test]
    fn sccs_is_mostly_read_only() {
        let mut generator = WorkloadGenerator::new(sccs_mix(64, 1));
        let read_only = generator
            .batch(200)
            .iter()
            .filter(|t| t.writes.is_empty())
            .count();
        assert!(read_only > 120);
    }
}
