//! Access-skew distributions.

use rand::Rng;

/// How page (or file) indices are drawn from `0..n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessDistribution {
    /// Every index is equally likely.
    Uniform,
    /// Zipf-like skew with parameter `theta` in (0, 1): larger values concentrate
    /// accesses on a few hot indices (the airline example: a handful of popular
    /// flights receive most bookings).
    Zipf {
        /// Skew parameter; 0 degenerates to uniform, values near 1 are very skewed.
        theta: f64,
    },
    /// All accesses hit index 0 (a pure hot spot).
    HotSpot,
}

impl AccessDistribution {
    /// Draws an index in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        match self {
            AccessDistribution::Uniform => rng.gen_range(0..n),
            AccessDistribution::HotSpot => 0,
            AccessDistribution::Zipf { theta } => {
                // Classic bounded Zipf via the power-of-uniform approximation, good
                // enough for workload skew (we do not need exact Zipf moments).
                let theta = theta.clamp(0.0, 0.999);
                let u: f64 = rng.gen_range(0.0f64..1.0);
                let idx = (n as f64) * u.powf(1.0 / (1.0 - theta));
                (idx as usize).min(n - 1)
            }
        }
    }

    /// Draws `count` distinct indices in `0..n` (or fewer when `n < count`).
    pub fn sample_distinct(&self, rng: &mut impl Rng, n: usize, count: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(count);
        let mut guard = 0;
        while out.len() < count.min(n) && guard < count * 50 {
            let candidate = self.sample(rng, n);
            if !out.contains(&candidate) {
                out.push(candidate);
            }
            guard += 1;
        }
        // Fall back to sequential fill if the distribution is too concentrated to
        // produce enough distinct values by sampling.
        let mut next = 0;
        while out.len() < count.min(n) {
            if !out.contains(&next) {
                out.push(next);
            }
            next += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[AccessDistribution::Uniform.sample(&mut rng, 10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_is_skewed_towards_low_indices() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = AccessDistribution::Zipf { theta: 0.9 };
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng, 100)] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[90..].iter().sum();
        assert!(head > tail * 3, "head={head} tail={tail}");
    }

    #[test]
    fn hot_spot_always_returns_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(AccessDistribution::HotSpot.sample(&mut rng, 50), 0);
        }
    }

    #[test]
    fn sample_distinct_returns_unique_indices() {
        let mut rng = StdRng::seed_from_u64(4);
        for dist in [
            AccessDistribution::Uniform,
            AccessDistribution::Zipf { theta: 0.99 },
            AccessDistribution::HotSpot,
        ] {
            let picks = dist.sample_distinct(&mut rng, 20, 8);
            let mut unique = picks.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(picks.len(), 8);
            assert_eq!(unique.len(), 8);
        }
    }

    #[test]
    fn sample_distinct_caps_at_population_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let picks = AccessDistribution::Uniform.sample_distinct(&mut rng, 3, 10);
        assert_eq!(picks.len(), 3);
    }
}
