//! Block-server processes: the RPC façade over the **block** service, and the
//! client-side [`RemoteBlockStore`] that makes a remote disk a plain
//! [`BlockStore`].
//!
//! The paper's topology puts block servers on their own machines: "a number of
//! server processes, which, in turn, use a number of block servers for
//! information storage" (§5.4.1).  This module closes that gap in the
//! reproduction: a [`BlockServerProcess`] registers a [`BlockServerHandler`] on
//! the network, and a file-service shard reaches its replica disks through
//! `RemoteBlockStore` connections wrapped in an
//! `amoeba_block::ReplicatedBlockStore`.
//!
//! The hot path is the commit flush: `RemoteBlockStore::write_batch` ships a
//! whole batch of dirty pages as one [`BlockOp::WriteBlocks`] request per
//! frame, so a k-page commit costs O(1) block-write RPCs per replica instead of
//! k round trips.  A transport failure surfaces as [`BlockError::Crashed`],
//! which is exactly what the replica layer's auto-down/intention machinery
//! expects from a dead disk — kill a block-server process mid-commit and the
//! survivors absorb the write while the corpse's intentions queue up for
//! resync.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use amoeba_block::{
    BlockError, BlockNr, BlockServer, BlockStore, ReplicatedBlockStore, StoreStats,
};
use amoeba_capability::{Capability, Port};
use amoeba_rpc::block::{
    chunk_block_writes, decode_block_list, decode_block_nr, decode_block_write,
    decode_block_writes, encode_block_list, encode_block_nr, encode_block_write,
    encode_block_writes, BlockOp,
};
use amoeba_rpc::{
    ClientStats, FailoverPolicy, LocalNetwork, MuxClient, Reply, Request, RequestHandler, Transport,
};

// ---------------------------------------------------------------------------
// Error marshalling: one code byte + detail, mirroring the file-service ops.
// ---------------------------------------------------------------------------

const ERR_IO: u8 = 0;
const ERR_NO_SUCH_BLOCK: u8 = 1;
const ERR_FULL: u8 = 2;
const ERR_TOO_LARGE: u8 = 3;
const ERR_ALREADY_ALLOCATED: u8 = 4;
const ERR_WRITE_ONCE: u8 = 5;
const ERR_LOCKED: u8 = 6;
const ERR_CRASHED: u8 = 7;
const ERR_CORRUPTED: u8 = 8;
const ERR_WRITE_COLLISION: u8 = 9;
const ERR_PERMISSION: u8 = 10;
const ERR_UNSUPPORTED: u8 = 11;
const ERR_EPOCH_MISMATCH: u8 = 12;

/// Encodes a [`BlockError`] into an error-reply payload.
pub fn encode_block_error(err: &BlockError) -> Bytes {
    let mut buf = BytesMut::new();
    match err {
        BlockError::NoSuchBlock(nr) => {
            buf.put_u8(ERR_NO_SUCH_BLOCK);
            buf.put_u32_le(*nr);
        }
        BlockError::Full => buf.put_u8(ERR_FULL),
        BlockError::TooLarge { got, max } => {
            buf.put_u8(ERR_TOO_LARGE);
            buf.put_u32_le(*got as u32);
            buf.put_u32_le(*max as u32);
        }
        BlockError::AlreadyAllocated(nr) => {
            buf.put_u8(ERR_ALREADY_ALLOCATED);
            buf.put_u32_le(*nr);
        }
        BlockError::WriteOnce(nr) => {
            buf.put_u8(ERR_WRITE_ONCE);
            buf.put_u32_le(*nr);
        }
        BlockError::Locked(nr) => {
            buf.put_u8(ERR_LOCKED);
            buf.put_u32_le(*nr);
        }
        BlockError::Crashed => buf.put_u8(ERR_CRASHED),
        BlockError::Corrupted(nr) => {
            buf.put_u8(ERR_CORRUPTED);
            buf.put_u32_le(*nr);
        }
        BlockError::WriteCollision(nr) => {
            buf.put_u8(ERR_WRITE_COLLISION);
            buf.put_u32_le(*nr);
        }
        BlockError::PermissionDenied => buf.put_u8(ERR_PERMISSION),
        BlockError::Unsupported(what) => {
            buf.put_u8(ERR_UNSUPPORTED);
            buf.put_slice(what.as_bytes());
        }
        BlockError::Io(msg) => {
            buf.put_u8(ERR_IO);
            buf.put_slice(msg.as_bytes());
        }
        BlockError::EpochMismatch { sent, current } => {
            buf.put_u8(ERR_EPOCH_MISMATCH);
            buf.put_u64_le(*sent);
            buf.put_u64_le(*current);
        }
    }
    buf.freeze()
}

/// Decodes an error-reply payload back into a [`BlockError`].
pub fn decode_block_error(mut payload: Bytes) -> BlockError {
    if payload.is_empty() {
        return BlockError::Io("empty error reply".into());
    }
    let code = payload.get_u8();
    let nr = |payload: &mut Bytes| -> BlockNr {
        if payload.remaining() >= 4 {
            payload.get_u32_le()
        } else {
            0
        }
    };
    match code {
        ERR_NO_SUCH_BLOCK => BlockError::NoSuchBlock(nr(&mut payload)),
        ERR_FULL => BlockError::Full,
        ERR_TOO_LARGE => {
            if payload.remaining() >= 8 {
                BlockError::TooLarge {
                    got: payload.get_u32_le() as usize,
                    max: payload.get_u32_le() as usize,
                }
            } else {
                BlockError::Io("truncated TooLarge detail".into())
            }
        }
        ERR_ALREADY_ALLOCATED => BlockError::AlreadyAllocated(nr(&mut payload)),
        ERR_WRITE_ONCE => BlockError::WriteOnce(nr(&mut payload)),
        ERR_LOCKED => BlockError::Locked(nr(&mut payload)),
        ERR_CRASHED => BlockError::Crashed,
        ERR_CORRUPTED => BlockError::Corrupted(nr(&mut payload)),
        ERR_WRITE_COLLISION => BlockError::WriteCollision(nr(&mut payload)),
        ERR_PERMISSION => BlockError::PermissionDenied,
        ERR_UNSUPPORTED => BlockError::Io(format!(
            "unsupported: {}",
            String::from_utf8_lossy(&payload)
        )),
        ERR_EPOCH_MISMATCH => {
            if payload.remaining() >= 16 {
                BlockError::EpochMismatch {
                    sent: payload.get_u64_le(),
                    current: payload.get_u64_le(),
                }
            } else {
                BlockError::Io("truncated EpochMismatch detail".into())
            }
        }
        _ => BlockError::Io(String::from_utf8_lossy(&payload).into_owned()),
    }
}

// ---------------------------------------------------------------------------
// Server side.
// ---------------------------------------------------------------------------

/// The block-service request handler: decodes [`BlockOp`]s, calls the
/// [`BlockServer`], encodes replies.  Stateless apart from the shared server,
/// like its file-service sibling.
pub struct BlockServerHandler {
    server: Arc<BlockServer>,
}

impl BlockServerHandler {
    /// Creates a handler over the shared block-server state.
    pub fn new(server: Arc<BlockServer>) -> Self {
        BlockServerHandler { server }
    }

    fn dispatch(&self, request: Request) -> Result<Bytes, BlockError> {
        let op = BlockOp::from_u32(request.op)
            .ok_or(BlockError::Unsupported("unknown block operation"))?;
        let bad_args = || BlockError::Io("bad block-op arguments".into());
        match op {
            BlockOp::CreateAccount => {
                let cap = self.server.create_account();
                let mut buf = BytesMut::with_capacity(25);
                cap.encode(&mut buf);
                Ok(buf.freeze())
            }
            BlockOp::BlockSize => Ok(encode_block_nr(self.server.block_size() as u32)),
            BlockOp::Allocate => {
                let nr = self.server.allocate(&request.cap)?;
                Ok(encode_block_nr(nr))
            }
            BlockOp::AllocateAt => {
                let nr = decode_block_nr(request.payload).ok_or_else(bad_args)?;
                self.server.allocate_at(&request.cap, nr)?;
                Ok(Bytes::new())
            }
            BlockOp::Free => {
                let nr = decode_block_nr(request.payload).ok_or_else(bad_args)?;
                self.server.free(&request.cap, nr)?;
                Ok(Bytes::new())
            }
            BlockOp::Read => {
                let nr = decode_block_nr(request.payload).ok_or_else(bad_args)?;
                self.server.read(&request.cap, nr)
            }
            BlockOp::Write => {
                let (nr, data) = decode_block_write(request.payload).ok_or_else(bad_args)?;
                self.server.write(&request.cap, nr, data)?;
                Ok(Bytes::new())
            }
            BlockOp::WriteBlocks => {
                let (epoch, writes) = decode_block_writes(request.payload).ok_or_else(bad_args)?;
                // One scatter-gather call into the store: the whole frame's
                // worth of blocks costs one physical write call.  The sender's
                // membership-epoch stamp is checked first, so a coordinator
                // with a stale view of the replica set is rejected whole.
                self.server
                    .write_batch_epoch(&request.cap, epoch, &writes)?;
                Ok(Bytes::new())
            }
            BlockOp::IsAllocated => {
                let nr = decode_block_nr(request.payload).ok_or_else(bad_args)?;
                Ok(Bytes::from(vec![u8::from(
                    self.server.store().is_allocated(nr),
                )]))
            }
            BlockOp::AllocatedCount => {
                Ok(encode_block_nr(self.server.store().allocated_count() as u32))
            }
            BlockOp::AllocatedBlocks => {
                Ok(encode_block_list(&self.server.store().allocated_blocks()))
            }
        }
    }
}

impl RequestHandler for BlockServerHandler {
    fn handle(&self, request: Request) -> Reply {
        match self.dispatch(request) {
            Ok(payload) => Reply::ok(payload),
            Err(e) => Reply::error(encode_block_error(&e)),
        }
    }
}

/// One block-server process: a disk behind a port on the network.  Crashing the
/// process makes the port unreachable — clients observe
/// [`BlockError::Crashed`], exactly like a dead disk — while the data survives
/// for the restart.
pub struct BlockServerProcess {
    port: Port,
    network: Arc<LocalNetwork>,
    server: Arc<BlockServer>,
}

impl BlockServerProcess {
    /// Starts a block-server process over `store` on a fresh port of `network`.
    pub fn start(network: Arc<LocalNetwork>, store: Arc<dyn BlockStore>) -> Self {
        let server = Arc::new(BlockServer::new(store));
        let port = Port::random();
        network.register(port, Arc::new(BlockServerHandler::new(Arc::clone(&server))));
        BlockServerProcess {
            port,
            network,
            server,
        }
    }

    /// The port clients address this process by.
    pub fn port(&self) -> Port {
        self.port
    }

    /// The block server behind the port (for test assertions on the disk).
    pub fn server(&self) -> &Arc<BlockServer> {
        &self.server
    }

    /// Simulates a crash of this block-server process.
    pub fn crash(&self) {
        self.network.isolate(self.port);
    }

    /// Restarts the process after a crash; the disk contents are intact.
    pub fn restart(&self) {
        self.network.restore(self.port);
    }
}

// ---------------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------------

/// A remote disk: implements [`BlockStore`] by sending [`BlockOp`] transactions
/// to a block-server process.  Wrap N of these in a
/// [`ReplicatedBlockStore`] and a file-service shard stores its pages on N
/// remote replica disks, with a commit flush costing one `WriteBlocks` RPC per
/// replica.
pub struct RemoteBlockStore<T: Transport> {
    client: MuxClient<T>,
    account: Capability,
    block_size: usize,
    /// The replica set's current membership epoch, pushed down by
    /// `ReplicatedBlockStore` via [`BlockStore::set_epoch`] and stamped into
    /// every `WriteBlocks` request (0 = not part of a replica set).
    epoch: std::sync::atomic::AtomicU64,
}

impl<T: Transport> RemoteBlockStore<T> {
    /// Connects to the block server at `port`: creates an account and caches
    /// the block size.
    pub fn connect(transport: T, port: Port) -> amoeba_block::Result<Self> {
        // A single-server client with a much shorter retry schedule than the
        // file-service default: the replica layer above wants a dead disk
        // surfaced promptly.
        let client = MuxClient::new(transport, vec![port]).with_backoff(
            std::time::Duration::from_millis(1),
            std::time::Duration::from_millis(4),
            2,
        );
        let account = {
            let mut payload = Self::transact(
                &client,
                Request::empty(BlockOp::CreateAccount as u32, Capability::null()),
                FailoverPolicy::Never,
            )?;
            Capability::decode(&mut payload)
                .ok_or_else(|| BlockError::Io("bad account capability reply".into()))?
        };
        let block_size = {
            let reply = Self::transact(
                &client,
                Request::empty(BlockOp::BlockSize as u32, account),
                FailoverPolicy::Always,
            )?;
            decode_block_nr(reply).ok_or_else(|| BlockError::Io("bad block-size reply".into()))?
                as usize
        };
        Ok(RemoteBlockStore {
            client,
            account,
            block_size,
            epoch: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Uniform client statistics: backed-off retry rounds of idempotent
    /// requests, transport reconnects, and the in-flight high-water mark.
    pub fn stats(&self) -> ClientStats {
        self.client.stats()
    }

    fn transact(
        client: &MuxClient<T>,
        request: Request,
        policy: FailoverPolicy,
    ) -> amoeba_block::Result<Bytes> {
        // Any transport failure is indistinguishable from a dead disk, which is
        // precisely the semantics the replica layer wants: auto-down the
        // replica and queue intentions.
        let reply = client
            .transact(request, policy)
            .map_err(|_| BlockError::Crashed)?;
        if reply.is_ok() {
            Ok(reply.payload)
        } else {
            Err(decode_block_error(reply.payload))
        }
    }

    /// One mutation attempt, no retry ([`FailoverPolicy::Never`]): the
    /// replica layer above owns mutation failure handling (auto-down,
    /// intentions, resync), and it wants to see a dead disk promptly, not
    /// after a retry schedule.
    fn call(&self, op: BlockOp, payload: Bytes) -> amoeba_block::Result<Bytes> {
        Self::transact(
            &self.client,
            Request::new(op as u32, self.account, payload),
            FailoverPolicy::Never,
        )
    }

    /// `call` with the client's short backed-off retry around transport
    /// failures.  Only for *idempotent* requests (reads and queries):
    /// replaying one past an ambiguous failure cannot double-apply anything.
    fn call_idempotent(&self, op: BlockOp, payload: Bytes) -> amoeba_block::Result<Bytes> {
        Self::transact(
            &self.client,
            Request::new(op as u32, self.account, payload),
            FailoverPolicy::Always,
        )
    }
}

impl<T: Transport> BlockStore for RemoteBlockStore<T> {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn allocate(&self) -> amoeba_block::Result<BlockNr> {
        let reply = self.call(BlockOp::Allocate, Bytes::new())?;
        decode_block_nr(reply).ok_or_else(|| BlockError::Io("bad allocate reply".into()))
    }

    fn allocate_at(&self, nr: BlockNr) -> amoeba_block::Result<()> {
        self.call(BlockOp::AllocateAt, encode_block_nr(nr))?;
        Ok(())
    }

    fn free(&self, nr: BlockNr) -> amoeba_block::Result<()> {
        self.call(BlockOp::Free, encode_block_nr(nr))?;
        Ok(())
    }

    fn read(&self, nr: BlockNr) -> amoeba_block::Result<Bytes> {
        self.call_idempotent(BlockOp::Read, encode_block_nr(nr))
    }

    fn write(&self, nr: BlockNr, data: Bytes) -> amoeba_block::Result<()> {
        self.call(BlockOp::Write, encode_block_write(nr, &data))?;
        Ok(())
    }

    fn write_batch(&self, writes: &[(BlockNr, Bytes)]) -> amoeba_block::Result<()> {
        // One WriteBlocks request per frame's worth of blocks: the k-page
        // commit flush of the common case rides a single RPC, stamped with the
        // newest membership epoch this connection has been told about.
        let epoch = self.epoch.load(std::sync::atomic::Ordering::SeqCst);
        for chunk in chunk_block_writes(writes) {
            self.call(BlockOp::WriteBlocks, encode_block_writes(epoch, chunk))?;
        }
        Ok(())
    }

    fn is_allocated(&self, nr: BlockNr) -> bool {
        match self.call_idempotent(BlockOp::IsAllocated, encode_block_nr(nr)) {
            Ok(payload) => payload.first().is_some_and(|&b| b != 0),
            Err(_) => false,
        }
    }

    fn allocated_count(&self) -> usize {
        match self.call_idempotent(BlockOp::AllocatedCount, Bytes::new()) {
            Ok(payload) => decode_block_nr(payload).unwrap_or(0) as usize,
            Err(_) => 0,
        }
    }

    fn stats(&self) -> StoreStats {
        // The remote disk's counters live server-side; this client cannot see
        // them (same contract as `FileStore::io_stats` over RPC).
        StoreStats::default()
    }

    fn allocated_blocks(&self) -> Vec<BlockNr> {
        match self.call_idempotent(BlockOp::AllocatedBlocks, Bytes::new()) {
            Ok(payload) => decode_block_list(payload).unwrap_or_default(),
            Err(_) => Vec::new(),
        }
    }

    fn set_epoch(&self, epoch: u64) {
        // Monotonic: the replica layer re-propagates on every bump, and an
        // out-of-order arrival must never regress the stamp (a regressed stamp
        // would make this coordinator look stale to its own servers).
        self.epoch
            .fetch_max(epoch, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Launches `replicas` block-server processes on `network` over fresh in-memory
/// disks and wires a [`ReplicatedBlockStore`] of [`RemoteBlockStore`]
/// connections over them: the storage tier of one file-service shard, fully
/// behind RPC.  Returns the replica set and the processes (for crash/restart
/// experiments).
pub fn remote_replica_set(
    network: &Arc<LocalNetwork>,
    replicas: usize,
) -> (Arc<ReplicatedBlockStore>, Vec<BlockServerProcess>) {
    let processes: Vec<BlockServerProcess> = (0..replicas)
        .map(|_| {
            BlockServerProcess::start(Arc::clone(network), Arc::new(amoeba_block::MemStore::new()))
        })
        .collect();
    let stores: Vec<Arc<dyn BlockStore>> = processes
        .iter()
        .map(|p| {
            Arc::new(
                RemoteBlockStore::connect(Arc::clone(network), p.port())
                    .expect("connect to freshly started block server"),
            ) as Arc<dyn BlockStore>
        })
        .collect();
    (ReplicatedBlockStore::new(stores), processes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_block::MemStore;

    fn remote() -> (
        Arc<LocalNetwork>,
        BlockServerProcess,
        RemoteBlockStore<Arc<LocalNetwork>>,
    ) {
        let network = Arc::new(LocalNetwork::new());
        let process = BlockServerProcess::start(Arc::clone(&network), Arc::new(MemStore::new()));
        let store = RemoteBlockStore::connect(Arc::clone(&network), process.port()).unwrap();
        (network, process, store)
    }

    #[test]
    fn remote_store_round_trips_the_block_protocol() {
        let (_network, _process, store) = remote();
        assert_eq!(store.block_size(), 36 * 1024);
        let nr = store.allocate().unwrap();
        assert!(store.is_allocated(nr));
        store
            .write(nr, Bytes::from_static(b"over the wire"))
            .unwrap();
        assert_eq!(
            store.read(nr).unwrap(),
            Bytes::from_static(b"over the wire")
        );
        store.allocate_at(nr + 7).unwrap();
        assert_eq!(store.allocated_count(), 2);
        let mut listed = store.allocated_blocks();
        listed.sort_unstable();
        assert_eq!(listed, vec![nr, nr + 7]);
        store.free(nr).unwrap();
        assert_eq!(store.read(nr), Err(BlockError::NoSuchBlock(nr)));
    }

    #[test]
    fn write_batch_is_one_rpc_per_frame() {
        let (network, process, store) = remote();
        let blocks: Vec<BlockNr> = (0..16).map(|_| store.allocate().unwrap()).collect();
        let writes: Vec<(BlockNr, Bytes)> = blocks
            .iter()
            .map(|&nr| (nr, Bytes::from(vec![nr as u8; 64])))
            .collect();
        let before = network.transaction_count();
        store.write_batch(&writes).unwrap();
        assert_eq!(
            network.transaction_count() - before,
            1,
            "16 small blocks must travel as one WriteBlocks request"
        );
        for &nr in &blocks {
            assert_eq!(store.read(nr).unwrap(), Bytes::from(vec![nr as u8; 64]));
        }
        // The server's disk saw one physical write call.
        assert_eq!(process.server().stats().write_calls, 1);
        assert_eq!(process.server().stats().writes, 16);
    }

    #[test]
    fn structured_errors_survive_the_wire() {
        for err in [
            BlockError::NoSuchBlock(7),
            BlockError::Full,
            BlockError::TooLarge {
                got: 40000,
                max: 32768,
            },
            BlockError::AlreadyAllocated(9),
            BlockError::WriteOnce(3),
            BlockError::Locked(1),
            BlockError::Crashed,
            BlockError::Corrupted(12),
            BlockError::WriteCollision(4),
            BlockError::PermissionDenied,
            BlockError::Io("boom".into()),
            BlockError::EpochMismatch {
                sent: 4,
                current: 9,
            },
        ] {
            assert_eq!(decode_block_error(encode_block_error(&err)), err);
        }
    }

    #[test]
    fn a_stale_coordinator_is_rejected_over_the_wire() {
        let (network, process, store) = remote();
        let nr = store.allocate().unwrap();
        // A coordinator at epoch 5 writes: the server adopts the stamp.
        store.set_epoch(5);
        store
            .write_batch(&[(nr, Bytes::from_static(b"fresh"))])
            .unwrap();
        assert_eq!(process.server().epoch(), 5);
        // A second connection still at an older view is turned away whole.
        let stale = RemoteBlockStore::connect(Arc::clone(&network), process.port()).unwrap();
        let theirs = stale.allocate().unwrap();
        stale.set_epoch(3);
        assert_eq!(
            stale.write_batch(&[(theirs, Bytes::from_static(b"stale"))]),
            Err(BlockError::EpochMismatch {
                sent: 3,
                current: 5
            })
        );
        // The stamp is monotonic client-side too: catching up heals it.
        stale.set_epoch(5);
        stale
            .write_batch(&[(theirs, Bytes::from_static(b"caught up"))])
            .unwrap();
        assert_eq!(
            stale.read(theirs).unwrap(),
            Bytes::from_static(b"caught up")
        );
    }

    #[test]
    fn crashed_process_reads_as_a_crashed_disk() {
        let (_network, process, store) = remote();
        let nr = store.allocate().unwrap();
        store.write(nr, Bytes::from_static(b"before")).unwrap();
        process.crash();
        assert_eq!(store.read(nr), Err(BlockError::Crashed));
        assert_eq!(
            store.write(nr, Bytes::from_static(b"nope")),
            Err(BlockError::Crashed)
        );
        assert!(!store.is_allocated(nr), "a dead process answers nothing");
        process.restart();
        assert_eq!(store.read(nr).unwrap(), Bytes::from_static(b"before"));
    }

    #[test]
    fn forged_account_is_rejected_remotely() {
        let (network, process, store) = remote();
        let nr = store.allocate().unwrap();
        // A second client with its own account cannot touch the first's block.
        let intruder = RemoteBlockStore::connect(Arc::clone(&network), process.port()).unwrap();
        assert_eq!(
            intruder.write(nr, Bytes::from_static(b"steal")),
            Err(BlockError::PermissionDenied)
        );
    }

    #[test]
    fn remote_replica_set_survives_a_process_crash_mid_stream() {
        let network = Arc::new(LocalNetwork::new());
        let (replicas, processes) = remote_replica_set(&network, 3);
        let nr = replicas.allocate().unwrap();
        replicas.write(nr, Bytes::from_static(b"v1")).unwrap();
        // Kill one block-server process; the quorum fan-out acks on the two
        // survivors while the corpse is auto-downed with the batch queued.
        processes[1].crash();
        let blocks: Vec<BlockNr> = (0..4).map(|_| replicas.allocate().unwrap()).collect();
        let writes: Vec<(BlockNr, Bytes)> = blocks
            .iter()
            .map(|&b| (b, Bytes::from_static(b"v2")))
            .collect();
        replicas.write_batch(&writes).unwrap();
        // The ack needed only the surviving majority: drain the corpse's
        // worker before asserting it was deposed.
        replicas.quiesce();
        assert!(replicas.is_down(1));
        assert!(replicas.replica_stats().intentions_recorded >= 4);

        processes[1].restart();
        replicas.resync(1).unwrap();
        assert!(
            replicas.divergent_blocks().is_empty(),
            "resync over RPC restores replica agreement"
        );
    }
}
