//! Request dispatch: one incoming transaction → one file-service call.
//!
//! The handler is also where the lease protocol touches the request path,
//! in exactly two places:
//!
//! * `ValidateCache` from a connected client (one with a
//!   [`CallbackChannel`]) registers a lease *before* reading the current
//!   version and puts the ttl on the reply — grant-then-read means a commit
//!   racing the validation either blocks the grant (settling) or breaks it,
//!   never leaves a lease covering a stale answer;
//! * `Commit` settles the file's leases (break + await acks) before the
//!   service commits, so no client can still be serving the old value under
//!   a lease once the commit is acknowledged.

use std::sync::Arc;

use bytes::{Buf, Bytes, BytesMut};

use afs_core::{FileService, FsError};
use amoeba_rpc::{CallbackChannel, Reply, Request, RequestHandler};

use crate::lease::LeaseManager;
use crate::ops::{
    decode_insert, decode_path, decode_path_and_data, decode_paths, decode_writes,
    encode_capability, encode_error, encode_pages_reply, encode_receipt, encode_validation,
    protocol_error, serve_read_batch, FsOp,
};

/// The service-side handler: decodes requests, calls the file service, encodes
/// replies.  Stateless apart from the shared `Arc<FileService>` and the shared
/// [`LeaseManager`], so any number of handler instances (server processes) can
/// serve the same file service — they MUST then share one lease manager, or a
/// commit through one port would not see leases granted through another.
pub struct FileServerHandler {
    service: Arc<FileService>,
    lease: Arc<LeaseManager>,
}

impl FileServerHandler {
    /// Creates a handler over the shared file-service state with its own
    /// default lease manager.
    pub fn new(service: Arc<FileService>) -> Self {
        Self::with_lease_manager(service, Arc::new(LeaseManager::new()))
    }

    /// Creates a handler sharing an existing lease manager — what a server
    /// group does so every replica process settles the same grant table.
    pub fn with_lease_manager(service: Arc<FileService>, lease: Arc<LeaseManager>) -> Self {
        FileServerHandler { service, lease }
    }

    /// The lease manager this handler grants from.
    pub fn lease_manager(&self) -> &Arc<LeaseManager> {
        &self.lease
    }

    fn dispatch(
        &self,
        request: Request,
        peer: Option<&Arc<dyn CallbackChannel>>,
    ) -> Result<Bytes, Reply> {
        let op = FsOp::from_u32(request.op)
            .ok_or_else(|| Reply::error(protocol_error("unknown operation")))?;
        let fs_err = |e: FsError| Reply::error(encode_error(&e));
        let bad_args = || Reply::error(protocol_error("bad arguments"));
        match op {
            FsOp::CreateFile => {
                let cap = self.service.create_file().map_err(fs_err)?;
                Ok(encode_capability(&cap))
            }
            FsOp::CreateVersion => {
                let cap = self.service.create_version(&request.cap).map_err(fs_err)?;
                Ok(encode_capability(&cap))
            }
            FsOp::ReadPage => {
                let mut payload = request.payload;
                let path = decode_path(&mut payload).ok_or_else(bad_args)?;
                let data = self
                    .service
                    .read_page(&request.cap, &path)
                    .map_err(fs_err)?;
                Ok(data)
            }
            FsOp::WritePage => {
                let (path, data) = decode_path_and_data(request.payload).ok_or_else(bad_args)?;
                self.service
                    .write_page(&request.cap, &path, data)
                    .map_err(fs_err)?;
                Ok(Bytes::new())
            }
            FsOp::AppendPage => {
                let (path, data) = decode_path_and_data(request.payload).ok_or_else(bad_args)?;
                let new_path = self
                    .service
                    .append_page(&request.cap, &path, data)
                    .map_err(fs_err)?;
                let mut buf = BytesMut::new();
                crate::ops::encode_path(&mut buf, &new_path);
                Ok(buf.freeze())
            }
            FsOp::InsertPage => {
                let (parent, index, data) = decode_insert(request.payload).ok_or_else(bad_args)?;
                let new_path = self
                    .service
                    .insert_page(&request.cap, &parent, index, data)
                    .map_err(fs_err)?;
                let mut buf = BytesMut::new();
                crate::ops::encode_path(&mut buf, &new_path);
                Ok(buf.freeze())
            }
            FsOp::RemovePage => {
                let mut payload = request.payload;
                let path = decode_path(&mut payload).ok_or_else(bad_args)?;
                self.service
                    .remove_page(&request.cap, &path)
                    .map_err(fs_err)?;
                Ok(Bytes::new())
            }
            FsOp::ReadPages => {
                let paths = decode_paths(request.payload).ok_or_else(bad_args)?;
                let pages =
                    serve_read_batch(&paths, |path| self.service.read_page(&request.cap, path))
                        .map_err(fs_err)?;
                Ok(encode_pages_reply(&pages))
            }
            FsOp::WritePages => {
                let writes = decode_writes(request.payload).ok_or_else(bad_args)?;
                for (path, data) in writes {
                    self.service
                        .write_page(&request.cap, &path, data)
                        .map_err(fs_err)?;
                }
                Ok(Bytes::new())
            }
            FsOp::Commit => {
                // Settle the file's leases BEFORE committing: every holder
                // acks the break (or its grant expires) first, so once the
                // commit returns no lease anywhere still covers the old
                // current version.  The settling mark stays up until after
                // the commit (guard drop), refusing new grants meanwhile.
                let _settle = self
                    .service
                    .file_of_version(&request.cap)
                    .ok()
                    .map(|object| self.lease.settle(object, request.cap.port));
                let receipt = self.service.commit(&request.cap).map_err(fs_err)?;
                Ok(encode_receipt(&receipt))
            }
            FsOp::Abort => {
                self.service.abort_version(&request.cap).map_err(fs_err)?;
                Ok(Bytes::new())
            }
            FsOp::CurrentVersion => {
                let cap = self.service.current_version(&request.cap).map_err(fs_err)?;
                Ok(encode_capability(&cap))
            }
            FsOp::ReadCommittedPage => {
                let mut payload = request.payload;
                let path = decode_path(&mut payload).ok_or_else(bad_args)?;
                let data = self
                    .service
                    .read_committed_page(&request.cap, &path)
                    .map_err(fs_err)?;
                Ok(data)
            }
            FsOp::ValidateCache => {
                let mut payload = request.payload;
                if payload.remaining() < 4 {
                    return Err(bad_args());
                }
                let cached_block = payload.get_u32_le();
                // The capability must resolve before any side effect: an
                // invalid or unauthorized cap must not plant a grant on an
                // arbitrary object id that later committing writers would
                // have to break and wait on (the client never records such
                // a lease — its reply is an error).
                self.service
                    .check_read_capability(&request.cap)
                    .map_err(fs_err)?;
                // Grant BEFORE reading the current version: if a commit
                // settles in between, it finds (and breaks) this grant, so
                // the client can never end up holding an unbroken lease on
                // an answer the commit obsoleted.  Granting after the read
                // would leave exactly that window.
                let ttl_ms = peer
                    .and_then(|channel| self.lease.grant(request.cap.object, channel))
                    .unwrap_or(0);
                let validation = self
                    .service
                    .validate_cache(&request.cap, cached_block)
                    .map_err(fs_err)?;
                Ok(encode_validation(
                    validation.up_to_date,
                    validation.current_block,
                    &validation.discard,
                    ttl_ms,
                ))
            }
        }
    }
}

impl RequestHandler for FileServerHandler {
    fn handle(&self, request: Request) -> Reply {
        match self.dispatch(request, None) {
            Ok(payload) => Reply::ok(payload),
            Err(error_reply) => error_reply,
        }
    }

    fn handle_from(&self, request: Request, peer: Option<&Arc<dyn CallbackChannel>>) -> Reply {
        match self.dispatch(request, peer) {
            Ok(payload) => Reply::ok(payload),
            Err(error_reply) => error_reply,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{decode_error, decode_receipt, encode_paths, encode_writes};
    use afs_core::PagePath;
    use amoeba_capability::Capability;

    #[test]
    fn create_file_round_trips_a_capability() {
        let handler = FileServerHandler::new(FileService::in_memory());
        let reply = handler.handle(Request::empty(FsOp::CreateFile as u32, Capability::null()));
        assert!(reply.is_ok());
        assert!(crate::ops::decode_capability(reply.payload).is_some());
    }

    #[test]
    fn unknown_ops_and_bad_caps_are_errors() {
        let handler = FileServerHandler::new(FileService::in_memory());
        let reply = handler.handle(Request::empty(999, Capability::null()));
        assert!(!reply.is_ok());
        assert!(matches!(decode_error(reply.payload), FsError::Protocol(_)));
        let reply = handler.handle(Request::empty(
            FsOp::CreateVersion as u32,
            Capability::null(),
        ));
        assert!(!reply.is_ok());
        assert_eq!(decode_error(reply.payload), FsError::PermissionDenied);
    }

    #[test]
    fn commit_reply_carries_the_receipt() {
        let service = FileService::in_memory();
        let handler = FileServerHandler::new(Arc::clone(&service));
        let file = service.create_file().unwrap();
        let version = service.create_version(&file).unwrap();
        let reply = handler.handle(Request::empty(FsOp::Commit as u32, version));
        assert!(reply.is_ok());
        let receipt = decode_receipt(reply.payload).unwrap();
        assert!(receipt.fast_path);
    }

    #[test]
    fn invalid_caps_plant_no_lease_grant() {
        use amoeba_capability::Port;
        use bytes::BufMut;

        struct NullChannel;
        impl CallbackChannel for NullChannel {
            fn push(&self, _port: Port, _payload: Bytes) -> Option<u64> {
                Some(1)
            }
            fn wait_acked(&self, _ticket: u64, _deadline: std::time::Instant) -> bool {
                true
            }
            fn peer_key(&self) -> u64 {
                1
            }
            fn is_closed(&self) -> bool {
                false
            }
        }

        let service = FileService::in_memory();
        let handler = FileServerHandler::new(Arc::clone(&service));
        let channel: Arc<dyn CallbackChannel> = Arc::new(NullChannel);
        let validate = |cap: Capability| {
            let mut payload = BytesMut::new();
            payload.put_u32_le(0);
            handler.handle_from(
                Request::new(FsOp::ValidateCache as u32, cap, payload.freeze()),
                Some(&channel),
            )
        };

        // A forged capability is refused before any grant is registered: no
        // committing writer must ever break or wait on it.
        let bogus = Capability::null();
        let reply = validate(bogus.clone());
        assert!(!reply.is_ok());
        assert_eq!(handler.lease_manager().granted_total(), 0);
        assert_eq!(handler.lease_manager().live_grants(bogus.object), 0);

        // A genuine capability still grants.
        let file = service.create_file().unwrap();
        assert!(validate(file.clone()).is_ok());
        assert_eq!(handler.lease_manager().granted_total(), 1);
        assert_eq!(handler.lease_manager().live_grants(file.object), 1);
    }

    #[test]
    fn batched_ops_dispatch() {
        let service = FileService::in_memory();
        let handler = FileServerHandler::new(Arc::clone(&service));
        let file = service.create_file().unwrap();
        let setup = service.create_version(&file).unwrap();
        let paths: Vec<PagePath> = (0..3u8)
            .map(|i| {
                service
                    .append_page(&setup, &PagePath::root(), Bytes::from(vec![i]))
                    .unwrap()
            })
            .collect();
        service.commit(&setup).unwrap();
        let version = service.create_version(&file).unwrap();

        let writes: Vec<(PagePath, Bytes)> = paths
            .iter()
            .map(|p| (p.clone(), Bytes::from_static(b"batch")))
            .collect();
        let reply = handler.handle(Request::new(
            FsOp::WritePages as u32,
            version,
            encode_writes(&writes),
        ));
        assert!(reply.is_ok());

        let reply = handler.handle(Request::new(
            FsOp::ReadPages as u32,
            version,
            encode_paths(&paths),
        ));
        assert!(reply.is_ok());
        let pages = crate::ops::decode_pages_reply(reply.payload).unwrap();
        assert_eq!(pages.len(), 3);
        assert!(pages.iter().all(|p| p == &Bytes::from_static(b"batch")));
    }
}
