//! Request dispatch: one incoming transaction → one file-service call.

use std::sync::Arc;

use bytes::{Buf, Bytes, BytesMut};

use afs_core::FileService;
use amoeba_rpc::{Reply, Request, RequestHandler};

use crate::ops::{
    decode_path, decode_path_and_data, encode_capability, encode_error, encode_validation, FsOp,
};

/// The service-side handler: decodes requests, calls the file service, encodes
/// replies.  Stateless apart from the shared `Arc<FileService>`, so any number of
/// handler instances (server processes) can serve the same file service.
pub struct FileServerHandler {
    service: Arc<FileService>,
}

impl FileServerHandler {
    /// Creates a handler over the shared file-service state.
    pub fn new(service: Arc<FileService>) -> Self {
        FileServerHandler { service }
    }

    fn dispatch(&self, request: Request) -> Result<Bytes, Reply> {
        let op = FsOp::from_u32(request.op)
            .ok_or_else(|| Reply::error(Bytes::from_static(b"\0unknown operation")))?;
        let fs_err = |e: afs_core::FsError| Reply::error(encode_error(&e));
        match op {
            FsOp::CreateFile => {
                let cap = self.service.create_file().map_err(fs_err)?;
                Ok(encode_capability(&cap))
            }
            FsOp::CreateVersion => {
                let cap = self.service.create_version(&request.cap).map_err(fs_err)?;
                Ok(encode_capability(&cap))
            }
            FsOp::ReadPage => {
                let mut payload = request.payload;
                let path = decode_path(&mut payload)
                    .ok_or_else(|| Reply::error(Bytes::from_static(b"\0bad path")))?;
                let data = self.service.read_page(&request.cap, &path).map_err(fs_err)?;
                Ok(data)
            }
            FsOp::WritePage => {
                let (path, data) = decode_path_and_data(request.payload)
                    .ok_or_else(|| Reply::error(Bytes::from_static(b"\0bad arguments")))?;
                self.service
                    .write_page(&request.cap, &path, data)
                    .map_err(fs_err)?;
                Ok(Bytes::new())
            }
            FsOp::AppendPage => {
                let (path, data) = decode_path_and_data(request.payload)
                    .ok_or_else(|| Reply::error(Bytes::from_static(b"\0bad arguments")))?;
                let new_path = self
                    .service
                    .append_page(&request.cap, &path, data)
                    .map_err(fs_err)?;
                let mut buf = BytesMut::new();
                crate::ops::encode_path(&mut buf, &new_path);
                Ok(buf.freeze())
            }
            FsOp::Commit => {
                self.service.commit(&request.cap).map_err(fs_err)?;
                Ok(Bytes::new())
            }
            FsOp::Abort => {
                self.service.abort_version(&request.cap).map_err(fs_err)?;
                Ok(Bytes::new())
            }
            FsOp::CurrentVersion => {
                let cap = self.service.current_version(&request.cap).map_err(fs_err)?;
                Ok(encode_capability(&cap))
            }
            FsOp::ReadCommittedPage => {
                let mut payload = request.payload;
                let path = decode_path(&mut payload)
                    .ok_or_else(|| Reply::error(Bytes::from_static(b"\0bad path")))?;
                let data = self
                    .service
                    .read_committed_page(&request.cap, &path)
                    .map_err(fs_err)?;
                Ok(data)
            }
            FsOp::ValidateCache => {
                let mut payload = request.payload;
                if payload.remaining() < 4 {
                    return Err(Reply::error(Bytes::from_static(b"\0bad arguments")));
                }
                let cached_block = payload.get_u32_le();
                let validation = self
                    .service
                    .validate_cache(&request.cap, cached_block)
                    .map_err(fs_err)?;
                Ok(encode_validation(
                    validation.up_to_date,
                    validation.current_block,
                    &validation.discard,
                ))
            }
        }
    }
}

impl RequestHandler for FileServerHandler {
    fn handle(&self, request: Request) -> Reply {
        match self.dispatch(request) {
            Ok(payload) => Reply::ok(payload),
            Err(error_reply) => error_reply,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_capability::Capability;

    #[test]
    fn create_file_round_trips_a_capability() {
        let handler = FileServerHandler::new(FileService::in_memory());
        let reply = handler.handle(Request::empty(FsOp::CreateFile as u32, Capability::null()));
        assert!(reply.is_ok());
        assert!(crate::ops::decode_capability(reply.payload).is_some());
    }

    #[test]
    fn unknown_ops_and_bad_caps_are_errors() {
        let handler = FileServerHandler::new(FileService::in_memory());
        let reply = handler.handle(Request::empty(999, Capability::null()));
        assert!(!reply.is_ok());
        let reply = handler.handle(Request::empty(FsOp::CreateVersion as u32, Capability::null()));
        assert!(!reply.is_ok());
    }
}
