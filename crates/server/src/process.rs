//! Server processes and replicated server groups.

use std::sync::Arc;

use afs_core::FileService;
use amoeba_capability::Port;
use amoeba_rpc::LocalNetwork;

use crate::handler::FileServerHandler;

/// One file-server process: a port on the network behind which a handler serves the
/// shared file-service state.  Crashing the process makes the port unreachable; the
/// data (and any companion processes) are unaffected.
pub struct ServerProcess {
    port: Port,
    network: Arc<LocalNetwork>,
    service: Arc<FileService>,
}

impl ServerProcess {
    /// Starts a server process on a fresh port of `network`.
    pub fn start(network: Arc<LocalNetwork>, service: Arc<FileService>) -> Self {
        let port = Port::random();
        network.register(port, Arc::new(FileServerHandler::new(Arc::clone(&service))));
        ServerProcess {
            port,
            network,
            service,
        }
    }

    /// The port clients address this process by.
    pub fn port(&self) -> Port {
        self.port
    }

    /// Simulates a crash of this server process: it stops answering requests.
    /// Committed data is untouched because it lives in the block service.
    pub fn crash(&self) {
        self.network.isolate(self.port);
    }

    /// Restarts the process after a crash.  No recovery work is needed beyond
    /// becoming reachable again — the paper's central robustness claim.
    pub fn restart(&self) {
        self.network.restore(self.port);
    }

    /// The underlying shared file service (e.g. for reporting crashed lock holders).
    pub fn service(&self) -> &Arc<FileService> {
        &self.service
    }
}

/// A group of replicated server processes serving the same file service, as in
/// §5.4.1: "version access and file access can be guaranteed as long as one or more
/// servers are operational".
pub struct ServerGroup {
    processes: Vec<ServerProcess>,
}

impl ServerGroup {
    /// Starts `replicas` processes over one shared file service.
    pub fn start(network: &Arc<LocalNetwork>, service: &Arc<FileService>, replicas: usize) -> Self {
        let processes = (0..replicas)
            .map(|_| ServerProcess::start(Arc::clone(network), Arc::clone(service)))
            .collect();
        ServerGroup { processes }
    }

    /// The ports of all replicas, in preference order.
    pub fn ports(&self) -> Vec<Port> {
        self.processes.iter().map(ServerProcess::port).collect()
    }

    /// Access to an individual replica.
    pub fn process(&self, idx: usize) -> &ServerProcess {
        &self.processes[idx]
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// True if the group has no replicas.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{decode_capability, FsOp};
    use amoeba_capability::Capability;
    use amoeba_rpc::{Request, RpcError, Transport};

    #[test]
    fn crashed_process_stops_answering_until_restart() {
        let network = Arc::new(LocalNetwork::new());
        let service = FileService::in_memory();
        let process = ServerProcess::start(Arc::clone(&network), service);
        let request = Request::empty(FsOp::CreateFile as u32, Capability::null());
        assert!(network.transact(process.port(), request.clone()).is_ok());
        process.crash();
        assert_eq!(
            network.transact(process.port(), request.clone()),
            Err(RpcError::ServerCrashed)
        );
        process.restart();
        assert!(network.transact(process.port(), request).is_ok());
    }

    #[test]
    fn replicas_serve_the_same_files() {
        let network = Arc::new(LocalNetwork::new());
        let service = FileService::in_memory();
        let group = ServerGroup::start(&network, &service, 3);
        assert_eq!(group.len(), 3);
        // Create a file through replica 0 and look it up through replica 2.
        let reply = network
            .transact(
                group.ports()[0],
                Request::empty(FsOp::CreateFile as u32, Capability::null()),
            )
            .unwrap();
        let file_cap = decode_capability(reply.payload).unwrap();
        let reply = network
            .transact(
                group.ports()[2],
                Request::empty(FsOp::CurrentVersion as u32, file_cap),
            )
            .unwrap();
        assert!(reply.is_ok());
    }
}
