//! Server processes, replicated server groups, and the sharded multi-server
//! cluster harness.

use std::sync::Arc;

use afs_core::{BlockServer, FileService, ReplicatedBlockStore, ServiceConfig};
use amoeba_capability::Port;
use amoeba_rpc::LocalNetwork;

use crate::handler::FileServerHandler;
use crate::lease::LeaseManager;

/// One file-server process: a port on the network behind which a handler serves the
/// shared file-service state.  Crashing the process makes the port unreachable; the
/// data (and any companion processes) are unaffected.
pub struct ServerProcess {
    port: Port,
    network: Arc<LocalNetwork>,
    service: Arc<FileService>,
    lease: Arc<LeaseManager>,
}

impl ServerProcess {
    /// Starts a server process on a fresh port of `network`, with its own
    /// lease manager (a standalone process is its own one-member group).
    pub fn start(network: Arc<LocalNetwork>, service: Arc<FileService>) -> Self {
        Self::start_with_lease_manager(network, service, Arc::new(LeaseManager::new()))
    }

    /// Starts a server process sharing the group-wide lease manager: a
    /// commit arriving at any process of a group must settle leases granted
    /// through every other, so the grant table cannot be per-process.
    pub fn start_with_lease_manager(
        network: Arc<LocalNetwork>,
        service: Arc<FileService>,
        lease: Arc<LeaseManager>,
    ) -> Self {
        let port = Port::random();
        network.register(
            port,
            Arc::new(FileServerHandler::with_lease_manager(
                Arc::clone(&service),
                Arc::clone(&lease),
            )),
        );
        ServerProcess {
            port,
            network,
            service,
            lease,
        }
    }

    /// The port clients address this process by.
    pub fn port(&self) -> Port {
        self.port
    }

    /// Simulates a crash of this server process: it stops answering requests.
    /// Committed data is untouched because it lives in the block service.
    pub fn crash(&self) {
        self.network.isolate(self.port);
    }

    /// Restarts the process after a crash.  No recovery work is needed beyond
    /// becoming reachable again — the paper's central robustness claim.
    pub fn restart(&self) {
        self.network.restore(self.port);
    }

    /// The underlying shared file service (e.g. for reporting crashed lock holders).
    pub fn service(&self) -> &Arc<FileService> {
        &self.service
    }

    /// The lease manager this process grants from (shared across its group).
    pub fn lease_manager(&self) -> &Arc<LeaseManager> {
        &self.lease
    }
}

/// A group of replicated server processes serving the same file service, as in
/// §5.4.1: "version access and file access can be guaranteed as long as one or more
/// servers are operational".  The group shares one [`LeaseManager`]: leases
/// granted through any member are settled by commits through any other.
pub struct ServerGroup {
    processes: Vec<ServerProcess>,
    lease: Arc<LeaseManager>,
}

impl ServerGroup {
    /// Starts `replicas` processes over one shared file service and one
    /// shared lease manager.
    pub fn start(network: &Arc<LocalNetwork>, service: &Arc<FileService>, replicas: usize) -> Self {
        let lease = Arc::new(LeaseManager::new());
        let processes = (0..replicas)
            .map(|_| {
                ServerProcess::start_with_lease_manager(
                    Arc::clone(network),
                    Arc::clone(service),
                    Arc::clone(&lease),
                )
            })
            .collect();
        ServerGroup { processes, lease }
    }

    /// The group-wide lease manager.
    pub fn lease_manager(&self) -> &Arc<LeaseManager> {
        &self.lease
    }

    /// The ports of all replicas, in preference order.
    pub fn ports(&self) -> Vec<Port> {
        self.processes.iter().map(ServerProcess::port).collect()
    }

    /// Access to an individual replica.
    pub fn process(&self, idx: usize) -> &ServerProcess {
        &self.processes[idx]
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// True if the group has no replicas.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }
}

/// One shard of a [`ShardedCluster`]: a file service over its own replicated
/// block storage, fronted by a group of replicated server processes.
pub struct ClusterShard {
    service: Arc<FileService>,
    replicas: Arc<ReplicatedBlockStore>,
    group: ServerGroup,
    /// The shard's block-server processes when its replica disks live behind
    /// RPC ([`ShardedCluster::launch_remote_storage`]); empty for in-process
    /// disks.
    block_processes: Vec<crate::block::BlockServerProcess>,
}

impl ClusterShard {
    /// The shard's file service (shared by all its server processes).
    pub fn service(&self) -> &Arc<FileService> {
        &self.service
    }

    /// The shard's replica set (for crash/resync experiments).
    pub fn replicas(&self) -> &Arc<ReplicatedBlockStore> {
        &self.replicas
    }

    /// The shard's server-process group.
    pub fn group(&self) -> &ServerGroup {
        &self.group
    }

    /// The shard's block-server processes (empty unless the cluster was
    /// launched with remote storage).
    pub fn block_processes(&self) -> &[crate::block::BlockServerProcess] {
        &self.block_processes
    }
}

/// The paper's full topology as a launchable harness: N independent file-service
/// shards, each storing its blocks on an M-replica [`ReplicatedBlockStore`] and
/// answering on a group of P replicated server processes.  The object-id
/// namespace is partitioned across shards (`FileService::for_shard`), so a
/// client routes every capability to its shard without any directory lookup —
/// see `afs_client::ShardedStore`.
pub struct ShardedCluster {
    shards: Vec<ClusterShard>,
}

impl ShardedCluster {
    /// Launches a cluster on `network`: `shards` file services, each over
    /// `replicas_per_shard` in-memory disks, each served by
    /// `processes_per_shard` server processes.
    pub fn launch(
        network: &Arc<LocalNetwork>,
        shards: usize,
        replicas_per_shard: usize,
        processes_per_shard: usize,
    ) -> Self {
        Self::launch_with_config(
            network,
            shards,
            replicas_per_shard,
            processes_per_shard,
            ServiceConfig::default(),
        )
    }

    /// [`ShardedCluster::launch`] with an explicit per-shard service
    /// configuration (the object-id partition fields are set per shard).
    pub fn launch_with_config(
        network: &Arc<LocalNetwork>,
        shards: usize,
        replicas_per_shard: usize,
        processes_per_shard: usize,
        config: ServiceConfig,
    ) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard");
        let shards = (0..shards)
            .map(|shard| {
                let replicas = ReplicatedBlockStore::in_memory(replicas_per_shard);
                let service = FileService::for_shard(
                    Arc::new(BlockServer::new(Arc::clone(&replicas) as _)),
                    shard,
                    shards,
                    config.clone(),
                );
                let group = ServerGroup::start(network, &service, processes_per_shard);
                ClusterShard {
                    service,
                    replicas,
                    group,
                    block_processes: Vec::new(),
                }
            })
            .collect();
        ShardedCluster { shards }
    }

    /// The paper's topology with the storage tier behind RPC too: each shard's
    /// replica disks are [`crate::block::BlockServerProcess`]es reached through
    /// [`crate::block::RemoteBlockStore`] connections, so every commit flush
    /// travels to each replica as one `WriteBlocks` scatter-gather request.
    /// Crash a block process via [`ClusterShard::block_processes`] and the
    /// shard runs degraded, queueing intentions until the process restarts and
    /// the replica is resynced.
    pub fn launch_remote_storage(
        network: &Arc<LocalNetwork>,
        shards: usize,
        replicas_per_shard: usize,
        processes_per_shard: usize,
        config: ServiceConfig,
    ) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard");
        let shards = (0..shards)
            .map(|shard| {
                let (replicas, block_processes) =
                    crate::block::remote_replica_set(network, replicas_per_shard);
                let service = FileService::for_shard(
                    Arc::new(BlockServer::new(Arc::clone(&replicas) as _)),
                    shard,
                    shards,
                    config.clone(),
                );
                let group = ServerGroup::start(network, &service, processes_per_shard);
                ClusterShard {
                    service,
                    replicas,
                    group,
                    block_processes,
                }
            })
            .collect();
        ShardedCluster { shards }
    }

    /// Number of shards in the cluster.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Access to one shard.
    pub fn shard(&self, idx: usize) -> &ClusterShard {
        &self.shards[idx]
    }

    /// The server ports of every shard, in shard order — the argument
    /// `afs_client::ShardedStore::connect` expects.
    pub fn shard_ports(&self) -> Vec<Vec<Port>> {
        self.shards.iter().map(|s| s.group.ports()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{decode_capability, FsOp};
    use amoeba_capability::Capability;
    use amoeba_rpc::{Request, RpcError, Transport};

    #[test]
    fn crashed_process_stops_answering_until_restart() {
        let network = Arc::new(LocalNetwork::new());
        let service = FileService::in_memory();
        let process = ServerProcess::start(Arc::clone(&network), service);
        let request = Request::empty(FsOp::CreateFile as u32, Capability::null());
        assert!(network.transact(process.port(), request.clone()).is_ok());
        process.crash();
        assert_eq!(
            network.transact(process.port(), request.clone()),
            Err(RpcError::ServerCrashed)
        );
        process.restart();
        assert!(network.transact(process.port(), request).is_ok());
    }

    #[test]
    fn a_sharded_cluster_partitions_the_object_namespace() {
        let network = Arc::new(LocalNetwork::new());
        let cluster = ShardedCluster::launch(&network, 3, 2, 2);
        assert_eq!(cluster.shard_count(), 3);
        assert_eq!(cluster.shard_ports().len(), 3);
        for shard in 0..3 {
            assert_eq!(cluster.shard(shard).group().len(), 2);
            assert_eq!(cluster.shard(shard).replicas().replica_count(), 2);
            // Each shard mints from its own residue class.
            let reply = network
                .transact(
                    cluster.shard(shard).group().ports()[0],
                    Request::empty(FsOp::CreateFile as u32, Capability::null()),
                )
                .unwrap();
            let cap = decode_capability(reply.payload).unwrap();
            assert_eq!(
                amoeba_capability::shard_of(&cap, 3),
                shard,
                "object {} minted by shard {shard} does not route home",
                cap.object
            );
        }
    }

    #[test]
    fn replicas_serve_the_same_files() {
        let network = Arc::new(LocalNetwork::new());
        let service = FileService::in_memory();
        let group = ServerGroup::start(&network, &service, 3);
        assert_eq!(group.len(), 3);
        // Create a file through replica 0 and look it up through replica 2.
        let reply = network
            .transact(
                group.ports()[0],
                Request::empty(FsOp::CreateFile as u32, Capability::null()),
            )
            .unwrap();
        let file_cap = decode_capability(reply.payload).unwrap();
        let reply = network
            .transact(
                group.ports()[2],
                Request::empty(FsOp::CurrentVersion as u32, file_cap),
            )
            .unwrap();
        assert!(reply.is_ok());
    }
}
