//! Operation codes and argument marshalling for the file-service protocol.
//!
//! Errors travel as a one-byte code plus optional detail so the client can
//! reconstruct a structured [`FsError`]; operations without a structured
//! encoding fall back to [`FsError::Remote`] carrying the error text.  The
//! batched `ReadPages`/`WritePages` operations let a k-page update cost O(1)
//! transport round trips instead of O(k); a server bounds each `ReadPages`
//! reply to one transport frame and reports how many entries it served, and the
//! client stub iterates over the remainder (still one round trip in the common
//! small-page case).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use afs_core::{CommitReceipt, FsError, PagePath};
use amoeba_capability::Capability;
use amoeba_rpc::MAX_PAYLOAD;

/// Operations the file server understands.  The capability in the request names the
/// file or version operated on; the payload carries the remaining arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum FsOp {
    /// Create a new file.  Reply: file capability.
    CreateFile = 1,
    /// Create a new version of the file named by the request capability.
    /// Reply: version capability.
    CreateVersion = 2,
    /// Read a page of an uncommitted version.  Payload: path.  Reply: data.
    ReadPage = 3,
    /// Write a page of an uncommitted version.  Payload: path + data.
    WritePage = 4,
    /// Append a page under a parent.  Payload: path + data.  Reply: new path.
    AppendPage = 5,
    /// Commit the version named by the request capability.  Reply: receipt.
    Commit = 6,
    /// Abort the version named by the request capability.
    Abort = 7,
    /// Get the current version of a file.  Reply: version capability.
    CurrentVersion = 8,
    /// Read a page of a committed version.  Payload: path.  Reply: data.
    ReadCommittedPage = 9,
    /// Validate a cache entry.  Payload: cached version block (u32).
    /// Reply: up-to-date flag, current block, changed paths.
    ValidateCache = 10,
    /// Read a batch of pages of an uncommitted version.  Payload: paths.
    /// Reply: served count + data per served path (a prefix of the request,
    /// bounded by the transport frame; the client iterates for the rest).
    ReadPages = 11,
    /// Write a batch of pages of an uncommitted version.
    /// Payload: (path, data) pairs.
    WritePages = 12,
    /// Insert a page at an index under a parent.  Payload: path + u16 index +
    /// data.  Reply: new path.
    InsertPage = 13,
    /// Remove the page (and subtree) at a path.  Payload: path.
    RemovePage = 14,
}

impl FsOp {
    /// Decodes an operation code.
    pub fn from_u32(v: u32) -> Option<FsOp> {
        Some(match v {
            1 => FsOp::CreateFile,
            2 => FsOp::CreateVersion,
            3 => FsOp::ReadPage,
            4 => FsOp::WritePage,
            5 => FsOp::AppendPage,
            6 => FsOp::Commit,
            7 => FsOp::Abort,
            8 => FsOp::CurrentVersion,
            9 => FsOp::ReadCommittedPage,
            10 => FsOp::ValidateCache,
            11 => FsOp::ReadPages,
            12 => FsOp::WritePages,
            13 => FsOp::InsertPage,
            14 => FsOp::RemovePage,
            _ => return None,
        })
    }
}

/// The unified file-service error, re-exported so existing
/// `afs_server::ServerError` users keep compiling: the historical client-side
/// error enum has been absorbed into [`afs_core::FsError`] (its
/// `Remote`/`Protocol`/`Transport` variants).
pub type ServerError = FsError;

// ---------------------------------------------------------------------------
// Error marshalling: one code byte + detail.
// ---------------------------------------------------------------------------

const ERR_REMOTE: u8 = 0;
const ERR_CONFLICT: u8 = 1;
const ERR_PERMISSION: u8 = 2;
const ERR_NO_FILE: u8 = 3;
const ERR_NO_VERSION: u8 = 4;
const ERR_NO_PAGE: u8 = 5;
const ERR_ALREADY_COMMITTED: u8 = 6;
const ERR_NOT_COMMITTED: u8 = 7;
const ERR_WOULD_BLOCK: u8 = 8;
const ERR_LOCK_TIMEOUT: u8 = 9;
const ERR_WRONG_KIND: u8 = 10;
const ERR_PAGE_TOO_LARGE: u8 = 11;
const ERR_PROTOCOL: u8 = 12;

/// Encodes a file-service error into an error-reply payload.
pub fn encode_error(err: &FsError) -> Bytes {
    let mut buf = BytesMut::new();
    match err {
        FsError::SerialisabilityConflict => buf.put_u8(ERR_CONFLICT),
        FsError::PermissionDenied => buf.put_u8(ERR_PERMISSION),
        FsError::NoSuchFile => buf.put_u8(ERR_NO_FILE),
        FsError::NoSuchVersion => buf.put_u8(ERR_NO_VERSION),
        FsError::NoSuchPage(path) => {
            buf.put_u8(ERR_NO_PAGE);
            buf.put_slice(path.as_bytes());
        }
        FsError::AlreadyCommitted => buf.put_u8(ERR_ALREADY_COMMITTED),
        FsError::NotCommitted => buf.put_u8(ERR_NOT_COMMITTED),
        FsError::WouldBlock => buf.put_u8(ERR_WOULD_BLOCK),
        FsError::LockTimeout => buf.put_u8(ERR_LOCK_TIMEOUT),
        FsError::WrongFileKind => buf.put_u8(ERR_WRONG_KIND),
        FsError::PageTooLarge(n) => {
            buf.put_u8(ERR_PAGE_TOO_LARGE);
            buf.put_u32_le(*n as u32);
        }
        FsError::Protocol(msg) => {
            buf.put_u8(ERR_PROTOCOL);
            buf.put_slice(msg.as_bytes());
        }
        // Errors without a structured wire form travel as text.
        other => {
            buf.put_u8(ERR_REMOTE);
            buf.put_slice(other.to_string().as_bytes());
        }
    }
    buf.freeze()
}

/// Convenience: an error reply carrying a protocol complaint about a request.
pub fn protocol_error(msg: &str) -> Bytes {
    encode_error(&FsError::Protocol(msg.into()))
}

/// Decodes an error-reply payload back into a [`FsError`].
pub fn decode_error(mut payload: Bytes) -> FsError {
    if payload.is_empty() {
        return FsError::Protocol("empty error reply".into());
    }
    let code = payload.get_u8();
    let text = || String::from_utf8_lossy(&payload).into_owned();
    match code {
        ERR_CONFLICT => FsError::SerialisabilityConflict,
        ERR_PERMISSION => FsError::PermissionDenied,
        ERR_NO_FILE => FsError::NoSuchFile,
        ERR_NO_VERSION => FsError::NoSuchVersion,
        ERR_NO_PAGE => FsError::NoSuchPage(text()),
        ERR_ALREADY_COMMITTED => FsError::AlreadyCommitted,
        ERR_NOT_COMMITTED => FsError::NotCommitted,
        ERR_WOULD_BLOCK => FsError::WouldBlock,
        ERR_LOCK_TIMEOUT => FsError::LockTimeout,
        ERR_WRONG_KIND => FsError::WrongFileKind,
        ERR_PAGE_TOO_LARGE => {
            if payload.remaining() >= 4 {
                FsError::PageTooLarge(payload.get_u32_le() as usize)
            } else {
                FsError::Protocol("truncated PageTooLarge detail".into())
            }
        }
        ERR_PROTOCOL => FsError::Protocol(text()),
        _ => FsError::Remote(text()),
    }
}

// ---------------------------------------------------------------------------
// Argument marshalling.
// ---------------------------------------------------------------------------

/// Encodes a page path.
pub fn encode_path(buf: &mut BytesMut, path: &PagePath) {
    buf.put_u16_le(path.indices().len() as u16);
    for &index in path.indices() {
        buf.put_u16_le(index);
    }
}

/// Bytes an encoded path occupies on the wire.
pub fn encoded_path_len(path: &PagePath) -> usize {
    2 + path.indices().len() * 2
}

/// Decodes a page path.
pub fn decode_path(buf: &mut Bytes) -> Option<PagePath> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len * 2 {
        return None;
    }
    let mut indices = Vec::with_capacity(len);
    for _ in 0..len {
        indices.push(buf.get_u16_le());
    }
    Some(PagePath::new(indices))
}

/// Encodes a path followed by raw page data (the `WritePage`/`AppendPage` payload).
pub fn encode_path_and_data(path: &PagePath, data: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_path_len(path) + data.len());
    encode_path(&mut buf, path);
    buf.put_slice(data);
    buf.freeze()
}

/// Decodes a path followed by raw page data.
pub fn decode_path_and_data(mut payload: Bytes) -> Option<(PagePath, Bytes)> {
    let path = decode_path(&mut payload)?;
    Some((path, payload))
}

/// Encodes the `InsertPage` payload: parent path, insertion index, page data.
pub fn encode_insert(parent: &PagePath, index: u16, data: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_path_len(parent) + 2 + data.len());
    encode_path(&mut buf, parent);
    buf.put_u16_le(index);
    buf.put_slice(data);
    buf.freeze()
}

/// Decodes the `InsertPage` payload.
pub fn decode_insert(mut payload: Bytes) -> Option<(PagePath, u16, Bytes)> {
    let parent = decode_path(&mut payload)?;
    if payload.remaining() < 2 {
        return None;
    }
    let index = payload.get_u16_le();
    Some((parent, index, payload))
}

/// Encodes a batch of paths (the `ReadPages` request payload).
pub fn encode_paths(paths: &[PagePath]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(paths.len() as u32);
    for path in paths {
        encode_path(&mut buf, path);
    }
    buf.freeze()
}

/// Decodes a batch of paths.
pub fn decode_paths(mut payload: Bytes) -> Option<Vec<PagePath>> {
    if payload.remaining() < 4 {
        return None;
    }
    let count = payload.get_u32_le() as usize;
    let mut paths = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        paths.push(decode_path(&mut payload)?);
    }
    Some(paths)
}

/// Encodes the `ReadPages` reply: how many request entries were served (a
/// prefix of the request batch) followed by a length-prefixed data blob per
/// served entry.
pub fn encode_pages_reply(pages: &[Bytes]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(pages.len() as u32);
    for data in pages {
        buf.put_u32_le(data.len() as u32);
        buf.put_slice(data);
    }
    buf.freeze()
}

/// Decodes the `ReadPages` reply.
pub fn decode_pages_reply(mut payload: Bytes) -> Option<Vec<Bytes>> {
    if payload.remaining() < 4 {
        return None;
    }
    let count = payload.get_u32_le() as usize;
    let mut pages = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        if payload.remaining() < 4 {
            return None;
        }
        let len = payload.get_u32_le() as usize;
        if payload.remaining() < len {
            return None;
        }
        pages.push(payload.slice(..len));
        payload.advance(len);
    }
    Some(pages)
}

/// Encodes a batch of page writes (the `WritePages` request payload).
pub fn encode_writes(writes: &[(PagePath, Bytes)]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(writes.len() as u32);
    for (path, data) in writes {
        encode_path(&mut buf, path);
        buf.put_u32_le(data.len() as u32);
        buf.put_slice(data);
    }
    buf.freeze()
}

/// Bytes one write entry occupies in a `WritePages` payload.
pub fn encoded_write_len(path: &PagePath, data: &Bytes) -> usize {
    encoded_path_len(path) + 4 + data.len()
}

/// Decodes a batch of page writes.
pub fn decode_writes(mut payload: Bytes) -> Option<Vec<(PagePath, Bytes)>> {
    if payload.remaining() < 4 {
        return None;
    }
    let count = payload.get_u32_le() as usize;
    let mut writes = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let path = decode_path(&mut payload)?;
        if payload.remaining() < 4 {
            return None;
        }
        let len = payload.get_u32_le() as usize;
        if payload.remaining() < len {
            return None;
        }
        writes.push((path, payload.slice(..len)));
        payload.advance(len);
    }
    Some(writes)
}

/// How many `ReadPages` reply bytes a server packs into one reply frame.
pub const READ_BATCH_REPLY_BUDGET: usize = MAX_PAYLOAD;

/// Serves a `ReadPages` request within the reply-frame budget: reads pages in
/// request order until adding another page would overflow the budget, always
/// serving at least one.  Returns the served prefix.
///
/// A page's size is only known after reading it, so the page that overflows the
/// budget is read, dropped from this reply, and read again when the client
/// requests the remainder — one duplicated page read per split boundary.  The
/// extra read-set flags it records are the ones the client's follow-up request
/// would set anyway, so semantics are unaffected; only batches of pages too
/// large to share a frame (which gain little from batching) pay the cost.
pub fn serve_read_batch(
    paths: &[PagePath],
    mut read: impl FnMut(&PagePath) -> Result<Bytes, FsError>,
) -> Result<Vec<Bytes>, FsError> {
    let mut pages = Vec::new();
    let mut used = 0usize;
    for path in paths {
        let data = read(path)?;
        let entry = 4 + data.len();
        if !pages.is_empty() && used + entry > READ_BATCH_REPLY_BUDGET {
            break;
        }
        used += entry;
        pages.push(data);
    }
    Ok(pages)
}

/// Encodes a capability as a reply payload.
pub fn encode_capability(cap: &Capability) -> Bytes {
    let mut buf = BytesMut::with_capacity(25);
    cap.encode(&mut buf);
    buf.freeze()
}

/// Decodes a capability from a reply payload.
pub fn decode_capability(mut payload: Bytes) -> Option<Capability> {
    Capability::decode(&mut payload)
}

/// Encodes a commit receipt as the `Commit` reply payload.
pub fn encode_receipt(receipt: &CommitReceipt) -> Bytes {
    let mut buf = BytesMut::with_capacity(13);
    buf.put_u8(u8::from(receipt.fast_path));
    buf.put_u32_le(receipt.validations);
    buf.put_u64_le(receipt.pages_compared as u64);
    buf.freeze()
}

/// Decodes a commit receipt.
pub fn decode_receipt(mut payload: Bytes) -> Option<CommitReceipt> {
    if payload.remaining() < 13 {
        return None;
    }
    Some(CommitReceipt {
        fast_path: payload.get_u8() != 0,
        validations: payload.get_u32_le(),
        pages_compared: payload.get_u64_le() as usize,
    })
}

/// Encodes a cache-validation result.  `lease_ttl_ms` is the duration of the
/// lease granted on this reply (0 = no lease): the wire deliberately carries
/// a *relative* ttl, never an absolute expiry, so client and server clocks
/// only need bounded drift, not synchronisation — each side starts its own
/// countdown, and the client's starts earlier (before the request was sent)
/// so it always gives up trusting the lease first.
pub fn encode_validation(
    up_to_date: bool,
    current_block: u32,
    changed: &[PagePath],
    lease_ttl_ms: u32,
) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(u8::from(up_to_date));
    buf.put_u32_le(current_block);
    buf.put_u32_le(changed.len() as u32);
    for path in changed {
        encode_path(&mut buf, path);
    }
    buf.put_u32_le(lease_ttl_ms);
    buf.freeze()
}

/// Decodes a cache-validation result: (up-to-date, current block, changed
/// paths, lease ttl in ms).  The trailing ttl word is optional on the wire
/// (pre-lease servers end after the paths), decoding as "no lease".
pub fn decode_validation(mut payload: Bytes) -> Option<(bool, u32, Vec<PagePath>, u32)> {
    if payload.remaining() < 9 {
        return None;
    }
    let up_to_date = payload.get_u8() != 0;
    let current = payload.get_u32_le();
    let count = payload.get_u32_le() as usize;
    let mut paths = Vec::with_capacity(count);
    for _ in 0..count {
        paths.push(decode_path(&mut payload)?);
    }
    let ttl = if payload.remaining() >= 4 {
        payload.get_u32_le()
    } else {
        0
    };
    Some((up_to_date, current, paths, ttl))
}

/// Encodes a lease-break callback payload: the file object id whose leases
/// are void.  Pushed server→client in a callback frame when a writer commits
/// under live leases.
pub fn encode_lease_break(object: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(8);
    buf.put_u64_le(object);
    buf.freeze()
}

/// Decodes a lease-break callback payload.
pub fn decode_lease_break(mut payload: Bytes) -> Option<u64> {
    if payload.remaining() < 8 {
        return None;
    }
    Some(payload.get_u64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codes_round_trip() {
        for op in [
            FsOp::CreateFile,
            FsOp::CreateVersion,
            FsOp::ReadPage,
            FsOp::WritePage,
            FsOp::AppendPage,
            FsOp::Commit,
            FsOp::Abort,
            FsOp::CurrentVersion,
            FsOp::ReadCommittedPage,
            FsOp::ValidateCache,
            FsOp::ReadPages,
            FsOp::WritePages,
            FsOp::InsertPage,
            FsOp::RemovePage,
        ] {
            assert_eq!(FsOp::from_u32(op as u32), Some(op));
        }
        assert_eq!(FsOp::from_u32(999), None);
    }

    #[test]
    fn path_and_data_round_trip() {
        let path = PagePath::new(vec![3, 1, 4]);
        let data = Bytes::from_static(b"payload bytes");
        let encoded = encode_path_and_data(&path, &data);
        let (p, d) = decode_path_and_data(encoded).unwrap();
        assert_eq!(p, path);
        assert_eq!(d, data);
    }

    #[test]
    fn insert_payload_round_trips() {
        let parent = PagePath::new(vec![2]);
        let encoded = encode_insert(&parent, 7, &Bytes::from_static(b"inserted"));
        let (p, index, data) = decode_insert(encoded).unwrap();
        assert_eq!(p, parent);
        assert_eq!(index, 7);
        assert_eq!(data, Bytes::from_static(b"inserted"));
    }

    #[test]
    fn batched_payloads_round_trip() {
        let paths = vec![PagePath::root(), PagePath::new(vec![1, 2])];
        assert_eq!(decode_paths(encode_paths(&paths)).unwrap(), paths);

        let writes = vec![
            (PagePath::new(vec![0]), Bytes::from_static(b"a")),
            (PagePath::new(vec![1]), Bytes::new()),
        ];
        assert_eq!(decode_writes(encode_writes(&writes)).unwrap(), writes);

        let pages = vec![Bytes::from_static(b"one"), Bytes::new()];
        assert_eq!(
            decode_pages_reply(encode_pages_reply(&pages)).unwrap(),
            pages
        );
    }

    #[test]
    fn truncated_batches_are_rejected() {
        let writes = vec![(PagePath::new(vec![0]), Bytes::from_static(b"abcdef"))];
        let encoded = encode_writes(&writes);
        let truncated = encoded.slice(..encoded.len() - 3);
        assert_eq!(decode_writes(truncated), None);
    }

    #[test]
    fn read_batch_respects_the_reply_budget() {
        let paths: Vec<PagePath> = (0..8).map(|i| PagePath::new(vec![i])).collect();
        let big = Bytes::from(vec![0u8; READ_BATCH_REPLY_BUDGET / 2 - 8]);
        let served = serve_read_batch(&paths, |_| Ok(big.clone())).unwrap();
        // Two just-under-half-budget pages fill the frame; the rest wait for
        // the next call.
        assert_eq!(served.len(), 2);
        // A single over-budget page is still served (progress guarantee).
        let huge = Bytes::from(vec![0u8; READ_BATCH_REPLY_BUDGET + 16]);
        let served = serve_read_batch(&paths[..1], |_| Ok(huge.clone())).unwrap();
        assert_eq!(served.len(), 1);
    }

    #[test]
    fn receipt_round_trips() {
        let receipt = CommitReceipt {
            fast_path: false,
            validations: 3,
            pages_compared: 17,
        };
        assert_eq!(decode_receipt(encode_receipt(&receipt)).unwrap(), receipt);
    }

    #[test]
    fn validation_round_trip() {
        let changed = vec![PagePath::root(), PagePath::new(vec![7])];
        let encoded = encode_validation(false, 42, &changed, 250);
        let (up, block, paths, ttl) = decode_validation(encoded).unwrap();
        assert!(!up);
        assert_eq!(block, 42);
        assert_eq!(paths, changed);
        assert_eq!(ttl, 250);
    }

    #[test]
    fn validation_without_ttl_word_decodes_as_no_lease() {
        // A pre-lease reply ends right after the changed paths.
        let encoded = encode_validation(true, 7, &[], 99);
        let legacy = encoded.slice(..encoded.len() - 4);
        let (up, block, paths, ttl) = decode_validation(legacy).unwrap();
        assert!(up);
        assert_eq!(block, 7);
        assert!(paths.is_empty());
        assert_eq!(ttl, 0);
    }

    #[test]
    fn lease_break_round_trip() {
        assert_eq!(decode_lease_break(encode_lease_break(0xdead)), Some(0xdead));
        assert_eq!(decode_lease_break(Bytes::from_static(b"short")), None);
    }

    #[test]
    fn structured_errors_survive_the_wire() {
        for err in [
            FsError::SerialisabilityConflict,
            FsError::PermissionDenied,
            FsError::NoSuchFile,
            FsError::NoSuchVersion,
            FsError::AlreadyCommitted,
            FsError::NotCommitted,
            FsError::WouldBlock,
            FsError::LockTimeout,
            FsError::WrongFileKind,
            FsError::PageTooLarge(40_000),
            FsError::NoSuchPage("/1/2".into()),
            FsError::Protocol("bad frame".into()),
        ] {
            assert_eq!(decode_error(encode_error(&err)), err);
        }
        // Unstructured errors degrade to Remote with the display text.
        let decoded = decode_error(encode_error(&FsError::CorruptPage("oops".into())));
        assert!(matches!(decoded, FsError::Remote(msg) if msg.contains("oops")));
    }
}
