//! Operation codes and argument marshalling for the file-service protocol.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use afs_core::{FsError, PagePath};
use amoeba_capability::Capability;

/// Operations the file server understands.  The capability in the request names the
/// file or version operated on; the payload carries the remaining arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum FsOp {
    /// Create a new file.  Reply: file capability.
    CreateFile = 1,
    /// Create a new version of the file named by the request capability.
    /// Reply: version capability.
    CreateVersion = 2,
    /// Read a page of an uncommitted version.  Payload: path.  Reply: data.
    ReadPage = 3,
    /// Write a page of an uncommitted version.  Payload: path + data.
    WritePage = 4,
    /// Append a page under a parent.  Payload: path + data.  Reply: new path.
    AppendPage = 5,
    /// Commit the version named by the request capability.
    Commit = 6,
    /// Abort the version named by the request capability.
    Abort = 7,
    /// Get the current version of a file.  Reply: version capability.
    CurrentVersion = 8,
    /// Read a page of a committed version.  Payload: path.  Reply: data.
    ReadCommittedPage = 9,
    /// Validate a cache entry.  Payload: cached version block (u32).
    /// Reply: up-to-date flag, current block, changed paths.
    ValidateCache = 10,
}

impl FsOp {
    /// Decodes an operation code.
    pub fn from_u32(v: u32) -> Option<FsOp> {
        Some(match v {
            1 => FsOp::CreateFile,
            2 => FsOp::CreateVersion,
            3 => FsOp::ReadPage,
            4 => FsOp::WritePage,
            5 => FsOp::AppendPage,
            6 => FsOp::Commit,
            7 => FsOp::Abort,
            8 => FsOp::CurrentVersion,
            9 => FsOp::ReadCommittedPage,
            10 => FsOp::ValidateCache,
            _ => return None,
        })
    }
}

/// The error a client sees when a remote operation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The file service rejected the operation; the string is the remote error text.
    Remote(String),
    /// Specifically, the commit failed validation (so clients can retry cleanly).
    SerialisabilityConflict,
    /// The reply could not be decoded.
    Protocol(String),
    /// The transport failed (server crashed, message lost, …).
    Transport(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Remote(msg) => write!(f, "remote error: {msg}"),
            ServerError::SerialisabilityConflict => {
                write!(f, "commit failed: updates are not serialisable")
            }
            ServerError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServerError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Encodes a file-service error into an error-reply payload.
pub fn encode_error(err: &FsError) -> Bytes {
    let mut buf = BytesMut::new();
    let conflict = matches!(err, FsError::SerialisabilityConflict);
    buf.put_u8(u8::from(conflict));
    buf.put_slice(err.to_string().as_bytes());
    buf.freeze()
}

/// Decodes an error-reply payload.
pub fn decode_error(mut payload: Bytes) -> ServerError {
    if payload.is_empty() {
        return ServerError::Protocol("empty error reply".into());
    }
    let conflict = payload.get_u8() != 0;
    if conflict {
        return ServerError::SerialisabilityConflict;
    }
    ServerError::Remote(String::from_utf8_lossy(&payload).into_owned())
}

/// Encodes a page path.
pub fn encode_path(buf: &mut BytesMut, path: &PagePath) {
    buf.put_u16_le(path.indices().len() as u16);
    for &index in path.indices() {
        buf.put_u16_le(index);
    }
}

/// Decodes a page path.
pub fn decode_path(buf: &mut Bytes) -> Option<PagePath> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len * 2 {
        return None;
    }
    let mut indices = Vec::with_capacity(len);
    for _ in 0..len {
        indices.push(buf.get_u16_le());
    }
    Some(PagePath::new(indices))
}

/// Encodes a path followed by raw page data (the `WritePage`/`AppendPage` payload).
pub fn encode_path_and_data(path: &PagePath, data: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(2 + path.indices().len() * 2 + data.len());
    encode_path(&mut buf, path);
    buf.put_slice(data);
    buf.freeze()
}

/// Decodes a path followed by raw page data.
pub fn decode_path_and_data(mut payload: Bytes) -> Option<(PagePath, Bytes)> {
    let path = decode_path(&mut payload)?;
    Some((path, payload))
}

/// Encodes a capability as a reply payload.
pub fn encode_capability(cap: &Capability) -> Bytes {
    let mut buf = BytesMut::with_capacity(25);
    cap.encode(&mut buf);
    buf.freeze()
}

/// Decodes a capability from a reply payload.
pub fn decode_capability(mut payload: Bytes) -> Option<Capability> {
    Capability::decode(&mut payload)
}

/// Encodes a cache-validation result.
pub fn encode_validation(up_to_date: bool, current_block: u32, changed: &[PagePath]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(u8::from(up_to_date));
    buf.put_u32_le(current_block);
    buf.put_u32_le(changed.len() as u32);
    for path in changed {
        encode_path(&mut buf, path);
    }
    buf.freeze()
}

/// Decodes a cache-validation result: (up-to-date, current block, changed paths).
pub fn decode_validation(mut payload: Bytes) -> Option<(bool, u32, Vec<PagePath>)> {
    if payload.remaining() < 9 {
        return None;
    }
    let up_to_date = payload.get_u8() != 0;
    let current = payload.get_u32_le();
    let count = payload.get_u32_le() as usize;
    let mut paths = Vec::with_capacity(count);
    for _ in 0..count {
        paths.push(decode_path(&mut payload)?);
    }
    Some((up_to_date, current, paths))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codes_round_trip() {
        for op in [
            FsOp::CreateFile,
            FsOp::CreateVersion,
            FsOp::ReadPage,
            FsOp::WritePage,
            FsOp::AppendPage,
            FsOp::Commit,
            FsOp::Abort,
            FsOp::CurrentVersion,
            FsOp::ReadCommittedPage,
            FsOp::ValidateCache,
        ] {
            assert_eq!(FsOp::from_u32(op as u32), Some(op));
        }
        assert_eq!(FsOp::from_u32(999), None);
    }

    #[test]
    fn path_and_data_round_trip() {
        let path = PagePath::new(vec![3, 1, 4]);
        let data = Bytes::from_static(b"payload bytes");
        let encoded = encode_path_and_data(&path, &data);
        let (p, d) = decode_path_and_data(encoded).unwrap();
        assert_eq!(p, path);
        assert_eq!(d, data);
    }

    #[test]
    fn validation_round_trip() {
        let changed = vec![PagePath::root(), PagePath::new(vec![7])];
        let encoded = encode_validation(false, 42, &changed);
        let (up, block, paths) = decode_validation(encoded).unwrap();
        assert!(!up);
        assert_eq!(block, 42);
        assert_eq!(paths, changed);
    }

    #[test]
    fn conflict_errors_are_distinguished() {
        let conflict = encode_error(&FsError::SerialisabilityConflict);
        assert_eq!(decode_error(conflict), ServerError::SerialisabilityConflict);
        let other = encode_error(&FsError::NoSuchFile);
        assert!(matches!(decode_error(other), ServerError::Remote(_)));
    }
}
