//! Amoeba file-server processes: the RPC façade over the file service.
//!
//! The paper's file service "operates using a number of server processes, which, in
//! turn, use a number of block servers for information storage" (§5.4.1).  A crash of
//! a server process must not endanger any committed data, and clients "do not have to
//! wait until the server is restored, because they can use another server".
//!
//! This crate provides exactly that layer:
//!
//! * [`ops`] — the wire protocol: operation codes and argument marshalling,
//! * [`handler`] — a [`FileServerHandler`] that turns incoming transactions into
//!   calls on an `Arc<FileService>`,
//! * [`lease`] — the [`LeaseManager`]: time-bounded read leases granted on
//!   `ValidateCache` replies and settled (callback break + ack, or waited
//!   out) by committing writers, shared across a server group's processes,
//! * [`process`] — [`ServerProcess`] (one registered port that can crash and restart),
//!   [`ServerGroup`] (several replicated processes sharing the same file service
//!   state, the paper's "replicated server processes"), and [`ShardedCluster`]
//!   (the full distributed topology: N file-service shards, each over replicated
//!   block storage, each fronted by its own server group),
//! * [`block`] — the same façade one layer down: [`BlockServerProcess`] serves a
//!   disk over the network, [`RemoteBlockStore`] is the client-side
//!   `BlockStore` that talks to it, and a commit flush reaches each remote
//!   replica as a single `WriteBlocks` scatter-gather RPC,
//! * [`dir`] — the same façade one layer *up*: [`DirServerHandler`] serves the
//!   naming hierarchy (directories stored as ordinary files, crate `afs-dir`)
//!   over `LocalNetwork` or TCP next to the file shards, and
//!   [`DirServerProcess`] is the crash/restartable process wrapper.  Directory
//!   servers are stateless beyond the file service underneath, so a crashed
//!   one is simply failed over like any file-server process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod dir;
pub mod handler;
pub mod lease;
pub mod ops;
pub mod process;

pub use afs_core::FsError;
pub use block::{remote_replica_set, BlockServerHandler, BlockServerProcess, RemoteBlockStore};
pub use dir::{DirServerHandler, DirServerProcess};
pub use handler::FileServerHandler;
pub use lease::{LeaseManager, DEFAULT_LEASE_TTL};
pub use ops::{FsOp, ServerError};
pub use process::{ClusterShard, ServerGroup, ServerProcess, ShardedCluster};
