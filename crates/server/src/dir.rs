//! Directory-server processes: the RPC façade over the directory service.
//!
//! The paper keeps naming out of the file service: "a directory server maps
//! names onto capabilities", as a separate service reached through the same
//! transaction RPC.  [`DirServerHandler`] is that server: it wraps an
//! [`afs_dir::DirStore`] over any [`FileStore`] (a local shard service, a
//! remote connection, or a sharded router), decodes [`DirOp`] requests and
//! serves them — so directories are servable over `LocalNetwork` *and* TCP
//! next to the file shards, and the directory state itself still lives in
//! ordinary files with all their durability and replication guarantees.
//!
//! Because directory state is entirely in the file service, a directory-server
//! process is as stateless as a file-server process: crash it and restart it
//! ([`DirServerProcess::crash`]/[`DirServerProcess::restart`]) and nothing
//! needs recovery; several processes can serve the same tree concurrently,
//! coordinated only by OCC validation underneath.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use afs_core::FileStore;
use afs_dir::{DirCap, DirEntry, DirError, DirStore, EntryKind};
use amoeba_capability::{Port, Rights};
use amoeba_rpc::dir::{
    decode_lookup, decode_mkdir, decode_rename, decode_unlink, encode_dir_cap, encode_entries,
    encode_entry, DirOp, WireEntry,
};
use amoeba_rpc::{LocalNetwork, Reply, Request, RequestHandler};

use crate::ops;

// ---------------------------------------------------------------------------
// Error marshalling: one code byte + detail, mirroring the file-service ops.
// The file-service variant nests the standard FsError encoding.
// ---------------------------------------------------------------------------

const ERR_FS: u8 = 0;
const ERR_NOT_FOUND: u8 = 1;
const ERR_ALREADY_EXISTS: u8 = 2;
const ERR_NOT_A_DIRECTORY: u8 = 3;
const ERR_INVALID_NAME: u8 = 4;
const ERR_INSUFFICIENT_GRANT: u8 = 5;
const ERR_NOT_EMPTY: u8 = 6;
const ERR_CORRUPT: u8 = 7;

/// Encodes a [`DirError`] into an error-reply payload.
pub fn encode_dir_error(err: &DirError) -> Bytes {
    let mut buf = BytesMut::new();
    let mut with_name = |code: u8, name: &str| {
        buf.put_u8(code);
        buf.put_slice(name.as_bytes());
    };
    match err {
        DirError::NotFound(name) => with_name(ERR_NOT_FOUND, name),
        DirError::AlreadyExists(name) => with_name(ERR_ALREADY_EXISTS, name),
        DirError::NotADirectory(name) => with_name(ERR_NOT_A_DIRECTORY, name),
        DirError::InvalidName(name) => with_name(ERR_INVALID_NAME, name),
        DirError::NotEmpty(name) => with_name(ERR_NOT_EMPTY, name),
        DirError::Corrupt(msg) => with_name(ERR_CORRUPT, msg),
        DirError::InsufficientGrant => buf.put_u8(ERR_INSUFFICIENT_GRANT),
        DirError::Fs(fs) => {
            buf.put_u8(ERR_FS);
            buf.put_slice(&ops::encode_error(fs));
        }
    }
    buf.freeze()
}

/// Decodes an error-reply payload back into a [`DirError`].
pub fn decode_dir_error(mut payload: Bytes) -> DirError {
    if payload.is_empty() {
        return DirError::Fs(afs_core::FsError::Protocol("empty error reply".into()));
    }
    let code = payload.get_u8();
    let text = || String::from_utf8_lossy(&payload).into_owned();
    match code {
        ERR_NOT_FOUND => DirError::NotFound(text()),
        ERR_ALREADY_EXISTS => DirError::AlreadyExists(text()),
        ERR_NOT_A_DIRECTORY => DirError::NotADirectory(text()),
        ERR_INVALID_NAME => DirError::InvalidName(text()),
        ERR_NOT_EMPTY => DirError::NotEmpty(text()),
        ERR_CORRUPT => DirError::Corrupt(text()),
        ERR_INSUFFICIENT_GRANT => DirError::InsufficientGrant,
        ERR_FS => DirError::Fs(ops::decode_error(payload)),
        _ => DirError::Fs(afs_core::FsError::Protocol(format!(
            "unknown directory error code {code}"
        ))),
    }
}

/// Converts a directory entry to its wire form.
pub fn entry_to_wire(entry: &DirEntry) -> WireEntry {
    WireEntry {
        name: entry.name.clone(),
        cap: entry.cap,
        mask: entry.mask.bits(),
        kind: entry.kind.to_u8(),
    }
}

/// Converts a wire entry back to a directory entry.  Fails on an unknown kind
/// byte.
pub fn entry_from_wire(wire: &WireEntry) -> Option<DirEntry> {
    Some(DirEntry {
        name: wire.name.clone(),
        cap: wire.cap,
        mask: Rights::from_bits(wire.mask),
        kind: EntryKind::from_u8(wire.kind)?,
    })
}

/// The service-side handler of the directory protocol: decodes requests,
/// drives the [`DirStore`], encodes replies.  Stateless apart from the wrapped
/// store and the root capability, so any number of handler instances can serve
/// the same hierarchy.
pub struct DirServerHandler<S: FileStore> {
    dirs: DirStore<S>,
    root: DirCap,
}

impl<S: FileStore> DirServerHandler<S> {
    /// Creates a handler over `store`, creating a fresh root directory.
    pub fn create(store: S) -> Result<Self, DirError> {
        let dirs = DirStore::new(store);
        let root = dirs.create_root()?;
        Ok(DirServerHandler { dirs, root })
    }

    /// Creates a handler serving an existing root (e.g. a second server
    /// process over the same hierarchy).
    pub fn with_root(store: S, root: DirCap) -> Self {
        DirServerHandler {
            dirs: DirStore::new(store),
            root,
        }
    }

    /// The root directory this server hands to clients.
    pub fn root(&self) -> DirCap {
        self.root
    }

    /// The wrapped directory store.
    pub fn dirs(&self) -> &DirStore<S> {
        &self.dirs
    }

    fn dispatch(&self, request: Request) -> Result<Bytes, Reply> {
        let op = DirOp::from_u32(request.op)
            .ok_or_else(|| Reply::error(ops::protocol_error("unknown operation")))?;
        let dir_err = |e: DirError| Reply::error(encode_dir_error(&e));
        let bad_args = || Reply::error(ops::protocol_error("bad arguments"));
        let dir = DirCap::new(request.cap);
        match op {
            DirOp::Root => Ok(encode_dir_cap(self.root.cap())),
            DirOp::Lookup => {
                let (name, required) = decode_lookup(request.payload).ok_or_else(bad_args)?;
                let entry = self
                    .dirs
                    .lookup(&dir, &name, Rights::from_bits(required))
                    .map_err(dir_err)?;
                Ok(encode_entry(&entry_to_wire(&entry)))
            }
            DirOp::ReadDir => {
                let entries = self.dirs.read_dir(&dir).map_err(dir_err)?;
                let wire: Vec<WireEntry> = entries.iter().map(entry_to_wire).collect();
                Ok(encode_entries(&wire))
            }
            DirOp::Link => {
                let wire = amoeba_rpc::dir::decode_entry(request.payload).ok_or_else(bad_args)?;
                let entry = entry_from_wire(&wire).ok_or_else(bad_args)?;
                self.dirs
                    .link(&dir, &entry.name, entry.cap, entry.mask, entry.kind)
                    .map_err(dir_err)?;
                Ok(Bytes::new())
            }
            DirOp::Unlink => {
                let name = decode_unlink(request.payload).ok_or_else(bad_args)?;
                let removed = self.dirs.unlink(&dir, &name).map_err(dir_err)?;
                Ok(encode_entry(&entry_to_wire(&removed)))
            }
            DirOp::Rename => {
                let (from, dst, to) = decode_rename(request.payload).ok_or_else(bad_args)?;
                self.dirs
                    .rename(&dir, &from, &DirCap::new(dst), &to)
                    .map_err(dir_err)?;
                Ok(Bytes::new())
            }
            DirOp::MkDir => {
                let (name, mask) = decode_mkdir(request.payload).ok_or_else(bad_args)?;
                let child = self
                    .dirs
                    .mkdir(&dir, &name, Rights::from_bits(mask))
                    .map_err(dir_err)?;
                Ok(encode_dir_cap(child.cap()))
            }
        }
    }
}

impl<S: FileStore> RequestHandler for DirServerHandler<S> {
    fn handle(&self, request: Request) -> Reply {
        match self.dispatch(request) {
            Ok(payload) => Reply::ok(payload),
            Err(error_reply) => error_reply,
        }
    }
}

/// One directory-server process: a port on the network behind which a
/// [`DirServerHandler`] serves a hierarchy.  Crashing the process makes the
/// port unreachable; the hierarchy itself lives in the file service and is
/// unaffected.
pub struct DirServerProcess {
    port: Port,
    network: std::sync::Arc<LocalNetwork>,
    root: DirCap,
}

impl DirServerProcess {
    /// Starts a directory-server process on a fresh port of `network`, serving
    /// a new root directory stored in `store`.
    pub fn create<S: FileStore + 'static>(
        network: std::sync::Arc<LocalNetwork>,
        store: S,
    ) -> Result<Self, DirError> {
        let handler = DirServerHandler::create(store)?;
        let root = handler.root();
        Ok(Self::register(network, handler, root))
    }

    /// Starts a process serving an existing root through `store` (a replica
    /// process of the same hierarchy).
    pub fn start<S: FileStore + 'static>(
        network: std::sync::Arc<LocalNetwork>,
        store: S,
        root: DirCap,
    ) -> Self {
        let handler = DirServerHandler::with_root(store, root);
        Self::register(network, handler, root)
    }

    fn register<S: FileStore + 'static>(
        network: std::sync::Arc<LocalNetwork>,
        handler: DirServerHandler<S>,
        root: DirCap,
    ) -> Self {
        let port = Port::random();
        network.register(port, std::sync::Arc::new(handler));
        DirServerProcess {
            port,
            network,
            root,
        }
    }

    /// The port clients address this process by.
    pub fn port(&self) -> Port {
        self.port
    }

    /// The root directory this process serves.
    pub fn root(&self) -> DirCap {
        self.root
    }

    /// Simulates a crash: the process stops answering.  Directory state is
    /// untouched because it lives in the file service.
    pub fn crash(&self) {
        self.network.isolate(self.port);
    }

    /// Restarts the process after a crash.  No recovery is needed.
    pub fn restart(&self) {
        self.network.restore(self.port);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_core::FileService;
    use amoeba_capability::Capability;
    use amoeba_rpc::dir::{decode_dir_cap, decode_entries};
    use amoeba_rpc::Transport;
    use std::sync::Arc;

    #[test]
    fn dir_errors_survive_the_wire() {
        for err in [
            DirError::NotFound("x".into()),
            DirError::AlreadyExists("y".into()),
            DirError::NotADirectory("z".into()),
            DirError::InvalidName("a/b".into()),
            DirError::InsufficientGrant,
            DirError::NotEmpty("full".into()),
            DirError::Corrupt("bad magic".into()),
            DirError::Fs(afs_core::FsError::SerialisabilityConflict),
            DirError::Fs(afs_core::FsError::NoSuchFile),
        ] {
            assert_eq!(decode_dir_error(encode_dir_error(&err)), err);
        }
    }

    #[test]
    fn handler_serves_the_protocol_end_to_end() {
        let service = FileService::in_memory();
        let handler = DirServerHandler::create(Arc::clone(&service)).unwrap();
        let root = handler.root();

        // Root discovery.
        let reply = handler.handle(Request::empty(DirOp::Root as u32, Capability::null()));
        assert_eq!(decode_dir_cap(reply.payload).unwrap(), *root.cap());

        // MkDir + Link + ReadDir.
        let reply = handler.handle(Request::new(
            DirOp::MkDir as u32,
            *root.cap(),
            amoeba_rpc::dir::encode_mkdir("sub", Rights::ALL.bits()),
        ));
        assert!(reply.is_ok());
        let sub = decode_dir_cap(reply.payload).unwrap();

        let file = service.create_file().unwrap();
        let reply = handler.handle(Request::new(
            DirOp::Link as u32,
            sub,
            encode_entry(&WireEntry {
                name: "f".into(),
                cap: file,
                mask: Rights::READ.bits(),
                kind: EntryKind::File.to_u8(),
            }),
        ));
        assert!(reply.is_ok());

        let reply = handler.handle(Request::empty(DirOp::ReadDir as u32, sub));
        let entries = decode_entries(reply.payload).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "f");
        assert_eq!(entries[0].cap, file);

        // Lookup with too many rights demanded → structured error.
        let reply = handler.handle(Request::new(
            DirOp::Lookup as u32,
            sub,
            amoeba_rpc::dir::encode_lookup("f", Rights::ALL.bits()),
        ));
        assert!(!reply.is_ok());
        assert_eq!(decode_dir_error(reply.payload), DirError::InsufficientGrant);
    }

    #[test]
    fn crashed_process_stops_answering_until_restart() {
        let network = Arc::new(LocalNetwork::new());
        let service = FileService::in_memory();
        let process = DirServerProcess::create(Arc::clone(&network), service).unwrap();
        let request = Request::empty(DirOp::Root as u32, Capability::null());
        assert!(network.transact(process.port(), request.clone()).is_ok());
        process.crash();
        assert!(network.transact(process.port(), request.clone()).is_err());
        process.restart();
        assert!(network.transact(process.port(), request).is_ok());
    }
}
