//! Server-side lease management: time-bounded read leases with
//! callback-based revocation.
//!
//! A lease is the server's promise that a file's current version will not
//! change for a bounded time without the client hearing about it first.  It
//! turns the client's validate-on-use discipline into a zero-RPC warm path:
//! while a lease is live, a cached copy *is* the current version, no wire
//! traffic needed.
//!
//! The manager keeps one grant table keyed `file object → peer connection`.
//! Grants ride [`ValidateCache`](crate::FsOp::ValidateCache) replies (no
//! extra round trip) and are only issued to transports that expose a
//! [`CallbackChannel`] — an anonymous request/reply client simply never gets
//! a lease and keeps validating.
//!
//! # Break-vs-wait discipline
//!
//! A committing writer calls [`LeaseManager::settle`] *before* the commit
//! mutates anything.  Settling follows the upgrade-lock discipline (abort
//! conflicting holders, honor age to prevent livelock):
//!
//! * the object is marked *settling*, which refuses all new grants — the
//!   writer is the oldest party at the table and a stream of young readers
//!   must not starve it (wait-die's "honor age");
//! * every live grant is *broken*: a callback frame is pushed down the
//!   holder's connection (aborting the conflicting holders), and the writer
//!   waits until each holder acks **or its grant expires on the server's
//!   clock** — whichever is first.  Either way the holder no longer trusts
//!   its copy: the client stops first under bounded clock drift because its
//!   countdown started before the request even reached us;
//! * grants whose connection has died are dropped without waiting: a dead
//!   connection holds no leases (the client side mirrors this by dropping
//!   all leases on connection loss and revalidating after reconnect);
//! * only then does the commit proceed, and the settling mark is cleared
//!   when the returned [`SettleGuard`] drops — after the commit, so a lease
//!   granted mid-commit can never cover the pre-commit value.
//!
//! The invariant this buys (encoded in the conformance tests): **a lease
//! never lets a client observe newer-than-committed data, and after a break
//! is acked the client never serves the stale value.**

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use amoeba_capability::Port;
use amoeba_rpc::CallbackChannel;

use crate::ops::encode_lease_break;

/// Default lease duration.  Long enough that a warm working set re-reads
/// many times per grant, short enough that a crashed client delays a
/// conflicting writer imperceptibly in the worst case.
pub const DEFAULT_LEASE_TTL: Duration = Duration::from_secs(2);

/// One granted lease: the connection it was granted over and when it expires
/// on the *server's* clock (strictly later than the client's own countdown,
/// which started before its request was sent).
struct Grant {
    channel: Arc<dyn CallbackChannel>,
    expiry: Instant,
}

/// Every Nth grant sweeps the whole table for expired/dead entries, so
/// objects that are validated once and never touched again do not pin a
/// grants entry forever.
const SWEEP_EVERY: u64 = 64;

#[derive(Default)]
struct LeaseInner {
    /// `file object → (peer key → grant)`.  Keyed by connection so a dying
    /// connection implicitly voids everything it held.
    grants: HashMap<u64, HashMap<u64, Grant>>,
    /// Objects currently being settled by committing writers, with the
    /// number of commits in flight: no new grants until the count drops to
    /// zero.  A counter, not a set — two concurrent commits on one file
    /// must each hold the grant window closed until *both* finish, or a
    /// lease granted after the first commit's guard drops would cover the
    /// value the second commit is about to replace.
    settling: HashMap<u64, usize>,
    /// Grant calls since the last full-table sweep.
    grants_since_sweep: u64,
}

/// The grant table and settle logic, shared by every server process of a
/// group (a commit arriving at any replica port must break leases granted
/// at any other).
pub struct LeaseManager {
    ttl: Duration,
    inner: Mutex<LeaseInner>,
    granted: AtomicU64,
    broken: AtomicU64,
}

impl LeaseManager {
    /// A manager granting leases of [`DEFAULT_LEASE_TTL`].
    pub fn new() -> Self {
        Self::with_ttl(DEFAULT_LEASE_TTL)
    }

    /// A manager granting leases of the given duration.  A zero ttl disables
    /// granting entirely.
    pub fn with_ttl(ttl: Duration) -> Self {
        LeaseManager {
            ttl,
            inner: Mutex::new(LeaseInner::default()),
            granted: AtomicU64::new(0),
            broken: AtomicU64::new(0),
        }
    }

    /// The configured lease duration.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Tries to grant `channel` a lease on `object`, returning the relative
    /// ttl in milliseconds to put on the wire, or `None` when no lease can
    /// be granted (object settling under a writer, connection closed, or
    /// leasing disabled).
    pub fn grant(&self, object: u64, channel: &Arc<dyn CallbackChannel>) -> Option<u32> {
        if self.ttl.is_zero() || channel.is_closed() {
            return None;
        }
        let ttl_ms = u32::try_from(self.ttl.as_millis()).unwrap_or(u32::MAX);
        let mut inner = self.inner.lock();
        if inner.settling.contains_key(&object) {
            // A writer is at the table; honoring its age keeps it livelock-free.
            return None;
        }
        let now = Instant::now();
        inner.grants_since_sweep += 1;
        if inner.grants_since_sweep >= SWEEP_EVERY {
            inner.grants_since_sweep = 0;
            inner.grants.retain(|_, holders| {
                holders.retain(|_, g| now < g.expiry && !g.channel.is_closed());
                !holders.is_empty()
            });
        }
        let holders = inner.grants.entry(object).or_default();
        holders.retain(|_, g| now < g.expiry && !g.channel.is_closed());
        holders.insert(
            channel.peer_key(),
            Grant {
                channel: Arc::clone(channel),
                expiry: now + self.ttl,
            },
        );
        drop(inner);
        self.granted.fetch_add(1, Ordering::Relaxed);
        Some(ttl_ms)
    }

    /// Settles `object` for a committing writer: blocks new grants, breaks
    /// every live grant over its connection (waiting for the ack or the
    /// grant's own expiry, whichever is first), and returns a guard that
    /// re-opens granting when dropped — *after* the commit.
    ///
    /// Callback pushes happen with the table lock released: a push may
    /// deliver synchronously into the committing client's own lease table
    /// (the in-process transport does), and that client may concurrently be
    /// validating some other file through this very manager.
    pub fn settle(&self, object: u64, port: Port) -> SettleGuard<'_> {
        let holders: Vec<Grant> = {
            let mut inner = self.inner.lock();
            *inner.settling.entry(object).or_insert(0) += 1;
            inner
                .grants
                .remove(&object)
                .map(|m| m.into_values().collect())
                .unwrap_or_default()
        };
        let now = Instant::now();
        let payload = encode_lease_break(object);
        let mut pending: Vec<(Arc<dyn CallbackChannel>, u64, Instant)> = Vec::new();
        for grant in holders {
            // Expired on our clock means expired on the holder's (theirs ran
            // out first); a closed channel holds nothing.  Neither is worth
            // a frame or a wait.
            if now >= grant.expiry || grant.channel.is_closed() {
                continue;
            }
            self.broken.fetch_add(1, Ordering::Relaxed);
            if let Some(ticket) = grant.channel.push(port, payload.clone()) {
                pending.push((grant.channel, ticket, grant.expiry));
            }
        }
        for (channel, ticket, expiry) in pending {
            // Ack, expiry, or connection death — each bounds the wait.
            channel.wait_acked(ticket, expiry);
        }
        SettleGuard {
            manager: self,
            object,
        }
    }

    /// Number of live (unexpired, connection still open) grants on `object`.
    pub fn live_grants(&self, object: u64) -> usize {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        let live = match inner.grants.get_mut(&object) {
            Some(holders) => {
                holders.retain(|_, g| now < g.expiry && !g.channel.is_closed());
                holders.len()
            }
            None => return 0,
        };
        if live == 0 {
            inner.grants.remove(&object);
        }
        live
    }

    /// Total leases granted over this manager's lifetime.
    pub fn granted_total(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Total leases broken by settling writers (expired and dead-connection
    /// grants are dropped, not broken).
    pub fn broken_total(&self) -> u64 {
        self.broken.load(Ordering::Relaxed)
    }
}

impl Default for LeaseManager {
    fn default() -> Self {
        Self::new()
    }
}

/// Keeps an object's grant window closed while a commit is in flight;
/// dropping it (after the commit) re-opens granting.
pub struct SettleGuard<'a> {
    manager: &'a LeaseManager,
    object: u64,
}

impl Drop for SettleGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.manager.inner.lock();
        if let Some(count) = inner.settling.get_mut(&self.object) {
            *count -= 1;
            if *count == 0 {
                inner.settling.remove(&self.object);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Condvar;

    /// A channel test double: records pushes, acks on demand, can be closed.
    struct FakeChannel {
        key: u64,
        closed: std::sync::atomic::AtomicBool,
        pushes: Mutex<Vec<(u64, Bytes)>>,
        acked: Mutex<std::collections::HashSet<u64>>,
        ack_ready: Condvar,
        next_ticket: AtomicU64,
        auto_ack: bool,
    }

    impl FakeChannel {
        fn new(key: u64, auto_ack: bool) -> Arc<Self> {
            Arc::new(FakeChannel {
                key,
                closed: std::sync::atomic::AtomicBool::new(false),
                pushes: Mutex::new(Vec::new()),
                acked: Mutex::new(std::collections::HashSet::new()),
                ack_ready: Condvar::new(),
                next_ticket: AtomicU64::new(1),
                auto_ack,
            })
        }
    }

    impl CallbackChannel for FakeChannel {
        fn push(&self, _port: Port, payload: Bytes) -> Option<u64> {
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
            self.pushes.lock().push((ticket, payload));
            if self.auto_ack {
                self.acked.lock().insert(ticket);
                self.ack_ready.notify_all();
            }
            Some(ticket)
        }
        fn wait_acked(&self, ticket: u64, deadline: Instant) -> bool {
            let mut acked = self.acked.lock();
            loop {
                if acked.remove(&ticket) {
                    return true;
                }
                let now = Instant::now();
                if now >= deadline || self.closed.load(Ordering::SeqCst) {
                    return false;
                }
                self.ack_ready.wait_for(&mut acked, deadline - now);
            }
        }
        fn peer_key(&self) -> u64 {
            self.key
        }
        fn is_closed(&self) -> bool {
            self.closed.load(Ordering::SeqCst)
        }
    }

    fn as_dyn(c: &Arc<FakeChannel>) -> Arc<dyn CallbackChannel> {
        Arc::clone(c) as _
    }

    #[test]
    fn grants_are_per_connection_and_settle_breaks_them() {
        let mgr = LeaseManager::with_ttl(Duration::from_secs(5));
        let a = FakeChannel::new(1, true);
        let b = FakeChannel::new(2, true);
        assert!(mgr.grant(7, &as_dyn(&a)).is_some());
        assert!(mgr.grant(7, &as_dyn(&b)).is_some());
        assert_eq!(mgr.live_grants(7), 2);

        let guard = mgr.settle(7, Port::from_raw(9));
        // Both holders got a break frame carrying the object id.
        assert_eq!(a.pushes.lock().len(), 1);
        assert_eq!(
            crate::ops::decode_lease_break(a.pushes.lock()[0].1.clone()),
            Some(7)
        );
        assert_eq!(b.pushes.lock().len(), 1);
        assert_eq!(mgr.live_grants(7), 0);
        assert_eq!(mgr.broken_total(), 2);

        // While settling, new grants are refused (writer priority)...
        assert!(mgr.grant(7, &as_dyn(&a)).is_none());
        // ...but unrelated objects still grant.
        assert!(mgr.grant(8, &as_dyn(&a)).is_some());

        drop(guard);
        assert!(mgr.grant(7, &as_dyn(&a)).is_some());
    }

    #[test]
    fn dead_connections_lose_their_leases_without_a_wait() {
        let mgr = LeaseManager::with_ttl(Duration::from_secs(5));
        let doomed = FakeChannel::new(1, false); // never acks
        assert!(mgr.grant(3, &as_dyn(&doomed)).is_some());
        doomed.closed.store(true, Ordering::SeqCst);

        // The connection died: no frame is pushed, nothing is waited for.
        let start = Instant::now();
        let _guard = mgr.settle(3, Port::from_raw(1));
        assert!(start.elapsed() < Duration::from_millis(500));
        assert!(doomed.pushes.lock().is_empty());
        assert_eq!(mgr.broken_total(), 0);
        // And the closed channel can't re-acquire.
        drop(_guard);
        assert!(mgr.grant(3, &as_dyn(&doomed)).is_none());
    }

    #[test]
    fn unacked_breaks_wait_only_until_the_grant_expires() {
        let ttl = Duration::from_millis(120);
        let mgr = LeaseManager::with_ttl(ttl);
        let mute = FakeChannel::new(1, false); // receives pushes, never acks
        assert!(mgr.grant(5, &as_dyn(&mute)).is_some());

        let start = Instant::now();
        let _guard = mgr.settle(5, Port::from_raw(1));
        let waited = start.elapsed();
        // The writer waited out the lease (the holder's own countdown ended
        // sooner), but no longer than ttl plus scheduling slack.
        assert!(waited >= Duration::from_millis(40), "waited {waited:?}");
        assert!(
            waited < ttl + Duration::from_millis(500),
            "waited {waited:?}"
        );
        assert_eq!(mute.pushes.lock().len(), 1);
    }

    #[test]
    fn overlapping_settles_keep_the_grant_window_closed_until_both_finish() {
        let mgr = LeaseManager::with_ttl(Duration::from_secs(5));
        let c = FakeChannel::new(1, true);

        // Two commits on the same file are in flight at once.
        let first = mgr.settle(7, Port::from_raw(1));
        let second = mgr.settle(7, Port::from_raw(1));

        // The first commit finishing must NOT re-open granting: a lease
        // granted now would cover the value the second commit replaces.
        drop(first);
        assert!(
            mgr.grant(7, &as_dyn(&c)).is_none(),
            "grant window re-opened while a commit was still settling"
        );

        drop(second);
        assert!(mgr.grant(7, &as_dyn(&c)).is_some());
    }

    #[test]
    fn sweeping_drops_entries_for_objects_never_touched_again() {
        let ttl = Duration::from_millis(10);
        let mgr = LeaseManager::with_ttl(ttl);
        let c = FakeChannel::new(1, true);
        // Grant on many distinct objects, then let everything expire.
        for object in 0..SWEEP_EVERY {
            assert!(mgr.grant(object, &as_dyn(&c)).is_some());
        }
        std::thread::sleep(ttl + Duration::from_millis(5));
        // Further grants on ONE hot object must sweep out the cold ones.
        for _ in 0..SWEEP_EVERY {
            assert!(mgr.grant(u64::MAX, &as_dyn(&c)).is_some());
        }
        let tracked = mgr.inner.lock().grants.len();
        assert!(tracked <= 2, "cold grant entries must be swept, {tracked} left");
    }

    #[test]
    fn zero_ttl_disables_granting() {
        let mgr = LeaseManager::with_ttl(Duration::ZERO);
        let c = FakeChannel::new(1, true);
        assert!(mgr.grant(1, &as_dyn(&c)).is_none());
        assert_eq!(mgr.granted_total(), 0);
    }
}
