//! Perf smoke: a short, deterministic slice of the `occ_vs_locking` and
//! `cow_overhead` workloads that runs in seconds and writes machine-readable I/O
//! counters to `BENCH_2.json`, so CI can track the performance trajectory without
//! a full Criterion run.
//!
//! The copy-on-write workload is run twice — once with the seed's write-through
//! page path and once with the write-back path — so the JSON carries the
//! before/after physical-write delta the write-back design exists to produce.
//!
//! Usage: `cargo run -p afs-bench --release --bin perf-smoke [-- OUTPUT.json]`

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;

use afs_baselines::AmoebaAdapter;
use afs_core::{BlockServer, FileService, MemStore, PageIoStats, PagePath, ServiceConfig};
use afs_sim::{run_workload, RunConfig};
use afs_workload::MixConfig;

/// One workload's headline numbers.
struct Row {
    name: &'static str,
    ops_per_sec: f64,
    io: PageIoStats,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"ops_per_sec\": {:.1}, ",
                "\"page_reads\": {}, \"page_writes\": {}, \"cache_hits\": {}, ",
                "\"pages_flushed_at_commit\": {}}}"
            ),
            self.name,
            self.ops_per_sec,
            self.io.page_reads,
            self.io.page_writes,
            self.io.cache_hits,
            self.io.pages_flushed_at_commit,
        )
    }
}

/// A short `occ_vs_locking`-style mixed workload over the Amoeba service.
fn occ_mixed() -> Row {
    let cc = AmoebaAdapter::in_memory();
    let config = RunConfig {
        clients: 4,
        transactions_per_client: 50,
        max_retries: 10_000,
        mix: MixConfig {
            files: 2,
            pages_per_file: 64,
            reads_per_tx: 1,
            writes_per_tx: 1,
            payload: 128,
            ..MixConfig::default()
        },
    };
    let result = run_workload(&cc, &config);
    Row {
        name: "occ_mixed",
        ops_per_sec: result.throughput(),
        io: result.io.expect("the local service reports I/O stats"),
    }
}

/// A `cow_overhead`-style repeated-leaf-update workload: N transactions, each
/// writing the same depth-2 leaf several times before committing.
fn cow_repeated_write(name: &'static str, write_back: bool) -> Row {
    let server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
    let service = FileService::with_config(
        server,
        ServiceConfig {
            write_back,
            ..ServiceConfig::default()
        },
    );
    let file = service.create_file().expect("create file");
    let setup = service.create_version(&file).expect("create version");
    let interior = service
        .append_page(&setup, &PagePath::root(), Bytes::from_static(b"interior"))
        .expect("append interior");
    let leaf = service
        .append_page(&setup, &interior, Bytes::from_static(b"leaf"))
        .expect("append leaf");
    service.commit(&setup).expect("commit setup");

    const ROUNDS: usize = 200;
    const WRITES_PER_ROUND: usize = 8;
    let before = service.io_stats();
    let start = Instant::now();
    for round in 0..ROUNDS {
        let v = service.create_version(&file).expect("create version");
        for i in 0..WRITES_PER_ROUND {
            service
                .write_page(&v, &leaf, Bytes::from(vec![(round + i) as u8; 128]))
                .expect("write leaf");
        }
        service.commit(&v).expect("commit");
    }
    let elapsed = start.elapsed().as_secs_f64().max(f64::EPSILON);
    Row {
        name,
        ops_per_sec: (ROUNDS * WRITES_PER_ROUND) as f64 / elapsed,
        io: service.io_stats().since(&before),
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_2.json".to_string());

    let rows = [
        occ_mixed(),
        cow_repeated_write("cow_repeated_write_writethrough", false),
        cow_repeated_write("cow_repeated_write_writeback", true),
    ];

    let before = rows
        .iter()
        .find(|r| r.name == "cow_repeated_write_writethrough")
        .map(|r| r.io.page_writes)
        .unwrap_or(0);
    let after = rows
        .iter()
        .find(|r| r.name == "cow_repeated_write_writeback")
        .map(|r| r.io.page_writes)
        .unwrap_or(0);

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"afs-perf-smoke-v2\",\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "  \"write_back_delta\": {{\n",
            "    \"cow_page_writes_before\": {},\n",
            "    \"cow_page_writes_after\": {},\n",
            "    \"write_reduction_factor\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        body.join(",\n"),
        before,
        after,
        if after > 0 {
            before as f64 / after as f64
        } else {
            0.0
        },
    );

    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    print!("{json}");
    eprintln!("wrote {out}");
}
