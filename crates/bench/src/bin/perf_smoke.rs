//! Perf smoke: short, deterministic workload slices that run in seconds and
//! write machine-readable throughput and I/O counters to `BENCH_9.json`, so CI
//! can track the performance trajectory without a full Criterion run.
//!
//! Schema v9 adds lease coherence: a `lease_coherence` block measuring the
//! warm-read RPC count of a hot working set with leasing off (the pre-lease
//! behaviour: every revalidate is one `ValidateCache` round trip) against
//! leasing on (warm revalidates answer from the client lease table — zero
//! RPCs), plus a lease-break storm where writers churn the same files the
//! readers hold leases on, reporting grants, callback breaks, and the
//! zero-RPC hit rate the readers still achieve between breaks.
//!
//! Schema v8 added the multiplexed transport: a `high_concurrency` block
//! driving one shard over real TCP sockets with 8, 64 and 256 concurrent
//! simulated clients multiplexed onto 8 connections.  Requests pipeline on the
//! shared connections and the (concurrent-mode) delayed disk serves
//! overlapping requests independently, so per-shard throughput keeps growing
//! with client count well past the connection count — the scaling the
//! readiness-driven reactor and id-tagged frames exist to produce — and the
//! client's in-flight high-water mark (from the uniform `ClientStats`) shows
//! the multiplexing is real.
//!
//! Schema v7 added the quorum-commit layer: a `quorum_commit` block comparing
//! commit-flush latency under `CommitRule::WriteAll` vs the default
//! `CommitRule::Quorum` over a 3-replica set whose third disk carries a
//! scripted extra stall per call.  Write-all is gated by the straggler on
//! every commit; quorum acks at 2-of-3 and lets the straggler catch up in the
//! background — the headline robustness-to-latency trade of the epoch-managed
//! replica sets.
//!
//! Schema v5 added the naming layer: a `path_resolution` block with
//! cold-vs-warm prefix-cache ops/sec (a warm `NamedStore::resolve` touches no
//! server at all, which is the cache's whole argument) and a `dir_churn` block
//! with the OCC retry rate of Zipf-skewed hot-directory churn (every mutation
//! of a hot directory contends on its root page; the retry rate is what the
//! lock-free redo discipline pays for it).
//!
//! Four families of workload rows are emitted:
//!
//! * the `occ_vs_locking`-style mixed workload over a single service
//!   (`occ_mixed`, kept from earlier schemas for continuity),
//! * the copy-on-write workload run write-through and write-back, carrying the
//!   PR 2 physical-write delta,
//! * the commit-flush workload run unbatched and batched over latency-modelled
//!   replica disks, carrying the PR 4 physical-write-**call** delta (the
//!   k-pages-in-1-call claim, observable via `block_write_calls`),
//! * the *sharded* workload over 1 and over N shards — each shard on 2-replica
//!   latency-modelled block storage — driven by a constant pool of concurrent
//!   client threads pinned to disjoint files, so the 1-vs-N comparison
//!   measures shard capacity rather than OCC conflict behaviour or a
//!   single-threaded driver's issue rate.
//!
//! The disks behind the sharded and flush rows are `DelayStore`s: a per-call
//! positioning cost plus a per-block transfer cost, served one request at a
//! time.  Against instantaneous in-memory disks neither batching nor sharding
//! is observable — the delay model is what lets a smoke test show the scaling
//! the design exists to produce.  A separate microbenchmark reports the
//! replica fan-out wall-clock delta (parallel scoped-thread fan-out vs the old
//! sequential loop) over the same delayed disks.
//!
//! Usage: `cargo run -p afs-bench --release --bin perf-smoke [-- OUTPUT.json]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use afs_baselines::AmoebaAdapter;
use afs_client::{ClientCache, NamedStore, RemoteFs, ShardedStore};
use afs_core::shard_of;
use afs_core::{
    BlockServer, FileService, FileStore, MemStore, PageIoStats, PagePath, RetryPolicy, Rights,
    ServiceConfig,
};
use afs_dir::DirStore;
use afs_server::{FileServerHandler, LeaseManager, ServerProcess, DEFAULT_LEASE_TTL};
use afs_sim::{run_dir_churn, run_workload, DirChurnRun, RunConfig};
use afs_workload::MixConfig;
use amoeba_block::{BlockStore, CommitRule, DelayStore, ReplicatedBlockStore};
use amoeba_capability::{Capability, Port};
use amoeba_rpc::tcp::{TcpClient, TcpServer};
use amoeba_rpc::LocalNetwork;

/// Shard count of the "many servers" rows.
const SHARDS: usize = 3;
/// Replicas per shard in the sharded and flush rows.
const REPLICAS: usize = 2;
/// Concurrent client threads driving the sharded rows (constant across shard
/// counts, so the comparison isolates server-side capacity).
const CLIENT_THREADS: usize = 6;
/// Committed transactions each client thread performs per sharded row.
const TX_PER_THREAD: usize = 40;
/// Pages written (and committed in one flush) per transaction.
const WRITES_PER_TX: usize = 8;
/// Positioning cost charged per physical disk call (the RPC/seek analogue).
const DISK_PER_CALL: Duration = Duration::from_micros(100);
/// Transfer cost charged per block moved.
const DISK_PER_BLOCK: Duration = Duration::from_micros(2);
/// TCP connections pooled by the high-concurrency sweep's shared client.
const HC_CONNECTIONS: usize = 8;
/// Transactions each simulated client commits per high-concurrency row.
const HC_TX_PER_CLIENT: usize = 8;
/// Client counts of the high-concurrency sweep, in row order.
const HC_CLIENTS: [usize; 3] = [8, 64, 256];
/// Scripted per-call disk stall during the high-concurrency timed windows:
/// large against the RPC cost, so each row's throughput is bounded by how
/// much disk latency its clients can overlap, not by CPU.
const HC_STALL: Duration = Duration::from_millis(2);

/// One workload's headline numbers.
struct Row {
    name: String,
    ops_per_sec: f64,
    io: PageIoStats,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"ops_per_sec\": {:.1}, ",
                "\"page_reads\": {}, \"page_writes\": {}, \"block_write_calls\": {}, ",
                "\"cache_hits\": {}, \"pages_flushed_at_commit\": {}}}"
            ),
            self.name,
            self.ops_per_sec,
            self.io.page_reads,
            self.io.page_writes,
            self.io.block_write_calls,
            self.io.cache_hits,
            self.io.pages_flushed_at_commit,
        )
    }
}

/// A short `occ_vs_locking`-style mixed workload over the Amoeba service.
fn occ_mixed() -> Row {
    let cc = AmoebaAdapter::in_memory();
    let config = RunConfig {
        clients: 4,
        transactions_per_client: 50,
        max_retries: 10_000,
        mix: MixConfig {
            files: 2,
            pages_per_file: 64,
            reads_per_tx: 1,
            writes_per_tx: 1,
            payload: 128,
            ..MixConfig::default()
        },
    };
    let result = run_workload(&cc, &config);
    Row {
        name: "occ_mixed".to_string(),
        ops_per_sec: result.throughput(),
        io: result.io.expect("the local service reports I/O stats"),
    }
}

/// A `cow_overhead`-style repeated-leaf-update workload: N transactions, each
/// writing the same depth-2 leaf several times before committing.
fn cow_repeated_write(name: &str, write_back: bool) -> Row {
    let server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
    let service = FileService::with_config(
        server,
        ServiceConfig {
            write_back,
            ..ServiceConfig::default()
        },
    );
    let file = service.create_file().expect("create file");
    let setup = service.create_version(&file).expect("create version");
    let interior = service
        .append_page(&setup, &PagePath::root(), Bytes::from_static(b"interior"))
        .expect("append interior");
    let leaf = service
        .append_page(&setup, &interior, Bytes::from_static(b"leaf"))
        .expect("append leaf");
    service.commit(&setup).expect("commit setup");

    const ROUNDS: usize = 200;
    const WRITES_PER_ROUND: usize = 8;
    let before = FileService::io_stats(&service);
    let start = Instant::now();
    for round in 0..ROUNDS {
        let v = service.create_version(&file).expect("create version");
        for i in 0..WRITES_PER_ROUND {
            service
                .write_page(&v, &leaf, Bytes::from(vec![(round + i) as u8; 128]))
                .expect("write leaf");
        }
        service.commit(&v).expect("commit");
    }
    let elapsed = start.elapsed().as_secs_f64().max(f64::EPSILON);
    Row {
        name: name.to_string(),
        ops_per_sec: (ROUNDS * WRITES_PER_ROUND) as f64 / elapsed,
        io: FileService::io_stats(&service).since(&before),
    }
}

/// A replica set of latency-modelled in-memory disks.
fn delayed_replica_set(replicas: usize) -> Arc<ReplicatedBlockStore> {
    ReplicatedBlockStore::new(
        (0..replicas)
            .map(|_| {
                Arc::new(DelayStore::new(
                    MemStore::new(),
                    DISK_PER_CALL,
                    DISK_PER_BLOCK,
                )) as Arc<dyn BlockStore>
            })
            .collect(),
    )
}

/// The multithreaded commit driver shared by the sharded and flush rows:
/// `CLIENT_THREADS` concurrent clients, each pinned to its own file (so the
/// rows measure server capacity, not OCC conflict retries), each committing
/// `TX_PER_THREAD` transactions of `WRITES_PER_TX` page writes.  Returns
/// committed transactions per second.
fn drive_commits<S: FileStore + Sync>(store: &S) -> f64 {
    // One 32-page file per client thread.
    let files: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            let file = store.create_file().expect("create file");
            let setup = store.create_version(&file).expect("setup version");
            for i in 0..32u8 {
                store
                    .append_page(&setup, &PagePath::root(), Bytes::from(vec![i; 64]))
                    .expect("append");
            }
            store.commit(&setup).expect("commit setup");
            file
        })
        .collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (t, file) in files.iter().enumerate() {
            scope.spawn(move || {
                for round in 0..TX_PER_THREAD {
                    let v = store.create_version(file).expect("create version");
                    let writes: Vec<(PagePath, Bytes)> = (0..WRITES_PER_TX)
                        .map(|i| {
                            (
                                PagePath::new(vec![((t * WRITES_PER_TX + i) % 32) as u16]),
                                Bytes::from(vec![(round + i) as u8; 256]),
                            )
                        })
                        .collect();
                    store.write_pages(&v, &writes).expect("write pages");
                    store.commit(&v).expect("commit");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64().max(f64::EPSILON);
    (CLIENT_THREADS * TX_PER_THREAD) as f64 / elapsed
}

/// The sharded workload: `shards` shards, each a `FileService` over its own
/// 2-replica delayed block storage, behind a `ShardedStore` router, driven by
/// the constant concurrent client pool.
fn occ_sharded(shards: usize) -> Row {
    let services: Vec<Arc<FileService>> = (0..shards)
        .map(|shard| {
            FileService::for_shard(
                Arc::new(BlockServer::new(
                    delayed_replica_set(REPLICAS) as Arc<dyn BlockStore>
                )),
                shard,
                shards,
                ServiceConfig::default(),
            )
        })
        .collect();
    let store = ShardedStore::new(services);
    let ops_per_sec = drive_commits(&store);
    // Sanity: the driver's files really spread over every shard.
    if shards > 1 {
        let file = store.create_file().expect("probe file");
        assert_eq!(shard_of(&file, shards), CLIENT_THREADS % shards);
    }
    Row {
        name: format!("occ_sharded_{shards}"),
        ops_per_sec,
        io: store.io_stats().expect("local shards report I/O stats"),
    }
}

/// The commit-flush workload over one shard's delayed replica set, with the
/// scatter-gather flush on or off: the before/after of batching.
fn commit_flush(name: &str, batch_flush: bool) -> Row {
    let service = FileService::with_config(
        Arc::new(BlockServer::new(
            delayed_replica_set(REPLICAS) as Arc<dyn BlockStore>
        )),
        ServiceConfig {
            batch_flush,
            ..ServiceConfig::default()
        },
    );
    let before = FileService::io_stats(&service);
    let ops_per_sec = drive_commits(&service);
    Row {
        name: name.to_string(),
        ops_per_sec,
        io: FileService::io_stats(&service).since(&before),
    }
}

/// Measures the replica fan-out wall-clock: the same put batches applied to a
/// 3-replica set of delayed disks through the parallel scoped-thread fan-out
/// (the shipped `write_batch`) vs a sequential per-replica loop (the old
/// behaviour, reconstructed by writing each replica's disk directly).
/// Returns `(sequential_ms, parallel_ms)`.
fn replica_fanout_delta() -> (f64, f64, usize) {
    const FANOUT_REPLICAS: usize = 3;
    const BATCHES: usize = 24;
    const BATCH_BLOCKS: usize = 8;
    let replicas = delayed_replica_set(FANOUT_REPLICAS);
    let blocks: Vec<_> = (0..BATCH_BLOCKS)
        .map(|_| replicas.allocate().expect("allocate"))
        .collect();
    let batch: Vec<(u32, Bytes)> = blocks
        .iter()
        .map(|&nr| (nr, Bytes::from(vec![0xEE; 512])))
        .collect();

    // Parallel: the shipped write-all fan-out.
    let start = Instant::now();
    for _ in 0..BATCHES {
        replicas.write_batch(&batch).expect("parallel fan-out");
    }
    let parallel = start.elapsed();

    // Sequential reference: one replica after another, as the pre-PR loop did.
    let start = Instant::now();
    for _ in 0..BATCHES {
        for idx in 0..FANOUT_REPLICAS {
            replicas
                .replica(idx)
                .write_batch(&batch)
                .expect("sequential reference");
        }
    }
    let sequential = start.elapsed();

    (
        sequential.as_secs_f64() * 1e3,
        parallel.as_secs_f64() * 1e3,
        FANOUT_REPLICAS,
    )
}

/// The quorum-commit latency delta: the same commit batches fanned out to a
/// 3-replica set of delayed disks whose third replica carries a scripted
/// extra stall per call, once under `CommitRule::WriteAll` (the pre-quorum
/// behaviour: every commit waits for the straggler) and once under the
/// default `CommitRule::Quorum` (ack at 2-of-3; the straggler drains its FIFO
/// in the background and stays convergent).  Returns
/// `(replicas, slow_extra_ms, write_all_ms_per_commit, quorum_ms_per_commit)`.
fn quorum_latency_delta() -> (usize, f64, f64, f64) {
    const QUORUM_REPLICAS: usize = 3;
    const SLOW_EXTRA: Duration = Duration::from_millis(2);
    const BATCHES: usize = 20;
    const BATCH_BLOCKS: usize = 8;

    let run = |rule: CommitRule| -> f64 {
        let disks: Vec<Arc<DelayStore<MemStore>>> = (0..QUORUM_REPLICAS)
            .map(|_| {
                Arc::new(DelayStore::new(
                    MemStore::new(),
                    DISK_PER_CALL,
                    DISK_PER_BLOCK,
                ))
            })
            .collect();
        disks[QUORUM_REPLICAS - 1].set_slow(SLOW_EXTRA);
        let replicas = ReplicatedBlockStore::with_rule(
            disks
                .iter()
                .map(|d| Arc::clone(d) as Arc<dyn BlockStore>)
                .collect(),
            rule,
        );
        let blocks: Vec<_> = (0..BATCH_BLOCKS)
            .map(|_| replicas.allocate().expect("allocate"))
            .collect();
        let batch: Vec<(u32, Bytes)> = blocks
            .iter()
            .map(|&nr| (nr, Bytes::from(vec![0xAB; 512])))
            .collect();
        let start = Instant::now();
        for _ in 0..BATCHES {
            replicas.write_batch(&batch).expect("commit fan-out");
        }
        let acked = start.elapsed();
        // Only the ack latency is the commit's cost; the straggler finishes
        // off-path.  Quiesce outside the timed window so the next run starts
        // from drained queues.
        replicas.quiesce();
        assert!(
            replicas.divergent_blocks().is_empty(),
            "the straggler must still converge"
        );
        acked.as_secs_f64() * 1e3 / BATCHES as f64
    };

    let write_all = run(CommitRule::WriteAll);
    let quorum = run(CommitRule::Quorum);
    (
        QUORUM_REPLICAS,
        SLOW_EXTRA.as_secs_f64() * 1e3,
        write_all,
        quorum,
    )
}

/// Path-resolution throughput with a cold vs a warm prefix cache: a directory
/// tree of `FANOUT`² directories with `FANOUT` leaf files each, every leaf
/// path resolved once with an empty cache (cold — each miss fetches the
/// directory tables) and then repeatedly with a populated one (warm — zero
/// server operations).  The service runs over a latency-modelled disk with
/// the server-side page cache off, so a cold resolve pays real positioning
/// costs — against instantaneous memory the prefix cache is barely
/// observable, exactly like batching and sharding in the rows above.
/// Returns `(paths, cold_ops_per_sec, warm_ops_per_sec)`.
fn path_resolution() -> (usize, f64, f64) {
    const FANOUT: usize = 6;
    const WARM_PASSES: usize = 5;
    let service = FileService::with_config(
        Arc::new(BlockServer::new(Arc::new(DelayStore::new(
            MemStore::new(),
            DISK_PER_CALL,
            DISK_PER_BLOCK,
        )) as Arc<dyn BlockStore>)),
        ServiceConfig {
            flag_cache_capacity: None,
            ..ServiceConfig::default()
        },
    );
    let builder = NamedStore::create(Arc::clone(&service)).expect("create root");
    let mut paths = Vec::new();
    for a in 0..FANOUT {
        for b in 0..FANOUT {
            builder
                .mkdir_all(&format!("/d{a}/d{b}"), Rights::ALL)
                .expect("mkdir_all");
            for c in 0..FANOUT {
                let path = format!("/d{a}/d{b}/f{c}");
                builder.create_file(&path, Rights::ALL).expect("create");
                paths.push(path);
            }
        }
    }

    // Cold: a fresh client with an empty cache resolves every path once.
    let cold_client = NamedStore::with_root(Arc::clone(&service), builder.root());
    let start = Instant::now();
    for path in &paths {
        cold_client.resolve(path).expect("cold resolve");
    }
    let cold = paths.len() as f64 / start.elapsed().as_secs_f64().max(f64::EPSILON);

    // Warm: the same client again — every table is cached now.
    let start = Instant::now();
    for _ in 0..WARM_PASSES {
        for path in &paths {
            cold_client.resolve(path).expect("warm resolve");
        }
    }
    let warm = (WARM_PASSES * paths.len()) as f64 / start.elapsed().as_secs_f64().max(f64::EPSILON);
    (paths.len(), cold, warm)
}

/// The `dir_churn` retry rate: Zipf-skewed naming churn, reporting committed
/// ops/sec and the extra OCC attempts per committed operation that
/// hot-directory contention cost.  Runs over a latency-modelled disk so
/// commits genuinely overlap — against instantaneous memory the four clients
/// barely collide and the retry rate reads as zero.
fn dir_churn_delta() -> (afs_sim::DirChurnResult, usize, usize) {
    const CLIENTS: usize = 4;
    const OPS_PER_CLIENT: usize = 60;
    let service = FileService::new(Arc::new(BlockServer::new(Arc::new(DelayStore::new(
        MemStore::new(),
        DISK_PER_CALL,
        DISK_PER_BLOCK,
    )) as Arc<dyn BlockStore>)));
    let dirs = DirStore::new(Arc::clone(&service));
    let root = dirs.create_root().expect("create root");
    let run = DirChurnRun {
        clients: CLIENTS,
        ops_per_client: OPS_PER_CLIENT,
        policy: RetryPolicy::with_max_attempts(10_000),
        config: afs_workload::dir_churn(3, 0.95, 42),
    };
    let result = run_dir_churn(&*service, &root, &run);
    (result, CLIENTS, OPS_PER_CLIENT)
}

/// The lease-coherence numbers of the PR 9 tentpole.
struct LeaseCoherence {
    hot_files: usize,
    warm_cycles: usize,
    /// Warm-path RPCs with leasing disabled (one `ValidateCache` per cycle —
    /// the pre-lease behaviour).
    unleased_rpcs: u64,
    /// Warm-path RPCs with leases on (the tentpole claim: zero).
    leased_rpcs: u64,
    /// Fraction of warm validations answered from the lease table.
    zero_rpc_hit_rate: f64,
    storm_commits: usize,
    storm_grants: u64,
    storm_breaks: u64,
    storm_hit_rate: f64,
}

/// The warm-read RPC delta and the lease-break storm.
///
/// Phase 1 — the before/after: a connected client revalidate+reads a hot
/// working set of committed files, once against a server whose lease manager
/// is disabled (ttl zero: every warm cycle pays one `ValidateCache` round
/// trip) and once against the default manager (warm cycles answer from the
/// client lease table: zero RPCs).  The RPC counts come from the network's
/// own transaction counter, so the "zero" is measured, not inferred.
///
/// Phase 2 — the storm: two connected readers keep revalidating the hot set
/// while a writer client commits updates to the same files, write-heavy
/// churn that breaks leases as fast as they are re-granted.  Each commit
/// pushes callback breaks and waits for the acks, so the row demonstrates
/// the revocation path under contention; the readers' hit rate shows warm
/// reads stay mostly free *between* breaks even then.
fn lease_coherence() -> LeaseCoherence {
    const HOT_FILES: usize = 8;
    const WARM_CYCLES: usize = 50;
    const STORM_COMMITS_PER_FILE: usize = 5;
    const STORM_READER_PASSES: usize = 100;

    let launch = |ttl: Duration| {
        let network = Arc::new(LocalNetwork::new());
        let service = FileService::in_memory();
        let process = ServerProcess::start_with_lease_manager(
            Arc::clone(&network),
            service,
            Arc::new(LeaseManager::with_ttl(ttl)),
        );
        (network, process)
    };
    let hot_set = |remote: &RemoteFs<amoeba_rpc::LocalConn>| -> Vec<(Capability, PagePath)> {
        (0..HOT_FILES)
            .map(|i| {
                let file = remote.create_file().expect("create hot file");
                let v = remote.create_version(&file).expect("setup version");
                let page = remote
                    .append_page(&v, &PagePath::root(), Bytes::from(vec![i as u8; 128]))
                    .expect("append");
                remote.commit(&v).expect("commit setup");
                (file, page)
            })
            .collect()
    };
    let warm_rpcs = |ttl: Duration| -> (u64, u64) {
        let (network, process) = launch(ttl);
        let remote = RemoteFs::new(network.connect(), vec![process.port()]);
        let files = hot_set(&remote);
        let mut cache = ClientCache::new(&remote);
        for (file, page) in &files {
            cache.revalidate(file).expect("prime validate");
            cache.read(file, page).expect("prime read");
        }
        let before = network.transaction_count();
        for _ in 0..WARM_CYCLES {
            for (file, page) in &files {
                cache.revalidate(file).expect("warm validate");
                cache.read(file, page).expect("warm read");
            }
        }
        (
            network.transaction_count() - before,
            remote.stats().zero_rpc_hits,
        )
    };

    let (unleased_rpcs, _) = warm_rpcs(Duration::ZERO);
    let (leased_rpcs, warm_hits) = warm_rpcs(DEFAULT_LEASE_TTL);
    let zero_rpc_hit_rate = warm_hits as f64 / (HOT_FILES * WARM_CYCLES) as f64;

    // Phase 2: the break storm.  The readers keep revalidating for as long
    // as the writer churns (plus a floor of passes), so every commit lands
    // on freshly re-granted leases and actually exercises the break path.
    let (network, process) = launch(DEFAULT_LEASE_TTL);
    let writer = RemoteFs::new(network.connect(), vec![process.port()]);
    let files = Arc::new(hot_set(&writer));
    let churning = Arc::new(std::sync::atomic::AtomicBool::new(true));
    let mut reader_validations = 0u64;
    let mut reader_hits = 0u64;
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let network = Arc::clone(&network);
                let files = Arc::clone(&files);
                let churning = Arc::clone(&churning);
                let port = process.port();
                scope.spawn(move || {
                    let remote = RemoteFs::new(network.connect(), vec![port]);
                    let mut cache = ClientCache::new(&remote);
                    let mut passes = 0usize;
                    while passes < STORM_READER_PASSES
                        || churning.load(std::sync::atomic::Ordering::Relaxed)
                    {
                        for (file, page) in files.iter() {
                            cache.revalidate(file).expect("storm validate");
                            cache.read(file, page).expect("storm read");
                        }
                        passes += 1;
                    }
                    (cache.stats().validations, remote.stats().zero_rpc_hits)
                })
            })
            .collect();
        for round in 0..STORM_COMMITS_PER_FILE {
            for (file, page) in files.iter() {
                let v = writer.create_version(file).expect("storm version");
                writer
                    .write_page(&v, page, Bytes::from(vec![round as u8; 128]))
                    .expect("storm write");
                writer.commit(&v).expect("storm commit");
                // Let the readers re-lease between commits; without the gap
                // the whole churn finishes before they revalidate once and
                // most commits find no live grant to break.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        churning.store(false, std::sync::atomic::Ordering::Relaxed);
        for reader in readers {
            let (validations, hits) = reader.join().expect("storm reader");
            reader_validations += validations;
            reader_hits += hits;
        }
    });
    let manager = process.lease_manager();
    LeaseCoherence {
        hot_files: HOT_FILES,
        warm_cycles: WARM_CYCLES,
        unleased_rpcs,
        leased_rpcs,
        zero_rpc_hit_rate,
        storm_commits: HOT_FILES * STORM_COMMITS_PER_FILE,
        storm_grants: manager.granted_total(),
        storm_breaks: manager.broken_total(),
        storm_hit_rate: if reader_validations > 0 {
            reader_hits as f64 / reader_validations as f64
        } else {
            0.0
        },
    }
}

/// One client-count step of the high-concurrency sweep.
struct ConcurrencyRow {
    clients: usize,
    ops_per_sec: f64,
    inflight_high_water: u64,
}

/// The multiplexed-transport scaling sweep: one shard (a `FileService` over a
/// *concurrent-mode* delayed disk) served over real TCP sockets, driven by 8,
/// 64 and 256 concurrent simulated clients that all share one `RemoteFs`
/// whose `TcpClient` pools `HC_CONNECTIONS` connections.  Each simulated
/// client commits `HC_TX_PER_CLIENT` small write transactions against its own
/// file (no OCC conflicts), so the rows measure transport and server
/// pipelining: with requests id-tagged and pipelined, throughput keeps
/// growing with the number of outstanding transactions even though the
/// connection count stays fixed.
///
/// The disk charges a scripted [`HC_STALL`] per call inside the timed windows
/// only (file setup runs against an instantaneous disk): a transaction's
/// latency is then dominated by disk stalls that *concurrent* requests
/// overlap, so each row's throughput is bounded by its multiplexing depth —
/// which is exactly the quantity under test.  Returns one row per client
/// count.
fn high_concurrency() -> Vec<ConcurrencyRow> {
    const HC_PAGES: usize = 4;
    let disk =
        Arc::new(DelayStore::new(MemStore::new(), Duration::ZERO, Duration::ZERO).concurrent());
    let service = FileService::new(Arc::new(BlockServer::new(
        Arc::clone(&disk) as Arc<dyn BlockStore>
    )));
    let mut server = TcpServer::bind("127.0.0.1:0").expect("bind high-concurrency server");
    let port = Port::random();
    server.register(port, Arc::new(FileServerHandler::new(Arc::clone(&service))));
    let remote = Arc::new(RemoteFs::new(
        TcpClient::new(server.local_addr()).with_connections(HC_CONNECTIONS),
        vec![port],
    ));

    let mut rows = Vec::new();
    for &clients in &HC_CLIENTS {
        // One small file per simulated client, set up outside the timed window
        // against the un-stalled disk.
        disk.set_slow(Duration::ZERO);
        let files: Vec<_> = (0..clients)
            .map(|_| {
                let file = remote.create_file().expect("create file");
                let setup = remote.create_version(&file).expect("setup version");
                for i in 0..HC_PAGES {
                    remote
                        .append_page(&setup, &PagePath::root(), Bytes::from(vec![i as u8; 64]))
                        .expect("append");
                }
                remote.commit(&setup).expect("commit setup");
                file
            })
            .collect();

        disk.set_slow(HC_STALL);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for file in &files {
                let remote = Arc::clone(&remote);
                scope.spawn(move || {
                    for round in 0..HC_TX_PER_CLIENT {
                        let v = remote.create_version(file).expect("create version");
                        let writes: Vec<(PagePath, Bytes)> = (0..HC_PAGES)
                            .map(|i| {
                                (
                                    PagePath::new(vec![i as u16]),
                                    Bytes::from(vec![round as u8; 128]),
                                )
                            })
                            .collect();
                        remote.write_pages(&v, &writes).expect("write pages");
                        remote.commit(&v).expect("commit");
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64().max(f64::EPSILON);
        // The high-water mark is monotone over the connection pool's life, so
        // each row reports the deepest pipelining seen so far — which is the
        // row's own, since concurrency only goes up the sweep.
        rows.push(ConcurrencyRow {
            clients,
            ops_per_sec: (clients * HC_TX_PER_CLIENT) as f64 / elapsed,
            inflight_high_water: remote.stats().inflight_high_water,
        });
    }
    server.shutdown();
    rows
}

fn find<'a>(rows: &'a [Row], name: &str) -> Option<&'a Row> {
    rows.iter().find(|r| r.name == name)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_9.json".to_string());

    let rows = [
        occ_mixed(),
        cow_repeated_write("cow_repeated_write_writethrough", false),
        cow_repeated_write("cow_repeated_write_writeback", true),
        commit_flush("commit_flush_unbatched", false),
        commit_flush("commit_flush_batched", true),
        occ_sharded(1),
        occ_sharded(SHARDS),
    ];
    let (fanout_seq_ms, fanout_par_ms, fanout_replicas) = replica_fanout_delta();
    let (quorum_replicas, slow_extra_ms, write_all_ms, quorum_ms) = quorum_latency_delta();
    let (resolution_paths, resolution_cold, resolution_warm) = path_resolution();
    let (churn, churn_clients, churn_ops_per_client) = dir_churn_delta();
    let leases = lease_coherence();
    let concurrency = high_concurrency();

    let wt = find(&rows, "cow_repeated_write_writethrough").unwrap();
    let wb = find(&rows, "cow_repeated_write_writeback").unwrap();
    let unbatched = find(&rows, "commit_flush_unbatched").unwrap();
    let batched = find(&rows, "commit_flush_batched").unwrap();
    let sharded_1 = find(&rows, "occ_sharded_1").unwrap();
    let sharded_n = find(&rows, &format!("occ_sharded_{SHARDS}")).unwrap();

    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let concurrency_body: Vec<String> = concurrency
        .iter()
        .map(|row| {
            format!(
                "      {{\"clients\": {}, \"ops_per_sec\": {:.1}, \"inflight_high_water\": {}}}",
                row.clients, row.ops_per_sec, row.inflight_high_water
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"afs-perf-smoke-v9\",\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "  \"write_back_delta\": {{\n",
            "    \"cow_page_writes_before\": {},\n",
            "    \"cow_page_writes_after\": {},\n",
            "    \"write_reduction_factor\": {:.2}\n",
            "  }},\n",
            "  \"batching_delta\": {{\n",
            "    \"block_write_calls_before\": {},\n",
            "    \"block_write_calls_after\": {},\n",
            "    \"call_reduction_factor\": {:.2},\n",
            "    \"ops_per_sec_before\": {:.1},\n",
            "    \"ops_per_sec_after\": {:.1},\n",
            "    \"throughput_speedup\": {:.2}\n",
            "  }},\n",
            "  \"replica_fanout\": {{\n",
            "    \"replicas\": {},\n",
            "    \"sequential_ms\": {:.1},\n",
            "    \"parallel_ms\": {:.1},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"quorum_commit\": {{\n",
            "    \"replicas\": {},\n",
            "    \"slow_replica_extra_ms\": {:.1},\n",
            "    \"write_all_ms_per_commit\": {:.2},\n",
            "    \"quorum_ms_per_commit\": {:.2},\n",
            "    \"straggler_shielding_factor\": {:.2}\n",
            "  }},\n",
            "  \"shard_scaling\": {{\n",
            "    \"shards\": {},\n",
            "    \"replicas_per_shard\": {},\n",
            "    \"client_threads\": {},\n",
            "    \"ops_per_sec_1_shard\": {:.1},\n",
            "    \"ops_per_sec_n_shards\": {:.1},\n",
            "    \"scaling_factor\": {:.2}\n",
            "  }},\n",
            "  \"path_resolution\": {{\n",
            "    \"paths\": {},\n",
            "    \"cold_ops_per_sec\": {:.1},\n",
            "    \"warm_ops_per_sec\": {:.1},\n",
            "    \"warm_speedup\": {:.2}\n",
            "  }},\n",
            "  \"dir_churn\": {{\n",
            "    \"clients\": {},\n",
            "    \"ops_per_client\": {},\n",
            "    \"committed\": {},\n",
            "    \"ops_per_sec\": {:.1},\n",
            "    \"retries\": {},\n",
            "    \"retry_rate\": {:.3}\n",
            "  }},\n",
            "  \"lease_coherence\": {{\n",
            "    \"hot_files\": {},\n",
            "    \"warm_cycles_per_file\": {},\n",
            "    \"warm_read_rpcs_unleased\": {},\n",
            "    \"warm_read_rpcs_leased\": {},\n",
            "    \"zero_rpc_hit_rate\": {:.3},\n",
            "    \"break_storm_commits\": {},\n",
            "    \"break_storm_leases_granted\": {},\n",
            "    \"break_storm_leases_broken\": {},\n",
            "    \"break_storm_hit_rate\": {:.3}\n",
            "  }},\n",
            "  \"high_concurrency\": {{\n",
            "    \"connections\": {},\n",
            "    \"tx_per_client\": {},\n",
            "    \"rows\": [\n{}\n    ],\n",
            "    \"scaling_min_to_max_clients\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        body.join(",\n"),
        wt.io.page_writes,
        wb.io.page_writes,
        ratio(wt.io.page_writes as f64, wb.io.page_writes as f64),
        unbatched.io.block_write_calls,
        batched.io.block_write_calls,
        ratio(
            unbatched.io.block_write_calls as f64,
            batched.io.block_write_calls as f64
        ),
        unbatched.ops_per_sec,
        batched.ops_per_sec,
        ratio(batched.ops_per_sec, unbatched.ops_per_sec),
        fanout_replicas,
        fanout_seq_ms,
        fanout_par_ms,
        ratio(fanout_seq_ms, fanout_par_ms),
        quorum_replicas,
        slow_extra_ms,
        write_all_ms,
        quorum_ms,
        ratio(write_all_ms, quorum_ms),
        SHARDS,
        REPLICAS,
        CLIENT_THREADS,
        sharded_1.ops_per_sec,
        sharded_n.ops_per_sec,
        ratio(sharded_n.ops_per_sec, sharded_1.ops_per_sec),
        resolution_paths,
        resolution_cold,
        resolution_warm,
        ratio(resolution_warm, resolution_cold),
        churn_clients,
        churn_ops_per_client,
        churn.committed,
        churn.throughput(),
        churn.retries,
        churn.retry_rate(),
        leases.hot_files,
        leases.warm_cycles,
        leases.unleased_rpcs,
        leases.leased_rpcs,
        leases.zero_rpc_hit_rate,
        leases.storm_commits,
        leases.storm_grants,
        leases.storm_breaks,
        leases.storm_hit_rate,
        HC_CONNECTIONS,
        HC_TX_PER_CLIENT,
        concurrency_body.join(",\n"),
        ratio(
            concurrency.last().map(|r| r.ops_per_sec).unwrap_or(0.0),
            concurrency.first().map(|r| r.ops_per_sec).unwrap_or(0.0),
        ),
    );

    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    print!("{json}");
    eprintln!("wrote {out}");
}
