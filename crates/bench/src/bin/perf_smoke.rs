//! Perf smoke: short, deterministic workload slices that run in seconds and
//! write machine-readable throughput and I/O counters to `BENCH_3.json`, so CI
//! can track the performance trajectory without a full Criterion run.
//!
//! Three families of rows are emitted:
//!
//! * the `occ_vs_locking`-style mixed workload over a single service
//!   (`occ_mixed`, kept from `BENCH_2.json` for continuity),
//! * the copy-on-write workload run write-through and write-back, carrying the
//!   PR 2 physical-write delta,
//! * the *sharded* mixed OCC workload over a `ShardedStore` with 1 and with
//!   N shards (each shard on 2-replica block storage), carrying the 1-shard vs
//!   N-shard ops/sec scaling the sharded topology exists to produce.
//!
//! Usage: `cargo run -p afs-bench --release --bin perf-smoke [-- OUTPUT.json]`

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;

use afs_baselines::{AmoebaAdapter, StoreAdapter};
use afs_client::ShardedStore;
use afs_core::{BlockServer, FileService, MemStore, PageIoStats, PagePath, ServiceConfig};
use afs_sim::{run_workload, RunConfig};
use afs_workload::{sharded_mix, MixConfig};

/// Shard count of the "many servers" row.
const SHARDS: usize = 3;
/// Replicas per shard in the sharded rows.
const REPLICAS: usize = 2;

/// One workload's headline numbers.
struct Row {
    name: String,
    ops_per_sec: f64,
    io: PageIoStats,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"ops_per_sec\": {:.1}, ",
                "\"page_reads\": {}, \"page_writes\": {}, \"cache_hits\": {}, ",
                "\"pages_flushed_at_commit\": {}}}"
            ),
            self.name,
            self.ops_per_sec,
            self.io.page_reads,
            self.io.page_writes,
            self.io.cache_hits,
            self.io.pages_flushed_at_commit,
        )
    }
}

/// A short `occ_vs_locking`-style mixed workload over the Amoeba service.
fn occ_mixed() -> Row {
    let cc = AmoebaAdapter::in_memory();
    let config = RunConfig {
        clients: 4,
        transactions_per_client: 50,
        max_retries: 10_000,
        mix: MixConfig {
            files: 2,
            pages_per_file: 64,
            reads_per_tx: 1,
            writes_per_tx: 1,
            payload: 128,
            ..MixConfig::default()
        },
    };
    let result = run_workload(&cc, &config);
    Row {
        name: "occ_mixed".to_string(),
        ops_per_sec: result.throughput(),
        io: result.io.expect("the local service reports I/O stats"),
    }
}

/// The sharded mixed OCC workload: `shards` shards, each over a
/// `REPLICAS`-replica block store, uniform file placement, run with enough
/// clients to keep every shard busy.  The file count is held constant across
/// shard counts so the 1-shard vs N-shard comparison isolates sharding itself
/// rather than a change in OCC contention.
fn occ_sharded(shards: usize) -> Row {
    let (store, _replicas) = ShardedStore::local_replicated(shards, REPLICAS);
    let cc = StoreAdapter::over(store, "amoeba-occ-sharded");
    let config = RunConfig {
        clients: 8,
        transactions_per_client: 100,
        max_retries: 10_000,
        mix: sharded_mix(12, 32, 0.0, 42),
    };
    let result = run_workload(&cc, &config);
    Row {
        name: format!("occ_sharded_{shards}"),
        ops_per_sec: result.throughput(),
        io: result.io.expect("local shards report I/O stats"),
    }
}

/// A `cow_overhead`-style repeated-leaf-update workload: N transactions, each
/// writing the same depth-2 leaf several times before committing.
fn cow_repeated_write(name: &str, write_back: bool) -> Row {
    let server = Arc::new(BlockServer::new(Arc::new(MemStore::new())));
    let service = FileService::with_config(
        server,
        ServiceConfig {
            write_back,
            ..ServiceConfig::default()
        },
    );
    let file = service.create_file().expect("create file");
    let setup = service.create_version(&file).expect("create version");
    let interior = service
        .append_page(&setup, &PagePath::root(), Bytes::from_static(b"interior"))
        .expect("append interior");
    let leaf = service
        .append_page(&setup, &interior, Bytes::from_static(b"leaf"))
        .expect("append leaf");
    service.commit(&setup).expect("commit setup");

    const ROUNDS: usize = 200;
    const WRITES_PER_ROUND: usize = 8;
    let before = service.io_stats();
    let start = Instant::now();
    for round in 0..ROUNDS {
        let v = service.create_version(&file).expect("create version");
        for i in 0..WRITES_PER_ROUND {
            service
                .write_page(&v, &leaf, Bytes::from(vec![(round + i) as u8; 128]))
                .expect("write leaf");
        }
        service.commit(&v).expect("commit");
    }
    let elapsed = start.elapsed().as_secs_f64().max(f64::EPSILON);
    Row {
        name: name.to_string(),
        ops_per_sec: (ROUNDS * WRITES_PER_ROUND) as f64 / elapsed,
        io: service.io_stats().since(&before),
    }
}

fn find(rows: &[Row], name: &str) -> Option<(f64, u64)> {
    rows.iter()
        .find(|r| r.name == name)
        .map(|r| (r.ops_per_sec, r.io.page_writes))
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_3.json".to_string());

    let rows = [
        occ_mixed(),
        cow_repeated_write("cow_repeated_write_writethrough", false),
        cow_repeated_write("cow_repeated_write_writeback", true),
        occ_sharded(1),
        occ_sharded(SHARDS),
    ];

    let (_, wt_writes) = find(&rows, "cow_repeated_write_writethrough").unwrap_or((0.0, 0));
    let (_, wb_writes) = find(&rows, "cow_repeated_write_writeback").unwrap_or((0.0, 0));
    let (ops_1, _) = find(&rows, "occ_sharded_1").unwrap_or((0.0, 0));
    let (ops_n, _) = find(&rows, &format!("occ_sharded_{SHARDS}")).unwrap_or((0.0, 0));

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"afs-perf-smoke-v3\",\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "  \"write_back_delta\": {{\n",
            "    \"cow_page_writes_before\": {},\n",
            "    \"cow_page_writes_after\": {},\n",
            "    \"write_reduction_factor\": {:.2}\n",
            "  }},\n",
            "  \"shard_scaling\": {{\n",
            "    \"shards\": {},\n",
            "    \"replicas_per_shard\": {},\n",
            "    \"ops_per_sec_1_shard\": {:.1},\n",
            "    \"ops_per_sec_n_shards\": {:.1},\n",
            "    \"scaling_factor\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        body.join(",\n"),
        wt_writes,
        wb_writes,
        if wb_writes > 0 {
            wt_writes as f64 / wb_writes as f64
        } else {
            0.0
        },
        SHARDS,
        REPLICAS,
        ops_1,
        ops_n,
        if ops_1 > 0.0 { ops_n / ops_1 } else { 0.0 },
    );

    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    print!("{json}");
    eprintln!("wrote {out}");
}
