//! The experiment harness: regenerates every figure/claim of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run -p afs-bench --release --bin experiments -- all
//! cargo run -p afs-bench --release --bin experiments -- e1 e4 e7
//! cargo run -p afs-bench --release --bin experiments -- quick   # small parameters
//! ```
//!
//! Each experiment prints the rows recorded in EXPERIMENTS.md.

use afs_sim::experiments as exp;
use afs_sim::experiments::print_rows;

fn run(id: &str, quick: bool) {
    let scale = if quick { 1 } else { 4 };
    match id {
        "e1" => print_rows(
            "E1: OCC vs 2PL vs timestamps (throughput, abort rate)",
            &exp::e1_occ_vs_locking(&[1, 2, 4 * scale], &[1, 4, 16], 50 * scale, 256),
        ),
        "e2" => print_rows(
            "E2: serialisability-test cost vs overlap and file size",
            &exp::e2_serialise_cost(&[64, 512, 4096], 16, &[0, 1, 4, 8, 16]),
        ),
        "e3" => print_rows(
            "E3: cache validation (Amoeba) vs callbacks (XDFS)",
            &exp::e3_cache_validation(64, 16 * scale),
        ),
        "e4" => print_rows(
            "E4: crash recovery work (no rollback / no lock clearing for OCC)",
            &exp::e4_crash_recovery(64),
        ),
        "e5" => print_rows(
            "E5: commit scaling (the critical section is one test-and-set)",
            &exp::e5_commit_scaling(&[1, 2, 4, 8], 100 * scale),
        ),
        "e6" => print_rows(
            "E6: super-file reorganisation — top/inner locking vs pure OCC",
            &exp::e6_superfile_locking(4, 50 * scale),
        ),
        "e7" => print_rows(
            "E7: stable storage — single disk vs Lampson-Sturgis vs companion pair",
            &exp::e7_stable_storage(256 * scale),
        ),
        "e8" => print_rows(
            "E8: copy-on-write cost vs tree depth and fan-out",
            &exp::e8_cow_overhead(&[(1, 8), (2, 8), (3, 8), (2, 32)]),
        ),
        "e9" => print_rows(
            "E9: one-page temporary files pay no concurrency-control cost",
            &exp::e9_one_page_files(16, 50 * scale),
        ),
        "e10" => print_rows(
            "E10: garbage collector running in parallel with foreground traffic",
            &exp::e10_gc_interference(4, 50 * scale),
        ),
        "e11" | "e12" => print_rows(
            "E11/E12: starvation of large updates and the soft-lock remedy",
            &exp::e11_starvation(4, 100 * scale, 200),
        ),
        "e13" => print_rows(
            "E13: caching the flag bits avoids disk reads during validation",
            &exp::e13_flag_cache(50 * scale),
        ),
        "e14" => print_rows(
            "E14: write-once (optical) media suitability",
            &exp::e14_write_once(20 * scale),
        ),
        other => eprintln!("unknown experiment id: {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let all_ids = [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e13", "e14",
    ];
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all" || a == "quick")
    {
        all_ids.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in selected {
        run(id, quick);
    }
}
