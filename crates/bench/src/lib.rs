//! Benchmark suite for the Amoeba File Service reproduction.
//!
//! * `benches/` — Criterion micro-benchmarks for the hot paths (page codec, commit
//!   fast path and validation, serialisability-test cost, cache validation, stable
//!   storage, copy-on-write, the one-page fast path, OCC vs locking throughput).
//! * `src/bin/experiments.rs` — the experiment harness binary that regenerates every
//!   figure/claim row documented in DESIGN.md and EXPERIMENTS.md
//!   (`cargo run -p afs-bench --release --bin experiments -- all`).

#![forbid(unsafe_code)]

use bytes::Bytes;

use afs_core::{Capability, FileService, PagePath};
use std::sync::Arc;

/// Builds a committed file with `n` leaf pages of `payload` bytes each and returns
/// the file capability together with the page paths.  Shared by several benches.
pub fn committed_file(
    service: &Arc<FileService>,
    n: u16,
    payload: usize,
) -> (Capability, Vec<PagePath>) {
    let file = service.create_file().expect("create file");
    let version = service.create_version(&file).expect("create version");
    let mut paths = Vec::with_capacity(n as usize);
    for i in 0..n {
        paths.push(
            service
                .append_page(
                    &version,
                    &PagePath::root(),
                    Bytes::from(vec![(i % 251) as u8; payload]),
                )
                .expect("append page"),
        );
    }
    service.commit(&version).expect("commit");
    (file, paths)
}
