//! E7: write cost of the replicated block-storage schemes of §4.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

use amoeba_block::{BlockStore, CompanionPair, MemStore, StableStore};

fn bench_stable_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_storage_write");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    let payload = Bytes::from(vec![0x5au8; 4096]);

    group.bench_function("single_disk", |b| {
        let disk = MemStore::new();
        let nr = disk.allocate().unwrap();
        b.iter(|| disk.write(nr, payload.clone()).unwrap());
    });

    group.bench_function("lampson_sturgis_two_disks", |b| {
        let stable = StableStore::new(MemStore::new(), MemStore::new());
        let nr = stable.allocate().unwrap();
        b.iter(|| stable.write(nr, payload.clone()).unwrap());
    });

    group.bench_function("companion_pair_two_servers", |b| {
        let pair = CompanionPair::new(Arc::new(MemStore::new()), Arc::new(MemStore::new()));
        let handle = pair.handle(0);
        let nr = handle.allocate_and_write(payload.clone()).unwrap();
        b.iter(|| handle.write(nr, payload.clone()).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_stable_storage);
criterion_main!(benches);
