//! E9: the Bauer principle — a one-page temporary file pays (almost) nothing for the
//! concurrency-control machinery.

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

use afs_bench::committed_file;
use afs_core::{FileService, PagePath};

fn bench_one_page(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_page_files");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    // The compiler temporary: write one 16 KiB page into a private file and commit.
    group.bench_function("compiler_temp_write_commit", |b| {
        let service = FileService::in_memory();
        let payload = Bytes::from(vec![0x42u8; 16 * 1024]);
        b.iter(|| {
            let file = service.create_file().unwrap();
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &PagePath::root(), payload.clone())
                .unwrap();
            service.commit(&v).unwrap();
        });
    });

    // For contrast: the same data written as a page of a large, long-lived file.
    group.bench_function("page_update_in_large_file", |b| {
        let service = FileService::in_memory();
        let (file, paths) = committed_file(&service, 256, 128);
        let payload = Bytes::from(vec![0x42u8; 16 * 1024]);
        b.iter(|| {
            let v = service.create_version(&file).unwrap();
            service.write_page(&v, &paths[7], payload.clone()).unwrap();
            service.commit(&v).unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_one_page);
criterion_main!(benches);
