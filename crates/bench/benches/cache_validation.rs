//! E3: validating a client cache with the serialisability test.

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

use afs_bench::committed_file;
use afs_core::FileService;

fn bench_cache_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_validation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));

    // Null operation: the cached version is still current (unshared file).
    group.bench_function("unshared_null_op", |b| {
        let service = FileService::in_memory();
        let (file, _) = committed_file(&service, 64, 128);
        let cached = service.current_version_block(&file).unwrap();
        b.iter(|| {
            let validation = service.validate_cache(&file, cached).unwrap();
            assert!(validation.up_to_date);
        });
    });

    // Shared file: eight updates happened since the cache was filled.
    group.bench_function("shared_eight_updates_behind", |b| {
        let service = FileService::in_memory();
        let (file, paths) = committed_file(&service, 64, 128);
        let cached = service.current_version_block(&file).unwrap();
        for path in paths.iter().take(8) {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, path, Bytes::from_static(b"remote"))
                .unwrap();
            service.commit(&v).unwrap();
        }
        b.iter(|| {
            let validation = service.validate_cache(&file, cached).unwrap();
            assert_eq!(validation.discard.len(), 8);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_cache_validation);
criterion_main!(benches);
