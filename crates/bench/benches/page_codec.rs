//! F3: encoding/decoding the page layout of Fig. 3, including the packed 28+4-bit
//! references.

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use afs_core::{Page, PageFlags, PageRef};

fn sample_page(refs: usize, data: usize) -> Page {
    let mut page = Page::leaf(Bytes::from(vec![0xabu8; data]));
    for i in 0..refs {
        page.push_ref(PageRef {
            block: i as u32,
            flags: if i % 3 == 0 {
                PageFlags {
                    copied: true,
                    written: true,
                    ..PageFlags::CLEAR
                }
            } else {
                PageFlags::CLEAR
            },
        })
        .unwrap();
    }
    page
}

fn bench_page_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_codec");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    for (refs, data) in [(0usize, 1024usize), (64, 4096), (512, 32 * 1024)] {
        let page = sample_page(refs, data);
        let encoded = page.encode().unwrap();
        group.bench_function(format!("encode_refs{refs}_data{data}"), |b| {
            b.iter(|| page.encode().unwrap())
        });
        group.bench_function(format!("decode_refs{refs}_data{data}"), |b| {
            b.iter_batched(
                || encoded.clone(),
                |raw| Page::decode(raw).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_page_codec);
criterion_main!(benches);
