//! F5/F6: the commit fast path (base still current) and the validated path (base
//! superseded by a concurrent, non-conflicting update).

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

use afs_bench::committed_file;
use afs_core::FileService;

fn bench_commit_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    // Fast path: sequential updates, every commit finds its base still current.
    group.bench_function("fast_path", |b| {
        let service = FileService::in_memory();
        let (file, paths) = committed_file(&service, 16, 128);
        b.iter(|| {
            let v = service.create_version(&file).unwrap();
            service
                .write_page(&v, &paths[0], Bytes::from_static(b"x"))
                .unwrap();
            let receipt = service.commit(&v).unwrap();
            assert!(receipt.fast_path);
        });
    });

    // Validated path: a disjoint concurrent update committed first, so every commit
    // runs the serialisability test and merges.
    group.bench_function("validated_merge", |b| {
        let service = FileService::in_memory();
        let (file, paths) = committed_file(&service, 16, 128);
        b.iter(|| {
            let loser = service.create_version(&file).unwrap();
            service
                .write_page(&loser, &paths[1], Bytes::from_static(b"b"))
                .unwrap();
            let winner = service.create_version(&file).unwrap();
            service
                .write_page(&winner, &paths[0], Bytes::from_static(b"a"))
                .unwrap();
            service.commit(&winner).unwrap();
            let receipt = service.commit(&loser).unwrap();
            assert!(!receipt.fast_path);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_commit_paths);
criterion_main!(benches);
