//! E1: optimistic concurrency control vs two-phase locking vs timestamp ordering on
//! the same low-conflict workload.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use afs_baselines::{AmoebaAdapter, TimestampOrderingServer, TwoPhaseLockingServer};
use afs_sim::{run_workload, RunConfig};
use afs_workload::MixConfig;

fn config() -> RunConfig {
    RunConfig {
        clients: 4,
        transactions_per_client: 25,
        max_retries: 10_000,
        mix: MixConfig {
            files: 1,
            pages_per_file: 128,
            reads_per_tx: 1,
            writes_per_tx: 1,
            payload: 128,
            ..MixConfig::default()
        },
    }
}

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("occ_vs_locking");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("amoeba_occ", |b| {
        b.iter(|| {
            let cc = AmoebaAdapter::in_memory();
            run_workload(&cc, &config())
        })
    });
    group.bench_function("two_phase_locking", |b| {
        b.iter(|| {
            let cc = TwoPhaseLockingServer::in_memory();
            run_workload(&cc, &config())
        })
    });
    group.bench_function("timestamp_ordering", |b| {
        b.iter(|| {
            let cc = TimestampOrderingServer::in_memory();
            run_workload(&cc, &config())
        })
    });
    group.finish();

    // Print the headline comparison once so `cargo bench` output carries the rows the
    // paper's argument is about.
    let occ = run_workload(&AmoebaAdapter::in_memory(), &config());
    let tpl = run_workload(&TwoPhaseLockingServer::in_memory(), &config());
    let ts = run_workload(&TimestampOrderingServer::in_memory(), &config());
    for r in [occ, tpl, ts] {
        println!(
            "{:<20} throughput={:>9.1} tx/s aborts/commit={:.3}",
            r.mechanism,
            r.throughput(),
            r.abort_ratio()
        );
    }
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
