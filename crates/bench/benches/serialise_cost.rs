//! E2: the serialisability test's cost is proportional to what the updates touched,
//! not to the size of the file.

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

use afs_bench::committed_file;
use afs_core::FileService;

fn bench_serialise(c: &mut Criterion) {
    let mut group = c.benchmark_group("serialise_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for file_pages in [64u16, 1024] {
        for touched in [1usize, 16] {
            group.bench_function(format!("file{file_pages}_touched{touched}"), |b| {
                let service = FileService::in_memory();
                let (file, paths) = committed_file(&service, file_pages, 64);
                b.iter(|| {
                    let loser = service.create_version(&file).unwrap();
                    for p in paths.iter().take(touched) {
                        service
                            .write_page(&loser, p, Bytes::from_static(b"l"))
                            .unwrap();
                    }
                    let winner = service.create_version(&file).unwrap();
                    for p in paths.iter().rev().take(touched) {
                        service
                            .write_page(&winner, p, Bytes::from_static(b"w"))
                            .unwrap();
                    }
                    service.commit(&winner).unwrap();
                    service.commit(&loser).unwrap();
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_serialise);
criterion_main!(benches);
