//! E8: the copy-on-write bubble-up cost grows with tree depth, not file width.

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

use afs_core::{FileService, PagePath};

fn build_tree(
    service: &FileService,
    file: &afs_core::Capability,
    depth: usize,
    fanout: usize,
) -> PagePath {
    let v = service.create_version(file).unwrap();
    let mut frontier = vec![PagePath::root()];
    for _ in 0..depth {
        let mut next = Vec::new();
        for parent in &frontier {
            for _ in 0..fanout {
                next.push(
                    service
                        .append_page(&v, parent, Bytes::from_static(b"node"))
                        .unwrap(),
                );
            }
        }
        frontier = next;
    }
    service.commit(&v).unwrap();
    frontier.into_iter().next().unwrap()
}

fn bench_cow(c: &mut Criterion) {
    let mut group = c.benchmark_group("cow_leaf_update");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for (depth, fanout) in [(1usize, 8usize), (2, 8), (3, 8), (2, 32)] {
        group.bench_function(format!("depth{depth}_fanout{fanout}"), |b| {
            let service = FileService::in_memory();
            let file = service.create_file().unwrap();
            let leaf = build_tree(&service, &file, depth, fanout);
            b.iter(|| {
                let v = service.create_version(&file).unwrap();
                service
                    .write_page(&v, &leaf, Bytes::from_static(b"updated"))
                    .unwrap();
                service.commit(&v).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cow);
criterion_main!(benches);
