//! TCP transport: multiplexed transactions over real sockets.
//!
//! One TCP connection carries many logical request streams at once.  Every
//! frame is tagged with a request id (see the mux frames in [`crate::codec`]),
//! so:
//!
//! * a client thread never waits for *other* requests on its connection —
//!   it writes its frame, parks on its id in the connection's
//!   [`MuxCore`], and is woken when *its* reply lands,
//!   whatever order replies arrive in; and
//! * the server pipelines independent requests from the same connection:
//!   frames are peeled off by a readiness-driven reactor and handed to a
//!   worker pool, so a slow transaction (a faulted disk, a long scan) does
//!   not convoy the requests queued behind it.
//!
//! # Server
//!
//! [`TcpServer`] runs one *reactor* thread: a level-triggered
//! [`epoll::Poller`] over the listening socket and every accepted
//! connection.  The reactor does no service work itself — it accepts,
//! reads, and slices the byte stream into frames, dispatching each complete
//! frame to a spawn-on-demand worker pool (idle workers are reused, so the
//! pool grows exactly as deep as the offered concurrency).  Workers run the
//! registered [`RequestHandler`] and write the id-tagged reply back under a
//! per-connection write lock, waiting for writability when the socket's
//! send buffer is full.
//!
//! # Client
//!
//! [`TcpClient`] keeps a small pool of persistent connections (round-robin
//! per transaction, [`TcpClient::with_connections`] sizes it); cloning the
//! client shares the pool.  Each connection owns a
//! [`MuxCore`] pending-reply table and a reader thread
//! that completes whichever request each arriving reply names.  Connections
//! are (re-)established lazily with a jittered [`Backoff`]; re-establishment
//! after the initial connect is counted and surfaced through
//! [`Transport::reconnects`].  Connecting is free of side effects on the
//! server, so the connect path retries past refused connections (a server
//! mid-restart); *requests* are never retried here — a request that reached
//! the wire may have executed, and that ambiguity belongs to the caller's
//! failover policy (see [`crate::mux::FailoverPolicy`]).

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};

use amoeba_capability::Port;

use crate::codec::{
    decode_mux_callback, decode_mux_callback_ack, decode_mux_reply, decode_mux_request,
    encode_mux_callback, encode_mux_callback_ack, encode_mux_reply, encode_mux_request,
    is_callback_frame, MAX_FRAME_BODY,
};
use crate::message::{Reply, Request};
use crate::mux::MuxCore;
use crate::{Backoff, CallbackChannel, CallbackSink, RequestHandler, Result, RpcError, Transport};

// ---------------------------------------------------------------------------
// Worker pool: spawn on demand, reuse idle threads, retire them when quiet.
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send>;

/// Hard ceiling on concurrently live worker threads per pool.  Beyond this,
/// jobs queue until a worker frees up — spawning yet more threads for a
/// service that is already saturated only adds scheduler pressure.
const MAX_WORKERS: usize = 512;

struct PoolInner {
    queue: VecDeque<Job>,
    idle: usize,
    /// Worker threads currently alive (idle or busy).
    live: usize,
    shutdown: bool,
}

struct WorkerPool {
    inner: Mutex<PoolInner>,
    ready: Condvar,
}

impl WorkerPool {
    fn new() -> Arc<Self> {
        Arc::new(WorkerPool {
            inner: Mutex::new(PoolInner {
                queue: VecDeque::new(),
                idle: 0,
                live: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
        })
    }

    /// Queues a job.  An idle worker is woken when one exists; otherwise a
    /// fresh worker is spawned *only* while the pool is below [`MAX_WORKERS`]
    /// — in steady state every busy worker loops back for the next queued job
    /// itself, so saturation does not turn into a thread-spawn per frame on
    /// the reactor thread.
    fn execute(self: &Arc<Self>, job: Job) {
        let spawn = {
            let mut inner = self.inner.lock();
            if inner.shutdown {
                return;
            }
            inner.queue.push_back(job);
            if inner.idle > 0 {
                self.ready.notify_one();
                false
            } else if inner.live < MAX_WORKERS {
                inner.live += 1;
                true
            } else {
                false
            }
        };
        if spawn {
            let pool = Arc::clone(self);
            std::thread::spawn(move || pool.worker_loop());
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut inner = self.inner.lock();
                loop {
                    if let Some(job) = inner.queue.pop_front() {
                        break job;
                    }
                    if inner.shutdown {
                        inner.live -= 1;
                        return;
                    }
                    inner.idle += 1;
                    let timed_out = self.ready.wait_for(&mut inner, Duration::from_secs(2));
                    inner.idle -= 1;
                    if timed_out && inner.queue.is_empty() {
                        // Quiet for a while: retire instead of idling forever.
                        inner.live -= 1;
                        return;
                    }
                }
            };
            job();
        }
    }

    fn shutdown(&self) {
        self.inner.lock().shutdown = true;
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Shared frame I/O helpers.
// ---------------------------------------------------------------------------

/// Pops one complete `len | body` frame off the front of `buf`, or returns
/// `Ok(None)` if more bytes are needed.  An impossible length word poisons
/// the connection (`Err`): the stream can never resynchronise.
fn extract_frame(buf: &mut Vec<u8>) -> Result<Option<Bytes>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BODY {
        return Err(RpcError::Decode(format!(
            "frame of {len} bytes is too large"
        )));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let body = Bytes::from(buf[4..4 + len].to_vec());
    buf.drain(..4 + len);
    Ok(Some(body))
}

/// Writes a whole frame to a possibly non-blocking socket, waiting for
/// writability whenever the send buffer fills, serialised by `lock` so
/// concurrent repliers never interleave partial frames.
fn write_frame_blocking(stream: &TcpStream, lock: &Mutex<()>, frame: &[u8]) -> Result<()> {
    let _guard = lock.lock();
    let mut written = 0;
    let mut stream_ref = stream;
    while written < frame.len() {
        match stream_ref.write(&frame[written..]) {
            Ok(0) => return Err(RpcError::Io("connection closed mid-write".into())),
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                epoll::wait_writable(stream.as_raw_fd(), Some(Duration::from_secs(5)))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

const LISTENER_TOKEN: u64 = 0;

/// One accepted connection, shared between the reactor (reads), the workers
/// replying on it, and any handler holding it as a [`CallbackChannel`].
///
/// All outbound traffic — replies *and* callback pushes — leaves through the
/// one [`ServerConn::send_frame`] path, serialised by the per-connection
/// write lock, so there is exactly one writer discipline per connection.
struct ServerConn {
    stream: TcpStream,
    write_lock: Mutex<()>,
    /// The reactor token: unique among this server's live connections, which
    /// makes it the natural grant-table key.
    peer_key: u64,
    /// Tickets for callback pushes, echoed back by the client's acks.
    next_ticket: AtomicU64,
    closed: AtomicBool,
    /// Acks that have arrived but not yet been collected by a waiter.
    acks: Mutex<std::collections::HashSet<u64>>,
    ack_ready: Condvar,
}

impl ServerConn {
    /// The single outbound frame path: every reply and every callback goes
    /// through here, taking the connection's write lock so concurrent
    /// senders never interleave partial frames.
    fn send_frame(&self, frame: &[u8]) -> Result<()> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(RpcError::Dropped);
        }
        write_frame_blocking(&self.stream, &self.write_lock, frame)
    }

    /// Records a callback ack from the peer and wakes waiters.
    fn record_ack(&self, ticket: u64) {
        self.acks.lock().insert(ticket);
        self.ack_ready.notify_all();
    }

    /// Marks the connection dead: pushes start failing and every
    /// [`CallbackChannel::wait_acked`] parked on it returns.
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.ack_ready.notify_all();
    }
}

impl CallbackChannel for ServerConn {
    fn push(&self, port: Port, payload: Bytes) -> Option<u64> {
        if self.closed.load(Ordering::SeqCst) {
            return None;
        }
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let frame = encode_mux_callback(ticket, port, &payload).ok()?;
        self.send_frame(&frame).ok()?;
        Some(ticket)
    }

    fn wait_acked(&self, ticket: u64, deadline: Instant) -> bool {
        let mut acks = self.acks.lock();
        loop {
            if acks.remove(&ticket) {
                return true;
            }
            if self.closed.load(Ordering::SeqCst) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.ack_ready.wait_for(&mut acks, deadline - now);
        }
    }

    fn peer_key(&self) -> u64 {
        self.peer_key
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

/// Reactor-private per-connection state.
struct ConnState {
    conn: Arc<ServerConn>,
    read_buf: Vec<u8>,
}

struct ServerShared {
    handlers: RwLock<HashMap<Port, Arc<dyn RequestHandler>>>,
    pool: Arc<WorkerPool>,
    shutdown: AtomicBool,
}

/// A server hosting one or more Amoeba service ports on a TCP socket,
/// pipelining independent requests per connection.
pub struct TcpServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    reactor: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// reactor on a background thread.
    pub fn bind(addr: &str) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(ServerShared {
            handlers: RwLock::new(HashMap::new()),
            pool: WorkerPool::new(),
            shutdown: AtomicBool::new(false),
        });

        let poller = epoll::Poller::new()?;
        poller.add(listener.as_raw_fd(), LISTENER_TOKEN, epoll::READABLE)?;

        let reactor_shared = Arc::clone(&shared);
        let reactor = std::thread::spawn(move || {
            reactor_loop(listener, poller, reactor_shared);
        });

        Ok(TcpServer {
            addr: local,
            shared,
            reactor: Some(reactor),
        })
    }

    /// The socket address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a handler for a logical service port.
    pub fn register(&self, port: Port, handler: Arc<dyn RequestHandler>) {
        self.shared.handlers.write().insert(port, handler);
    }

    /// Stops the reactor and the worker pool.  Established connections are
    /// closed; in-flight handlers finish but their replies may be lost.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
        self.shared.pool.shutdown();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn reactor_loop(listener: TcpListener, poller: epoll::Poller, shared: Arc<ServerShared>) {
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut next_token: u64 = LISTENER_TOKEN + 1;
    let mut events: Vec<epoll::Event> = Vec::new();
    let mut scratch = [0u8; 64 * 1024];

    while !shared.shutdown.load(Ordering::SeqCst) {
        // The timeout doubles as the shutdown poll interval.
        if poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .is_err()
        {
            break;
        }
        for event in &events {
            if event.token == LISTENER_TOKEN {
                // Drain the accept queue (level-triggered, but cheap to loop).
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            stream.set_nodelay(true).ok();
                            let token = next_token;
                            next_token += 1;
                            if poller
                                .add(stream.as_raw_fd(), token, epoll::READABLE)
                                .is_ok()
                            {
                                conns.insert(
                                    token,
                                    ConnState {
                                        conn: Arc::new(ServerConn {
                                            stream,
                                            write_lock: Mutex::new(()),
                                            peer_key: token,
                                            next_ticket: AtomicU64::new(1),
                                            closed: AtomicBool::new(false),
                                            acks: Mutex::new(std::collections::HashSet::new()),
                                            ack_ready: Condvar::new(),
                                        }),
                                        read_buf: Vec::new(),
                                    },
                                );
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
            } else if let Some(state) = conns.get_mut(&event.token) {
                if !pump_connection(state, &mut scratch, &shared) {
                    let fd = state.conn.stream.as_raw_fd();
                    poller.delete(fd).ok();
                    // Closing the channel wakes lease managers parked on
                    // acks and lets grant tables drop this peer's leases —
                    // a dead connection holds no leases.
                    state.conn.close();
                    conns.remove(&event.token);
                }
            }
        }
    }
    // Reactor exit: every surviving channel dies with its connection.
    for state in conns.values() {
        state.conn.close();
    }
}

/// Reads everything currently available on the connection, dispatching each
/// complete frame to the worker pool.  Returns `false` when the connection
/// is finished (EOF, error, or an unframeable byte stream).
fn pump_connection(state: &mut ConnState, scratch: &mut [u8], shared: &Arc<ServerShared>) -> bool {
    loop {
        match (&state.conn.stream).read(scratch) {
            Ok(0) => return false,
            Ok(n) => {
                state.read_buf.extend_from_slice(&scratch[..n]);
                loop {
                    match extract_frame(&mut state.read_buf) {
                        Ok(Some(body)) if is_callback_frame(&body) => {
                            // A callback ack from the peer: record it on the
                            // reactor thread (a set insert — no service work)
                            // so the committing writer parked on it wakes.
                            match decode_mux_callback_ack(body) {
                                Ok(ticket) => state.conn.record_ack(ticket),
                                Err(_) => return false,
                            }
                        }
                        Ok(Some(body)) => dispatch_request(body, &state.conn, shared),
                        Ok(None) => break,
                        Err(_) => return false,
                    }
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Hands one request frame to the worker pool: decode, run the handler for
/// its port with the originating connection attached as a callback channel,
/// write the id-tagged reply back through the connection's one outbound
/// frame path.
fn dispatch_request(body: Bytes, conn: &Arc<ServerConn>, shared: &Arc<ServerShared>) {
    let conn = Arc::clone(conn);
    let shared_for_job = Arc::clone(shared);
    shared.pool.execute(Box::new(move || {
        let (id, port, request) = match decode_mux_request(body) {
            Ok(parts) => parts,
            // Without an id there is nothing to tag a reply with; the
            // client's deadline reports the loss.
            Err(_) => return,
        };
        let handler = shared_for_job.handlers.read().get(&port).cloned();
        let reply = match handler {
            Some(h) => {
                let channel: Arc<dyn CallbackChannel> = Arc::clone(&conn) as _;
                h.handle_from(request, Some(&channel))
            }
            None => Reply::error(Bytes::from_static(b"no such port")),
        };
        let frame = match encode_mux_reply(id, &reply) {
            Ok(frame) => frame,
            Err(_) => {
                match encode_mux_reply(id, &Reply::error(Bytes::from_static(b"reply too large"))) {
                    Ok(frame) => frame,
                    Err(_) => return,
                }
            }
        };
        let _ = conn.send_frame(&frame);
    }));
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

/// One established client connection: a blocking socket written under a
/// lock, demultiplexed by a dedicated reader thread into the `MuxCore`.
struct ClientConn {
    stream: TcpStream,
    write_lock: Mutex<()>,
    mux: MuxCore,
    dead: AtomicBool,
}

impl ClientConn {
    /// Marks the connection unusable and fails everything in flight.
    fn kill(&self, err: &RpcError) {
        self.dead.store(true, Ordering::SeqCst);
        self.mux.fail_all(err);
    }
}

/// A pool slot: the current connection (if any) and whether this slot was
/// ever connected — re-establishing a previously working slot is a
/// *reconnect*, establishing it the first time is not.
#[derive(Default)]
struct ConnSlot {
    conn: Option<Arc<ClientConn>>,
    ever_connected: bool,
}

/// Callback listeners shared by every connection of one pooled client: the
/// server may grant a lease on one connection and (with per-connection grant
/// tables) break it on the same one, but the client-side tables are
/// connection-agnostic, so every reader dispatches into the same sink list.
type SinkList = Arc<Mutex<Vec<Arc<dyn CallbackSink>>>>;

struct ClientInner {
    server: SocketAddr,
    timeout: Duration,
    slots: Vec<Mutex<ConnSlot>>,
    next: AtomicUsize,
    reconnects: AtomicU64,
    sinks: SinkList,
}

/// A multiplexing client for a [`TcpServer`]: a pool of persistent
/// connections shared by all clones, many concurrent transactions in flight
/// per connection.
#[derive(Clone)]
pub struct TcpClient {
    inner: Arc<ClientInner>,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("server", &self.inner.server)
            .field("timeout", &self.inner.timeout)
            .field("connections", &self.inner.slots.len())
            .finish()
    }
}

impl TcpClient {
    /// Creates a client for the server at `server` with the default
    /// per-transaction timeout (5 s) and connection pool (2 connections).
    pub fn new(server: SocketAddr) -> Self {
        Self::build(server, Duration::from_secs(5), 2)
    }

    /// Sets the per-transaction timeout.  (A builder: call before issuing
    /// transactions — the pool is reset.)
    pub fn with_timeout(self, timeout: Duration) -> Self {
        Self::build(self.inner.server, timeout, self.inner.slots.len())
    }

    /// Sets the number of pooled connections transactions are spread over.
    /// (A builder: call before issuing transactions — the pool is reset.)
    pub fn with_connections(self, connections: usize) -> Self {
        Self::build(self.inner.server, self.inner.timeout, connections.max(1))
    }

    fn build(server: SocketAddr, timeout: Duration, connections: usize) -> Self {
        TcpClient {
            inner: Arc::new(ClientInner {
                server,
                timeout,
                slots: (0..connections)
                    .map(|_| Mutex::new(ConnSlot::default()))
                    .collect(),
                next: AtomicUsize::new(0),
                reconnects: AtomicU64::new(0),
                sinks: Arc::new(Mutex::new(Vec::new())),
            }),
        }
    }

    /// Picks the next pool slot round-robin and returns its live connection,
    /// (re-)establishing one if needed.  Connect failures are retried on a
    /// jittered backoff; once the schedule exhausts, `ServerCrashed` is
    /// returned — a connection that never opened provably executed nothing,
    /// so every failover policy may redirect it.
    fn get_conn(&self) -> Result<Arc<ClientConn>> {
        let inner = &self.inner;
        let slot_index = inner.next.fetch_add(1, Ordering::Relaxed) % inner.slots.len();
        let mut slot = inner.slots[slot_index].lock();
        if let Some(conn) = &slot.conn {
            if !conn.dead.load(Ordering::SeqCst) {
                return Ok(Arc::clone(conn));
            }
        }
        let mut backoff = Backoff::with_seed(
            Duration::from_millis(10),
            Duration::from_millis(80),
            3,
            u64::from(inner.server.port()) ^ slot_index as u64,
        );
        loop {
            match TcpStream::connect_timeout(&inner.server, inner.timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    let reader_stream = stream.try_clone()?;
                    let conn = Arc::new(ClientConn {
                        stream,
                        write_lock: Mutex::new(()),
                        mux: MuxCore::new(),
                        dead: AtomicBool::new(false),
                    });
                    let reader_conn = Arc::clone(&conn);
                    let reader_sinks = Arc::clone(&inner.sinks);
                    std::thread::spawn(move || {
                        reader_loop(reader_stream, reader_conn, reader_sinks)
                    });
                    if slot.ever_connected {
                        inner.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    slot.ever_connected = true;
                    slot.conn = Some(Arc::clone(&conn));
                    return Ok(conn);
                }
                Err(_) => {
                    if !backoff.sleep_next() {
                        return Err(RpcError::ServerCrashed);
                    }
                }
            }
        }
    }
}

/// Demultiplexes inbound frames off one connection until it dies.  Replies
/// complete whichever request their id names — in arrival order, which need
/// not be request order.  Server-pushed callback frames (the reserved
/// [`crate::codec::CALLBACK_MARKER`] id) are dispatched to every registered
/// [`CallbackSink`] and then acked back to the server: sinks only mutate
/// local state (drop a lease), so "every sink returned" is the moment the
/// callback is honoured, and the ack write happens here on the reader thread
/// through the same serialised frame writer the requesters use.
fn reader_loop(mut stream: TcpStream, conn: Arc<ClientConn>, sinks: SinkList) {
    let died: RpcError = loop {
        let mut header = [0u8; 4];
        if stream.read_exact(&mut header).is_err() {
            break RpcError::Dropped;
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_FRAME_BODY {
            break RpcError::Decode(format!("reply frame of {len} bytes is too large"));
        }
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).is_err() {
            break RpcError::Dropped;
        }
        let body = Bytes::from(body);
        if is_callback_frame(&body) {
            match decode_mux_callback(body) {
                Ok((ticket, port, payload)) => {
                    let listeners: Vec<Arc<dyn CallbackSink>> = sinks.lock().clone();
                    for sink in &listeners {
                        sink.on_callback(port, payload.clone());
                    }
                    let ack = encode_mux_callback_ack(ticket);
                    if write_frame_blocking(&conn.stream, &conn.write_lock, &ack).is_err() {
                        // Can't ack on a dying connection; the server's
                        // wait falls back to the grant's own expiry.
                        break RpcError::Dropped;
                    }
                }
                Err(err) => break err,
            }
            continue;
        }
        match decode_mux_reply(body) {
            Ok((id, reply)) => {
                conn.mux.complete(id, Ok(reply));
            }
            // An undecodable reply means the stream is out of sync; nothing
            // on this connection can be trusted any more.
            Err(err) => break err,
        }
    };
    conn.kill(&died);
    // Leases live and die with the connection that could break them: tell
    // every sink its server can no longer reach it.
    let listeners: Vec<Arc<dyn CallbackSink>> = sinks.lock().clone();
    for sink in &listeners {
        sink.on_connection_lost();
    }
}

impl Transport for TcpClient {
    fn transact(&self, port: Port, request: Request) -> Result<Reply> {
        let deadline = Instant::now() + self.inner.timeout;
        let conn = self.get_conn()?;
        let id = conn.mux.allocate();
        let frame = encode_mux_request(id, port, &request)?;
        if write_frame_blocking(&conn.stream, &conn.write_lock, &frame).is_err() {
            // The write path failed: the connection is gone, and whether any
            // bytes reached the server is unknowable — poison it and report
            // the ambiguous outcome.
            conn.kill(&RpcError::Dropped);
        }
        conn.mux.wait(id, deadline)
    }

    fn reconnects(&self) -> u64 {
        self.inner.reconnects.load(Ordering::Relaxed)
    }

    fn register_callback_sink(&self, sink: Arc<dyn CallbackSink>) -> bool {
        self.inner.sinks.lock().push(sink);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_capability::Capability;
    use bytes::BytesMut;

    #[test]
    fn tcp_round_trip() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let port = Port::from_raw(77);
        server.register(
            port,
            Arc::new(|req: Request| {
                let mut out = BytesMut::from(&b"echo:"[..]);
                out.extend_from_slice(&req.payload);
                Reply::ok(out.freeze())
            }),
        );
        let client = TcpClient::new(server.local_addr());
        let reply = client
            .transact(
                port,
                Request::new(1, Capability::null(), Bytes::from_static(b"hi")),
            )
            .unwrap();
        assert!(reply.is_ok());
        assert_eq!(reply.payload, Bytes::from_static(b"echo:hi"));
    }

    #[test]
    fn unknown_port_gets_error_reply() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let client = TcpClient::new(server.local_addr());
        let reply = client
            .transact(Port::from_raw(1), Request::empty(0, Capability::null()))
            .unwrap();
        assert!(!reply.is_ok());
    }

    #[test]
    fn multiple_sequential_transactions() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let port = Port::from_raw(5);
        server.register(port, Arc::new(|req: Request| Reply::ok(req.payload)));
        let client = TcpClient::new(server.local_addr());
        for i in 0..10u8 {
            let reply = client
                .transact(
                    port,
                    Request::new(1, Capability::null(), Bytes::from(vec![i])),
                )
                .unwrap();
            assert_eq!(reply.payload, Bytes::from(vec![i]));
        }
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let port = Port::from_raw(6);
        server.register(port, Arc::new(|req: Request| Reply::ok(req.payload)));
        let addr = server.local_addr();
        let mut handles = Vec::new();
        for t in 0..4u8 {
            handles.push(std::thread::spawn(move || {
                let client = TcpClient::new(addr);
                for i in 0..20u8 {
                    let payload = Bytes::from(vec![t, i]);
                    let reply = client
                        .transact(port, Request::new(1, Capability::null(), payload.clone()))
                        .unwrap();
                    assert_eq!(reply.payload, payload);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Many logical streams interleave on ONE connection, and replies
    /// complete out of order: the handler sleeps longer for smaller ids, so
    /// the first requests written are the last answered — yet every thread
    /// gets its own payload back.
    #[test]
    fn interleaved_streams_on_one_connection_complete_out_of_order() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let port = Port::from_raw(9);
        server.register(
            port,
            Arc::new(|req: Request| {
                let rank = req.payload[0];
                // Earlier-sent requests sleep longest → reply order is the
                // reverse of request order.
                std::thread::sleep(Duration::from_millis(u64::from(16 - rank) * 5));
                Reply::ok(req.payload)
            }),
        );
        // A single shared connection: all 16 streams multiplex on it.
        let client = TcpClient::new(server.local_addr()).with_connections(1);
        let start = Instant::now();
        let mut handles = Vec::new();
        for rank in 0..16u8 {
            let client = client.clone();
            handles.push(std::thread::spawn(move || {
                let payload = Bytes::from(vec![rank]);
                let reply = client
                    .transact(port, Request::new(1, Capability::null(), payload.clone()))
                    .unwrap();
                assert_eq!(reply.payload, payload);
            }));
            // Stagger the sends a little so write order is deterministic
            // enough for the sleep schedule to invert it.
            std::thread::sleep(Duration::from_millis(1));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Serially the sleeps alone would be 5+10+...+80 = 680 ms; pipelined
        // on one connection the whole batch bounds at the longest sleep plus
        // overhead.  A loose factor guards against CI jitter.
        assert!(
            start.elapsed() < Duration::from_millis(600),
            "requests on one connection were serialised: {:?}",
            start.elapsed()
        );
    }

    /// A request that exceeds its deadline times out alone; the connection
    /// keeps serving the requests pipelined behind it.
    #[test]
    fn deadline_expiry_cancels_one_request_without_killing_the_connection() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let port = Port::from_raw(11);
        server.register(
            port,
            Arc::new(|req: Request| {
                if req.op == 1 {
                    std::thread::sleep(Duration::from_millis(300));
                }
                Reply::ok(req.payload)
            }),
        );
        let client = TcpClient::new(server.local_addr())
            .with_connections(1)
            .with_timeout(Duration::from_millis(60));
        let slow = {
            let client = client.clone();
            std::thread::spawn(move || {
                client.transact(port, Request::new(1, Capability::null(), Bytes::new()))
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        // Pipelined behind the slow one, but fast: completes fine.
        let fast = client
            .transact(
                port,
                Request::new(0, Capability::null(), Bytes::from_static(b"fast")),
            )
            .unwrap();
        assert_eq!(fast.payload, Bytes::from_static(b"fast"));
        assert_eq!(slow.join().unwrap().unwrap_err(), RpcError::Timeout);
        // The connection survived the expiry: later transactions still work.
        let again = client
            .transact(
                port,
                Request::new(0, Capability::null(), Bytes::from_static(b"again")),
            )
            .unwrap();
        assert_eq!(again.payload, Bytes::from_static(b"again"));
    }

    /// A handler that captures its peer channel on op 1 and, on op 2, pushes
    /// a callback through it and reports whether the client acked in time —
    /// the exact shape of a lease grant followed by a lease break.
    #[test]
    fn callbacks_are_pushed_dispatched_and_acked() {
        struct Breaker {
            chan: Mutex<Option<Arc<dyn CallbackChannel>>>,
        }
        impl RequestHandler for Breaker {
            fn handle(&self, req: Request) -> Reply {
                Reply::ok(req.payload)
            }
            fn handle_from(&self, req: Request, peer: Option<&Arc<dyn CallbackChannel>>) -> Reply {
                match req.op {
                    1 => {
                        *self.chan.lock() = peer.cloned();
                        Reply::ok(Bytes::new())
                    }
                    _ => {
                        let chan = self.chan.lock().clone().expect("op 1 first");
                        let ticket = chan
                            .push(Port::from_raw(15), Bytes::from_static(b"break"))
                            .expect("push on live connection");
                        let acked =
                            chan.wait_acked(ticket, Instant::now() + Duration::from_secs(2));
                        Reply::ok(Bytes::from(vec![u8::from(acked)]))
                    }
                }
            }
        }

        struct Recorder {
            seen: Mutex<Vec<(Port, Bytes)>>,
        }
        impl CallbackSink for Recorder {
            fn on_callback(&self, port: Port, payload: Bytes) {
                self.seen.lock().push((port, payload));
            }
        }

        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let port = Port::from_raw(15);
        server.register(
            port,
            Arc::new(Breaker {
                chan: Mutex::new(None),
            }),
        );
        let client = TcpClient::new(server.local_addr()).with_connections(1);
        let recorder = Arc::new(Recorder {
            seen: Mutex::new(Vec::new()),
        });
        assert!(client.register_callback_sink(Arc::clone(&recorder) as _));

        client
            .transact(port, Request::new(1, Capability::null(), Bytes::new()))
            .unwrap();
        let reply = client
            .transact(port, Request::new(2, Capability::null(), Bytes::new()))
            .unwrap();
        assert_eq!(
            reply.payload.as_ref(),
            &[1],
            "server never saw the client's ack"
        );
        let seen = recorder.seen.lock();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, Port::from_raw(15));
        assert_eq!(seen[0].1.as_ref(), b"break");
    }

    /// Killing the server and restarting on the same address exercises the
    /// reconnect path, which must be counted in `reconnects()`.
    #[test]
    fn reconnect_after_server_restart_is_counted() {
        let mut server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let port = Port::from_raw(13);
        server.register(port, Arc::new(|req: Request| Reply::ok(req.payload)));
        let client = TcpClient::new(addr).with_connections(1);
        client
            .transact(port, Request::new(0, Capability::null(), Bytes::new()))
            .unwrap();
        assert_eq!(client.reconnects(), 0);

        server.shutdown();
        // The pooled connection is now dead; the first transact after the
        // restart below must transparently re-establish it.
        let server = TcpServer::bind(&addr.to_string()).unwrap();
        server.register(port, Arc::new(|req: Request| Reply::ok(req.payload)));

        // The dead connection may serve one failing transact before the
        // reader thread notices EOF; retry a few times like a real caller.
        let mut ok = false;
        for _ in 0..20 {
            if client
                .transact(port, Request::new(0, Capability::null(), Bytes::new()))
                .is_ok()
            {
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(ok, "client never recovered after server restart");
        assert_eq!(client.reconnects(), 1);
    }
}
