//! TCP transport: the same transactions over real sockets.
//!
//! A [`TcpServer`] binds a listening socket and dispatches every incoming transaction
//! to the handlers registered per service port (several logical Amoeba ports can be
//! served from one socket, like several services hosted in one server process).  A
//! [`TcpClient`] implements [`Transport`] by opening one connection per transaction —
//! deliberately simple, matching the paper's model of independent, self-contained
//! transactions.
//!
//! Frame layout on the socket: the request frame from [`crate::codec`] prefixed with
//! the 8-byte destination port.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::RwLock;

use amoeba_capability::Port;

use crate::codec::{decode_reply, decode_request, encode_reply, encode_request};
use crate::message::{Reply, Request};
use crate::{RequestHandler, Result, RpcError, Transport};

fn read_exact_bytes(stream: &mut TcpStream, len: usize) -> Result<Bytes> {
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(Bytes::from(buf))
}

fn read_frame(stream: &mut TcpStream) -> Result<Bytes> {
    let header = read_exact_bytes(stream, 4)?;
    let len = u32::from_le_bytes(header[..].try_into().unwrap()) as usize;
    if len > crate::message::MAX_PAYLOAD + 8192 {
        return Err(RpcError::Decode(format!(
            "frame of {len} bytes is too large"
        )));
    }
    read_exact_bytes(stream, len)
}

/// A server hosting one or more Amoeba service ports on a TCP socket.
pub struct TcpServer {
    addr: SocketAddr,
    handlers: Arc<RwLock<HashMap<Port, Arc<dyn RequestHandler>>>>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts accepting
    /// connections on a background thread.
    pub fn bind(addr: &str) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let handlers: Arc<RwLock<HashMap<Port, Arc<dyn RequestHandler>>>> =
            Arc::new(RwLock::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_handlers = Arc::clone(&handlers);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            while !accept_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_handlers = Arc::clone(&accept_handlers);
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, conn_handlers);
                        });
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(TcpServer {
            addr: local,
            handlers,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The socket address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a handler for a logical service port.
    pub fn register(&self, port: Port, handler: Arc<dyn RequestHandler>) {
        self.handlers.write().insert(port, handler);
    }

    /// Stops accepting new connections.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    handlers: Arc<RwLock<HashMap<Port, Arc<dyn RequestHandler>>>>,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    loop {
        // Destination port, then the request frame.
        let mut port_buf = [0u8; 8];
        match stream.read_exact(&mut port_buf) {
            Ok(()) => {}
            Err(_) => return Ok(()), // Client closed the connection.
        }
        let port = Port::from_raw(u64::from_le_bytes(port_buf));
        let body = read_frame(&mut stream)?;
        let request = decode_request(body)?;
        let handler = handlers.read().get(&port).cloned();
        let reply = match handler {
            Some(h) => h.handle(request),
            None => Reply::error(Bytes::from_static(b"no such port")),
        };
        let frame = encode_reply(&reply)?;
        stream.write_all(&frame)?;
    }
}

/// A client that performs transactions against a [`TcpServer`].
#[derive(Debug, Clone)]
pub struct TcpClient {
    server: SocketAddr,
    timeout: Duration,
    retries: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl TcpClient {
    /// Creates a client for the server at `server`.
    pub fn new(server: SocketAddr) -> Self {
        TcpClient {
            server,
            timeout: Duration::from_secs(5),
            retries: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Sets the per-transaction timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// How many backed-off connect retries this client (and its clones) have
    /// performed.
    pub fn retries(&self) -> u64 {
        self.retries.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// `connect_timeout` with a short, jittered, backed-off retry: connecting
    /// is free of side effects on the server, so retrying past a refused or
    /// timed-out connection (a server mid-restart) is always safe.  Requests
    /// are NOT retried here — a request that reached the wire may have
    /// executed; that ambiguity belongs to the caller's failover policy.
    fn connect(&self) -> Result<TcpStream> {
        let mut backoff = crate::Backoff::with_seed(
            Duration::from_millis(10),
            Duration::from_millis(80),
            3,
            self.server.port().into(),
        );
        loop {
            match TcpStream::connect_timeout(&self.server, self.timeout) {
                Ok(stream) => return Ok(stream),
                Err(_) => {
                    if !backoff.sleep_next() {
                        return Err(RpcError::Timeout);
                    }
                    self.retries
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    }
}

impl Transport for TcpClient {
    fn transact(&self, port: Port, request: Request) -> Result<Reply> {
        let mut stream = self.connect()?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true).ok();

        let mut head = BytesMut::with_capacity(8);
        head.put_u64_le(port.raw());
        stream.write_all(&head)?;
        let frame = encode_request(&request)?;
        stream.write_all(&frame)?;

        let body = read_frame(&mut stream)?;
        decode_reply(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_capability::Capability;

    #[test]
    fn tcp_round_trip() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let port = Port::from_raw(77);
        server.register(
            port,
            Arc::new(|req: Request| {
                let mut out = BytesMut::from(&b"echo:"[..]);
                out.extend_from_slice(&req.payload);
                Reply::ok(out.freeze())
            }),
        );
        let client = TcpClient::new(server.local_addr());
        let reply = client
            .transact(
                port,
                Request::new(1, Capability::null(), Bytes::from_static(b"hi")),
            )
            .unwrap();
        assert!(reply.is_ok());
        assert_eq!(reply.payload, Bytes::from_static(b"echo:hi"));
    }

    #[test]
    fn unknown_port_gets_error_reply() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let client = TcpClient::new(server.local_addr());
        let reply = client
            .transact(Port::from_raw(1), Request::empty(0, Capability::null()))
            .unwrap();
        assert!(!reply.is_ok());
    }

    #[test]
    fn multiple_sequential_transactions() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let port = Port::from_raw(5);
        server.register(port, Arc::new(|req: Request| Reply::ok(req.payload)));
        let client = TcpClient::new(server.local_addr());
        for i in 0..10u8 {
            let reply = client
                .transact(
                    port,
                    Request::new(1, Capability::null(), Bytes::from(vec![i])),
                )
                .unwrap();
            assert_eq!(reply.payload, Bytes::from(vec![i]));
        }
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let port = Port::from_raw(6);
        server.register(port, Arc::new(|req: Request| Reply::ok(req.payload)));
        let addr = server.local_addr();
        let mut handles = Vec::new();
        for t in 0..4u8 {
            handles.push(std::thread::spawn(move || {
                let client = TcpClient::new(addr);
                for i in 0..20u8 {
                    let payload = Bytes::from(vec![t, i]);
                    let reply = client
                        .transact(port, Request::new(1, Capability::null(), payload.clone()))
                        .unwrap();
                    assert_eq!(reply.payload, payload);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
