//! Request and reply frames.

use bytes::Bytes;

use amoeba_capability::Capability;

/// Maximum payload of one transaction: 32 KiB, the page-size bound of §5.
pub const MAX_PAYLOAD: usize = 32 * 1024;

/// Extra headroom allowed on top of [`MAX_PAYLOAD`] for the fixed-size page header
/// that the file service attaches to a page, plus the block-service framing
/// (block number and length prefix) around one full 36 KiB block in a
/// [`crate::block::BlockOp::Write`] / `WriteBlocks` payload; the *client data*
/// in a page is still bounded by [`MAX_PAYLOAD`].
pub const MAX_FRAME_PAYLOAD: usize = MAX_PAYLOAD + 6144;

/// A request: an operation code, the capability naming the object operated on, and an
/// opaque payload interpreted by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Service-specific operation code.
    pub op: u32,
    /// Capability for the object the operation applies to.
    pub cap: Capability,
    /// Operation arguments, marshalled by the service-specific client stub.
    pub payload: Bytes,
}

impl Request {
    /// Builds a request.
    pub fn new(op: u32, cap: Capability, payload: Bytes) -> Self {
        Request { op, cap, payload }
    }

    /// Builds a request with an empty payload.
    pub fn empty(op: u32, cap: Capability) -> Self {
        Request {
            op,
            cap,
            payload: Bytes::new(),
        }
    }
}

/// Outcome of a transaction as reported by the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The operation succeeded; the payload carries its result.
    Ok = 0,
    /// The operation failed; the payload carries a service-specific error encoding.
    Error = 1,
}

impl Status {
    /// Decodes a status byte.
    pub fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Ok),
            1 => Some(Status::Error),
            _ => None,
        }
    }
}

/// A reply: a status and an opaque result payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Whether the operation succeeded.
    pub status: Status,
    /// Result data (or error encoding when `status == Error`).
    pub payload: Bytes,
}

impl Reply {
    /// A successful reply carrying `payload`.
    pub fn ok(payload: Bytes) -> Self {
        Reply {
            status: Status::Ok,
            payload,
        }
    }

    /// A successful reply with no data.
    pub fn ok_empty() -> Self {
        Reply::ok(Bytes::new())
    }

    /// An error reply carrying a service-specific error encoding.
    pub fn error(payload: Bytes) -> Self {
        Reply {
            status: Status::Error,
            payload,
        }
    }

    /// True if the reply indicates success.
    pub fn is_ok(&self) -> bool {
        self.status == Status::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_round_trips() {
        assert_eq!(Status::from_u8(Status::Ok as u8), Some(Status::Ok));
        assert_eq!(Status::from_u8(Status::Error as u8), Some(Status::Error));
        assert_eq!(Status::from_u8(7), None);
    }

    #[test]
    fn reply_constructors() {
        assert!(Reply::ok_empty().is_ok());
        assert!(!Reply::error(Bytes::from_static(b"bad")).is_ok());
    }

    #[test]
    fn page_bound_is_32k() {
        assert_eq!(MAX_PAYLOAD, 32768);
        // Headroom covers a full 36 KiB block plus its batch-entry framing.
        assert_eq!(MAX_FRAME_PAYLOAD, 36 * 1024 + 2048);
    }
}
