//! RPC error type.

use std::error::Error;
use std::fmt;

/// Errors that a transaction can fail with, as seen by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No service is registered at the addressed port.
    NoSuchPort,
    /// The request was lost (injected fault or the server crashed mid-transaction).
    Dropped,
    /// The server is marked as crashed.
    ServerCrashed,
    /// The reply did not arrive within the client's deadline.
    Timeout,
    /// The payload exceeded the maximum transaction size.
    TooLarge(usize),
    /// A frame could not be decoded.
    Decode(String),
    /// Underlying socket error (TCP transport only).
    Io(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::NoSuchPort => write!(f, "no service registered at this port"),
            RpcError::Dropped => write!(f, "request or reply was dropped"),
            RpcError::ServerCrashed => write!(f, "server crashed"),
            RpcError::Timeout => write!(f, "transaction timed out"),
            RpcError::TooLarge(n) => write!(f, "payload of {n} bytes exceeds transaction limit"),
            RpcError::Decode(msg) => write!(f, "frame decode error: {msg}"),
            RpcError::Io(msg) => write!(f, "transport I/O error: {msg}"),
        }
    }
}

impl Error for RpcError {}

impl From<std::io::Error> for RpcError {
    fn from(err: std::io::Error) -> Self {
        RpcError::Io(err.to_string())
    }
}
