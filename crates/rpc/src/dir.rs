//! Wire protocol for the **directory** service: operation codes and payload
//! marshalling.
//!
//! The directory service names things: it maps human-readable entry names to
//! capabilities, stored in ordinary files of the file service (crate
//! `afs-dir`).  This module defines only the frames — the handler lives in
//! `afs_server::dir`, the client stub in `afs_client::RemoteDir` — so the
//! codec is testable without either.
//!
//! The capability in a request names the *directory* operated on (except for
//! [`DirOp::Root`], which asks the server for its root directory and carries
//! the null capability).  One request is one transaction: a k-entry `ReadDir`
//! is a single round trip whose reply carries every entry, which is what the
//! conformance suite asserts through a counting transport.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use amoeba_capability::Capability;

/// Operations a directory server understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum DirOp {
    /// The server's root directory.  Request capability: null.
    /// Reply: the root directory capability.
    Root = 1,
    /// Look up a name.  Payload: name + required-rights byte.
    /// Reply: one entry.
    Lookup = 2,
    /// List the directory.  Reply: entry count + entries, sorted by name.
    ReadDir = 3,
    /// Bind a name.  Payload: one entry (name, kind, mask, capability).
    Link = 4,
    /// Remove a binding.  Payload: name.  Reply: the removed entry.
    Unlink = 5,
    /// Rename `from` (in the request-capability directory) to `to` in the
    /// destination directory.  Payload: from-name + destination directory
    /// capability + to-name.
    Rename = 6,
    /// Create a directory and bind it.  Payload: name + mask byte.
    /// Reply: the new directory's capability.
    MkDir = 7,
}

impl DirOp {
    /// Decodes an operation code.
    pub fn from_u32(v: u32) -> Option<DirOp> {
        Some(match v {
            1 => DirOp::Root,
            2 => DirOp::Lookup,
            3 => DirOp::ReadDir,
            4 => DirOp::Link,
            5 => DirOp::Unlink,
            6 => DirOp::Rename,
            7 => DirOp::MkDir,
            _ => return None,
        })
    }
}

/// One directory entry in wire form.  The `kind` and `mask` bytes are opaque
/// to the transport; `afs-dir` gives them meaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEntry {
    /// Entry name (UTF-8, at most 255 bytes at the directory layer).
    pub name: String,
    /// The capability the name is bound to.
    pub cap: Capability,
    /// Rights-grant mask byte.
    pub mask: u8,
    /// Entry kind byte (file / directory).
    pub kind: u8,
}

/// Encodes a length-prefixed name.
pub fn encode_name(buf: &mut BytesMut, name: &str) {
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
}

/// Decodes a length-prefixed name.
pub fn decode_name(buf: &mut Bytes) -> Option<String> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let name = String::from_utf8(buf.slice(..len).to_vec()).ok()?;
    buf.advance(len);
    Some(name)
}

/// Encodes one entry (the `Link` payload and the `Lookup`/`Unlink` reply).
pub fn encode_entry(entry: &WireEntry) -> Bytes {
    let mut buf = BytesMut::new();
    put_entry(&mut buf, entry);
    buf.freeze()
}

fn put_entry(buf: &mut BytesMut, entry: &WireEntry) {
    encode_name(buf, &entry.name);
    buf.put_u8(entry.kind);
    buf.put_u8(entry.mask);
    entry.cap.encode(buf);
}

fn get_entry(buf: &mut Bytes) -> Option<WireEntry> {
    let name = decode_name(buf)?;
    if buf.remaining() < 2 {
        return None;
    }
    let kind = buf.get_u8();
    let mask = buf.get_u8();
    let cap = Capability::decode(buf)?;
    Some(WireEntry {
        name,
        cap,
        mask,
        kind,
    })
}

/// Decodes one entry.
pub fn decode_entry(mut payload: Bytes) -> Option<WireEntry> {
    get_entry(&mut payload)
}

/// Encodes the `ReadDir` reply: entry count, then the entries in name order.
pub fn encode_entries(entries: &[WireEntry]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(entries.len() as u32);
    for entry in entries {
        put_entry(&mut buf, entry);
    }
    buf.freeze()
}

/// Decodes the `ReadDir` reply.
pub fn decode_entries(mut payload: Bytes) -> Option<Vec<WireEntry>> {
    if payload.remaining() < 4 {
        return None;
    }
    let count = payload.get_u32_le() as usize;
    let mut entries = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        entries.push(get_entry(&mut payload)?);
    }
    Some(entries)
}

/// Encodes the `Lookup` payload: name + required-rights byte.
pub fn encode_lookup(name: &str, required: u8) -> Bytes {
    let mut buf = BytesMut::new();
    encode_name(&mut buf, name);
    buf.put_u8(required);
    buf.freeze()
}

/// Decodes the `Lookup` payload.
pub fn decode_lookup(mut payload: Bytes) -> Option<(String, u8)> {
    let name = decode_name(&mut payload)?;
    if payload.remaining() < 1 {
        return None;
    }
    Some((name, payload.get_u8()))
}

/// Encodes the `Unlink` payload: just the name.
pub fn encode_unlink(name: &str) -> Bytes {
    let mut buf = BytesMut::new();
    encode_name(&mut buf, name);
    buf.freeze()
}

/// Decodes the `Unlink` payload.
pub fn decode_unlink(mut payload: Bytes) -> Option<String> {
    decode_name(&mut payload)
}

/// Encodes the `Rename` payload: from-name, destination directory capability,
/// to-name.  The source directory is the request capability.
pub fn encode_rename(from: &str, dst: &Capability, to: &str) -> Bytes {
    let mut buf = BytesMut::new();
    encode_name(&mut buf, from);
    dst.encode(&mut buf);
    encode_name(&mut buf, to);
    buf.freeze()
}

/// Decodes the `Rename` payload.
pub fn decode_rename(mut payload: Bytes) -> Option<(String, Capability, String)> {
    let from = decode_name(&mut payload)?;
    let dst = Capability::decode(&mut payload)?;
    let to = decode_name(&mut payload)?;
    Some((from, dst, to))
}

/// Encodes the `MkDir` payload: name + grant-mask byte.
pub fn encode_mkdir(name: &str, mask: u8) -> Bytes {
    let mut buf = BytesMut::new();
    encode_name(&mut buf, name);
    buf.put_u8(mask);
    buf.freeze()
}

/// Decodes the `MkDir` payload.
pub fn decode_mkdir(mut payload: Bytes) -> Option<(String, u8)> {
    let name = decode_name(&mut payload)?;
    if payload.remaining() < 1 {
        return None;
    }
    Some((name, payload.get_u8()))
}

/// Encodes a capability reply (`Root`, `MkDir`).
pub fn encode_dir_cap(cap: &Capability) -> Bytes {
    let mut buf = BytesMut::new();
    cap.encode(&mut buf);
    buf.freeze()
}

/// Decodes a capability reply.
pub fn decode_dir_cap(mut payload: Bytes) -> Option<Capability> {
    Capability::decode(&mut payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_capability::{Port, Rights};

    fn cap(object: u64) -> Capability {
        Capability {
            port: Port::from_raw(0xabc),
            object,
            rights: Rights::ALL,
            check: 42,
        }
    }

    fn entry(name: &str) -> WireEntry {
        WireEntry {
            name: name.to_string(),
            cap: cap(7),
            mask: Rights::READ.bits(),
            kind: 0,
        }
    }

    #[test]
    fn op_codes_round_trip() {
        for op in [
            DirOp::Root,
            DirOp::Lookup,
            DirOp::ReadDir,
            DirOp::Link,
            DirOp::Unlink,
            DirOp::Rename,
            DirOp::MkDir,
        ] {
            assert_eq!(DirOp::from_u32(op as u32), Some(op));
        }
        assert_eq!(DirOp::from_u32(0), None);
        assert_eq!(DirOp::from_u32(99), None);
    }

    #[test]
    fn entries_round_trip() {
        let e = entry("report");
        assert_eq!(decode_entry(encode_entry(&e)).unwrap(), e);
        let many = vec![entry("a"), entry("b"), entry("c")];
        assert_eq!(decode_entries(encode_entries(&many)).unwrap(), many);
        assert_eq!(decode_entries(Bytes::new()), None);
        let truncated = encode_entries(&many);
        assert_eq!(decode_entries(truncated.slice(..truncated.len() - 4)), None);
    }

    #[test]
    fn request_payloads_round_trip() {
        assert_eq!(
            decode_lookup(encode_lookup("name", 3)).unwrap(),
            ("name".to_string(), 3)
        );
        assert_eq!(
            decode_unlink(encode_unlink("gone")).unwrap(),
            "gone".to_string()
        );
        assert_eq!(
            decode_rename(encode_rename("from", &cap(9), "to")).unwrap(),
            ("from".to_string(), cap(9), "to".to_string())
        );
        assert_eq!(
            decode_mkdir(encode_mkdir("sub", 0x7f)).unwrap(),
            ("sub".to_string(), 0x7f)
        );
        assert_eq!(decode_dir_cap(encode_dir_cap(&cap(5))).unwrap(), cap(5));
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        assert_eq!(decode_lookup(Bytes::new()), None);
        assert_eq!(decode_lookup(encode_unlink("only a name")), None);
        assert_eq!(decode_rename(encode_unlink("from only")), None);
        assert_eq!(decode_mkdir(encode_unlink("no mask")), None);
        assert_eq!(decode_name(&mut Bytes::from_static(b"\xff\xff")), None);
    }
}
