//! Request multiplexing and the generic client engine.
//!
//! Two layers live here, one per side of the [`Transport`] boundary:
//!
//! * [`MuxCore`] — the connection-level bookkeeping a multiplexed transport
//!   needs: request-id allocation from a free list, the pending-reply table,
//!   per-request deadlines, and out-of-order completion.  It is deliberately
//!   socket-free (a table plus a condition variable) so the tricky parts —
//!   id reuse, late replies racing deadline expiry, connection death failing
//!   every in-flight request — are unit-testable without a network.
//!   [`crate::tcp`] drives one `MuxCore` per TCP connection.
//!
//! * [`MuxClient`] — the one generic client engine sitting *above* any
//!   [`Transport`]: server selection, [`FailoverPolicy`]-controlled failover
//!   across replicas, [`Backoff`]-driven whole-sweep retry rounds, and
//!   uniform [`ClientStats`].  The typed client stubs (`RemoteFs`,
//!   `RemoteDir`, `RemoteBlockStore`) are thin wrappers over a `MuxClient`,
//!   each just marshalling payloads and picking the failover policy its
//!   consistency contract allows.
//!
//! # Failover and ambiguity
//!
//! Failover is not one-size-fits-all, because retrying a *mutation* whose
//! first attempt may have executed is not equivalent to retrying a read:
//!
//! * [`FailoverPolicy::Always`] retries on any transport-level failure
//!   (crash, missing port, timeout, drop).  Correct for idempotent
//!   operations, and for the file service's mutations, which are
//!   version-directed writes to uncommitted state: re-executing one is
//!   harmless (PR 2's semantics, kept here).
//! * [`FailoverPolicy::WhenUnreached`] retries only errors that prove the
//!   request never executed (`ServerCrashed`, `NoSuchPort`).  A `Timeout` or
//!   `Dropped` is ambiguous — the mutation may have happened — so it is
//!   surfaced to the caller.  This is the directory service's contract for
//!   `link`/`unlink`/`rename`/`mkdir`.
//! * [`FailoverPolicy::Never`] makes exactly one attempt.  The replicated
//!   block layer wants prompt failure for mutations so it can depose the
//!   replica and queue an intention, not a client that papers over a dying
//!   disk.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use amoeba_capability::Port;

use crate::backoff::Backoff;
use crate::message::{Reply, Request};
use crate::{Result, RpcError, Transport};

// ---------------------------------------------------------------------------
// MuxCore: the pending-reply table.
// ---------------------------------------------------------------------------

/// State of one allocated request id.
#[derive(Debug)]
enum SlotState {
    /// Request sent (or about to be); the owner will come back to wait.
    Pending,
    /// Reply (or failure) arrived before the owner collected it.
    Done(Result<Reply>),
    /// The owner gave up (deadline expired) or already collected the result.
    /// The id stays *allocated* until the late reply arrives and is discarded
    /// — recycling it earlier could deliver that stale reply to an unrelated
    /// new request.
    Abandoned,
}

/// One request's parking spot.  Each pending request gets its own mutex and
/// condvar so a completion wakes exactly its waiter — with one shared condvar
/// every reply would wake every parked thread on the connection, and at high
/// multiplexing depth that thundering herd costs more than the requests.
#[derive(Debug)]
struct Waiter {
    state: Mutex<SlotState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct MuxInner {
    next_id: u64,
    free: Vec<u64>,
    slots: HashMap<u64, Arc<Waiter>>,
}

/// Connection-level request multiplexing state: id allocation, the
/// pending-reply table, deadlines, and out-of-order completion.
///
/// The protocol between the two sides of a connection:
///
/// * the *requesting* thread calls [`MuxCore::allocate`], sends its frame
///   tagged with the id, then parks in [`MuxCore::wait`];
/// * the *reader* (whoever demultiplexes inbound frames) calls
///   [`MuxCore::complete`] for each reply, in whatever order replies arrive,
///   and [`MuxCore::fail_all`] once when the connection dies.
///
/// Lock order is table → waiter, never the reverse.
#[derive(Debug, Default)]
pub struct MuxCore {
    inner: Mutex<MuxInner>,
}

impl MuxCore {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a request id, preferring ids already retired by a completed
    /// wait (so long-lived connections reuse a small dense id space).
    pub fn allocate(&self) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.free.pop().unwrap_or_else(|| {
            let id = inner.next_id;
            inner.next_id += 1;
            id
        });
        inner.slots.insert(
            id,
            Arc::new(Waiter {
                state: Mutex::new(SlotState::Pending),
                ready: Condvar::new(),
            }),
        );
        id
    }

    /// Delivers the outcome of request `id` and wakes its waiter.  Returns
    /// `false` if nobody is waiting — the id is unknown, already completed,
    /// or was abandoned on deadline expiry (in which case the late result is
    /// discarded and the id finally recycled).
    pub fn complete(&self, id: u64, result: Result<Reply>) -> bool {
        let mut inner = self.inner.lock();
        let Some(waiter) = inner.slots.get(&id).cloned() else {
            return false;
        };
        let mut state = waiter.state.lock();
        match &*state {
            SlotState::Pending => {
                *state = SlotState::Done(result);
                drop(state);
                waiter.ready.notify_one();
                true
            }
            SlotState::Abandoned => {
                drop(state);
                inner.slots.remove(&id);
                inner.free.push(id);
                false
            }
            SlotState::Done(_) => false,
        }
    }

    /// Fails every pending request with a clone of `err` — the connection
    /// died underneath them.  Abandoned ids are recycled (their late reply
    /// can no longer arrive).
    pub fn fail_all(&self, err: &RpcError) {
        let mut inner = self.inner.lock();
        let entries: Vec<(u64, Arc<Waiter>)> = inner
            .slots
            .iter()
            .map(|(&id, w)| (id, Arc::clone(w)))
            .collect();
        for (id, waiter) in entries {
            let mut state = waiter.state.lock();
            match &*state {
                SlotState::Pending => {
                    *state = SlotState::Done(Err(err.clone()));
                    drop(state);
                    waiter.ready.notify_one();
                }
                SlotState::Abandoned => {
                    drop(state);
                    inner.slots.remove(&id);
                    inner.free.push(id);
                }
                SlotState::Done(_) => {}
            }
        }
    }

    /// Blocks until request `id` completes or `deadline` passes.  On
    /// completion the id is recycled and the outcome returned; on expiry the
    /// request is abandoned (exactly this one — other pending requests are
    /// untouched) and [`RpcError::Timeout`] returned.
    pub fn wait(&self, id: u64, deadline: Instant) -> Result<Reply> {
        let waiter = {
            let inner = self.inner.lock();
            match inner.slots.get(&id) {
                Some(waiter) => Arc::clone(waiter),
                None => return Err(RpcError::Dropped),
            }
        };

        // Park on this request's own condvar until its reply lands.
        {
            let mut state = waiter.state.lock();
            loop {
                match &*state {
                    SlotState::Done(_) => break,
                    SlotState::Pending => {
                        let now = Instant::now();
                        if now >= deadline {
                            *state = SlotState::Abandoned;
                            return Err(RpcError::Timeout);
                        }
                        waiter.ready.wait_for(&mut state, deadline - now);
                    }
                    // Someone else is waiting on (or has consumed) this id.
                    SlotState::Abandoned => return Err(RpcError::Dropped),
                }
            }
        }

        // Collect under the table lock so removal and id recycling are atomic
        // with respect to `complete` / `fail_all`.  Nothing transitions a slot
        // out of `Done` except this consumer, so the result is still there.
        let mut inner = self.inner.lock();
        let mut state = waiter.state.lock();
        let SlotState::Done(result) = std::mem::replace(&mut *state, SlotState::Abandoned) else {
            unreachable!("slot left Done without its waiter");
        };
        drop(state);
        inner.slots.remove(&id);
        inner.free.push(id);
        result
    }

    /// Number of ids currently allocated (pending, completed-but-uncollected,
    /// or abandoned-awaiting-late-reply).
    pub fn outstanding(&self) -> usize {
        self.inner.lock().slots.len()
    }
}

// ---------------------------------------------------------------------------
// ClientStats.
// ---------------------------------------------------------------------------

/// Uniform client-side transport statistics, shared by every stub.
///
/// Replaces the three ad-hoc `retries()` counters the stubs used to carry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Backed-off whole-sweep retry rounds: how many times the client slept
    /// and re-tried every server after a full sweep failed.
    pub retries: u64,
    /// Transport-level reconnects: how many times an underlying connection
    /// had to be re-established after the initial connect.
    pub reconnects: u64,
    /// High-water mark of concurrently in-flight `transact` calls — the
    /// deepest pipelining this client actually reached.
    pub inflight_high_water: u64,
    /// Leases the servers granted this client (piggybacked on validation
    /// replies).
    pub leases_granted: u64,
    /// Leases revoked under this client: callback breaks from committing
    /// writers plus local expiries and connection losses.
    pub leases_broken: u64,
    /// Cache validations answered from a live lease without any wire
    /// traffic — the round trips leasing saved.
    pub zero_rpc_hits: u64,
}

impl ClientStats {
    /// Counter deltas since `before` (high-water is taken from `self`: it is
    /// a mark, not a counter).
    pub fn since(&self, before: &ClientStats) -> ClientStats {
        ClientStats {
            retries: self.retries.saturating_sub(before.retries),
            reconnects: self.reconnects.saturating_sub(before.reconnects),
            inflight_high_water: self.inflight_high_water,
            leases_granted: self.leases_granted.saturating_sub(before.leases_granted),
            leases_broken: self.leases_broken.saturating_sub(before.leases_broken),
            zero_rpc_hits: self.zero_rpc_hits.saturating_sub(before.zero_rpc_hits),
        }
    }

    /// Combines stats from several clients (e.g. one per shard): counters
    /// add, high-water takes the deepest mark observed on any one client.
    pub fn merged(&self, other: &ClientStats) -> ClientStats {
        ClientStats {
            retries: self.retries + other.retries,
            reconnects: self.reconnects + other.reconnects,
            inflight_high_water: self.inflight_high_water.max(other.inflight_high_water),
            leases_granted: self.leases_granted + other.leases_granted,
            leases_broken: self.leases_broken + other.leases_broken,
            zero_rpc_hits: self.zero_rpc_hits + other.zero_rpc_hits,
        }
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    retries: AtomicU64,
    inflight: AtomicU64,
    inflight_high_water: AtomicU64,
}

impl StatsInner {
    fn enter(self: &Arc<Self>) -> InflightGuard {
        let now = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        self.inflight_high_water.fetch_max(now, Ordering::SeqCst);
        InflightGuard(Arc::clone(self))
    }
}

struct InflightGuard(Arc<StatsInner>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// FailoverPolicy and MuxClient.
// ---------------------------------------------------------------------------

/// When a failed attempt may be redirected to the next server (or retried
/// after a backoff delay).  See the module docs for which stub uses which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverPolicy {
    /// Fail over on any transport failure (crash, missing port, timeout,
    /// drop).  For idempotent reads and re-executable mutations.
    Always,
    /// Fail over only when the error proves the request never executed
    /// (`ServerCrashed`, `NoSuchPort`); ambiguous outcomes surface to the
    /// caller.  For non-idempotent mutations.
    WhenUnreached,
    /// One attempt, first server, no retry.  For callers that handle
    /// failure themselves (the replica layer's depose-and-resync path).
    Never,
}

impl FailoverPolicy {
    fn may_fail_over(self, err: &RpcError) -> bool {
        match self {
            FailoverPolicy::Always => matches!(
                err,
                RpcError::ServerCrashed
                    | RpcError::NoSuchPort
                    | RpcError::Timeout
                    | RpcError::Dropped
            ),
            FailoverPolicy::WhenUnreached => {
                matches!(err, RpcError::ServerCrashed | RpcError::NoSuchPort)
            }
            FailoverPolicy::Never => false,
        }
    }
}

/// The one generic client engine: a [`Transport`], an ordered server list,
/// a retry schedule, and uniform [`ClientStats`].
///
/// A `transact` sweeps the server list, failing over between replicas as the
/// [`FailoverPolicy`] permits; when a whole sweep fails it sleeps one
/// [`Backoff`] delay and sweeps again, until the schedule exhausts and the
/// last error surfaces.
#[derive(Debug)]
pub struct MuxClient<T: Transport> {
    transport: T,
    servers: Vec<Port>,
    backoff_base: Duration,
    backoff_cap: Duration,
    backoff_attempts: u32,
    backoff_seed: u64,
    stats: Arc<StatsInner>,
}

impl<T: Transport> MuxClient<T> {
    /// A client for the service replicated at `servers` (tried in order),
    /// with the standard [`Backoff::client_default`] retry schedule seeded by
    /// the first server's port.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn new(transport: T, servers: Vec<Port>) -> Self {
        assert!(!servers.is_empty(), "MuxClient needs at least one server");
        let seed = servers[0].raw();
        MuxClient {
            transport,
            servers,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
            backoff_attempts: 3,
            backoff_seed: seed,
            stats: Arc::new(StatsInner::default()),
        }
    }

    /// Overrides the retry schedule (jitter stays seeded by the first
    /// server's port).
    pub fn with_backoff(mut self, base: Duration, cap: Duration, max_attempts: u32) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self.backoff_attempts = max_attempts;
        self
    }

    /// The ordered server list this client sweeps.
    pub fn servers(&self) -> &[Port] {
        &self.servers
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Snapshot of this client's statistics.  The lease counters are zero
    /// here: they live with the lease table in the stub that owns it
    /// (`RemoteFs` merges them in).
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            retries: self.stats.retries.load(Ordering::SeqCst),
            reconnects: self.transport.reconnects(),
            inflight_high_water: self.stats.inflight_high_water.load(Ordering::SeqCst),
            ..ClientStats::default()
        }
    }

    /// Registers a listener for server→client callback frames on the
    /// underlying transport.  Returns whether the transport supports them.
    pub fn register_callback_sink(&self, sink: Arc<dyn crate::CallbackSink>) -> bool {
        self.transport.register_callback_sink(sink)
    }

    /// Performs one logical transaction under the given failover policy.
    pub fn transact(&self, request: Request, policy: FailoverPolicy) -> Result<Reply> {
        let _inflight = self.stats.enter();
        if policy == FailoverPolicy::Never {
            return self.transport.transact(self.servers[0], request);
        }
        let mut backoff = Backoff::with_seed(
            self.backoff_base,
            self.backoff_cap,
            self.backoff_attempts,
            self.backoff_seed,
        );
        loop {
            let mut last_err = None;
            for &port in &self.servers {
                match self.transport.transact(port, request.clone()) {
                    Ok(reply) => return Ok(reply),
                    Err(err) if policy.may_fail_over(&err) => last_err = Some(err),
                    Err(err) => return Err(err),
                }
            }
            let err = last_err.expect("server list is non-empty");
            if !backoff.sleep_next() {
                return Err(err);
            }
            self.stats.retries.fetch_add(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::thread;

    fn reply(tag: &'static [u8]) -> Reply {
        Reply::ok(Bytes::from_static(tag))
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn replies_complete_out_of_order() {
        let mux = MuxCore::new();
        let a = mux.allocate();
        let b = mux.allocate();
        let c = mux.allocate();
        assert_eq!(mux.outstanding(), 3);

        // Replies land in reverse order; each waiter still gets its own.
        assert!(mux.complete(c, Ok(reply(b"c"))));
        assert!(mux.complete(a, Ok(reply(b"a"))));
        assert!(mux.complete(b, Ok(reply(b"b"))));

        assert_eq!(mux.wait(a, far_deadline()).unwrap().payload.as_ref(), b"a");
        assert_eq!(mux.wait(b, far_deadline()).unwrap().payload.as_ref(), b"b");
        assert_eq!(mux.wait(c, far_deadline()).unwrap().payload.as_ref(), b"c");
        assert_eq!(mux.outstanding(), 0);
    }

    #[test]
    fn waiters_park_until_their_reply_arrives() {
        let mux = Arc::new(MuxCore::new());
        let ids: Vec<u64> = (0..8).map(|_| mux.allocate()).collect();
        let waiters: Vec<_> = ids
            .iter()
            .map(|&id| {
                let mux = Arc::clone(&mux);
                thread::spawn(move || mux.wait(id, far_deadline()).unwrap().payload)
            })
            .collect();
        // Complete in a scrambled order from another thread.
        for &id in ids.iter().rev() {
            assert!(mux.complete(id, Ok(Reply::ok(Bytes::from(id.to_le_bytes().to_vec())))));
        }
        for (waiter, &id) in waiters.into_iter().zip(&ids) {
            assert_eq!(waiter.join().unwrap().as_ref(), id.to_le_bytes());
        }
    }

    #[test]
    fn request_ids_are_reused_after_completion() {
        let mux = MuxCore::new();
        let a = mux.allocate();
        mux.complete(a, Ok(reply(b"x")));
        mux.wait(a, far_deadline()).unwrap();
        // The retired id comes back before any fresh one is minted.
        assert_eq!(mux.allocate(), a);
    }

    #[test]
    fn deadline_expiry_cancels_exactly_one_request_and_defers_id_reuse() {
        let mux = MuxCore::new();
        let doomed = mux.allocate();
        let healthy = mux.allocate();

        assert_eq!(
            mux.wait(doomed, Instant::now()).unwrap_err(),
            RpcError::Timeout
        );
        // The abandoned id is NOT recycled yet: a late reply must not be
        // deliverable to a future request that happened to reuse the id.
        assert_ne!(mux.allocate(), doomed);

        // The other pending request is untouched by the expiry.
        assert!(mux.complete(healthy, Ok(reply(b"ok"))));
        assert_eq!(
            mux.wait(healthy, far_deadline()).unwrap().payload.as_ref(),
            b"ok"
        );

        // The late reply for the abandoned request is discarded, which
        // finally recycles the id.
        assert!(!mux.complete(doomed, Ok(reply(b"late"))));
        assert_eq!(mux.allocate(), doomed);
    }

    #[test]
    fn fail_all_poisons_pending_requests_and_recycles_abandoned_ids() {
        let mux = MuxCore::new();
        let pending = mux.allocate();
        let abandoned = mux.allocate();
        assert_eq!(
            mux.wait(abandoned, Instant::now()).unwrap_err(),
            RpcError::Timeout
        );

        mux.fail_all(&RpcError::Dropped);
        assert_eq!(
            mux.wait(pending, far_deadline()).unwrap_err(),
            RpcError::Dropped
        );
        // The abandoned id became reusable: its late reply can never arrive.
        let next = mux.allocate();
        let after = mux.allocate();
        assert!(next == abandoned || after == abandoned);
    }

    #[test]
    fn waiting_for_an_unknown_id_is_an_error_not_a_hang() {
        let mux = MuxCore::new();
        assert!(mux.wait(123, far_deadline()).is_err());
    }

    #[test]
    fn client_stats_since_and_merged_compose() {
        let before = ClientStats {
            retries: 2,
            reconnects: 1,
            inflight_high_water: 4,
            leases_granted: 10,
            leases_broken: 3,
            zero_rpc_hits: 100,
        };
        let after = ClientStats {
            retries: 5,
            reconnects: 1,
            inflight_high_water: 9,
            leases_granted: 16,
            leases_broken: 5,
            zero_rpc_hits: 140,
        };
        let delta = after.since(&before);
        assert_eq!(delta.retries, 3);
        assert_eq!(delta.reconnects, 0);
        assert_eq!(delta.inflight_high_water, 9);
        assert_eq!(delta.leases_granted, 6);
        assert_eq!(delta.leases_broken, 2);
        assert_eq!(delta.zero_rpc_hits, 40);

        let merged = delta.merged(&ClientStats {
            retries: 1,
            reconnects: 7,
            inflight_high_water: 2,
            leases_granted: 4,
            leases_broken: 1,
            zero_rpc_hits: 60,
        });
        assert_eq!(merged.retries, 4);
        assert_eq!(merged.reconnects, 7);
        assert_eq!(merged.inflight_high_water, 9);
        assert_eq!(merged.leases_granted, 10);
        assert_eq!(merged.leases_broken, 3);
        assert_eq!(merged.zero_rpc_hits, 100);
    }
}
