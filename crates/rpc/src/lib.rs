//! Transaction-style RPC for the Amoeba services.
//!
//! Amoeba structures all client/server interaction as *transactions*: a client sends
//! a single request message to a service port and blocks until the single reply
//! arrives.  The file-service design leans on two properties of this model:
//!
//! * the maximum size of a message bounds the size of a page ("the maximum length of
//!   a page is determined by the maximum length of a message in a transaction: 32K
//!   bytes", §5), which is what makes a page read or write a single atomic
//!   transaction; and
//! * servers are mostly *passive*: they react to requests.  The cache design
//!   of §5.4 rejected XDFS-style "unsolicited messages" from server to client
//!   because in 1985 they meant extra datagrams and per-client server state
//!   of unbounded lifetime.
//!
//! Each *logical* transaction still has exactly that shape — one request, one
//! blocking wait, one reply.  The *transport* underneath, however, is
//! multiplexed: a connection carries many logical request streams at once,
//! every frame is tagged with a request id, replies complete out of order,
//! and the server pipelines independent requests from the same connection
//! instead of serving them one at a time.  Concurrency therefore scales with
//! the number of outstanding client transactions, not with the number of OS
//! threads or sockets.
//!
//! The multiplexed connection also revisits the §5.4 trade-off: a
//! server→client *callback* is now just one more id-tagged frame on an
//! already-open connection ([`codec::CALLBACK_MARKER`]), and its state is
//! bounded by the connection's lifetime.  A server reaches that channel
//! through the [`CallbackChannel`] handed to
//! [`RequestHandler::handle_from`]; a client observes pushes by registering
//! a [`CallbackSink`] with [`Transport::register_callback_sink`].  The file
//! service uses this for time-bounded lease grants and lease breaks — the
//! coherence design the paper priced out, affordable on today's transport.
//!
//! This crate provides:
//!
//! * [`Request`] / [`Reply`] message frames with a binary wire codec (hand-rolled on
//!   `bytes`, length-prefixed, capability-carrying), in plain and id-tagged
//!   multiplexed ([`codec`]) flavours,
//! * the [`Transport`] trait — `transact(port, request) -> reply`,
//! * [`mux`] — the multiplexing engine: [`mux::MuxCore`] (request-id
//!   allocation, the pending-reply table, per-request deadlines, out-of-order
//!   completion) and the generic [`MuxClient`] (server failover under a
//!   [`FailoverPolicy`], [`Backoff`]-driven retry, uniform [`ClientStats`])
//!   that the typed client stubs wrap,
//! * [`LocalNetwork`] (alias [`LocalTransport`]) — an in-process transport
//!   connecting clients to registered [`RequestHandler`]s, with configurable
//!   latency, message loss and partitions for the robustness experiments,
//! * [`tcp`] — the real TCP transport: a readiness-driven reactor on the
//!   server (one poll loop over all connections, worker pool pipelining
//!   requests) and a connection-pooling multiplexed client, and
//! * [`block`] — the wire protocol of the block service, including the
//!   [`block::BlockOp::WriteBlocks`] scatter-gather op that carries a commit
//!   flush to each replica disk as a single request, and
//! * [`dir`] — the wire protocol of the directory service: name → capability
//!   bindings served over the same transaction model, with a k-entry
//!   [`dir::DirOp::ReadDir`] as one round trip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod block;
pub mod codec;
pub mod dir;
mod error;
mod local;
mod message;
pub mod mux;
pub mod tcp;

pub use backoff::Backoff;
pub use error::RpcError;
pub use local::{LocalConn, LocalNetwork, NetworkFaults};
pub use message::{Reply, Request, Status, MAX_FRAME_PAYLOAD, MAX_PAYLOAD};
pub use mux::{ClientStats, FailoverPolicy, MuxClient, MuxCore};

/// The in-process transport, under the name the transport-generic client
/// stack uses for it.
pub type LocalTransport = LocalNetwork;

/// Result alias for RPC operations.
pub type Result<T> = std::result::Result<T, RpcError>;

use amoeba_capability::Port;

/// The server's half of the server→client callback channel: one live client
/// connection, seen from a request handler.
///
/// A handler receives it through [`RequestHandler::handle_from`] and may hold
/// on to it (it is `Arc`-shared) to push unsolicited frames at the peer
/// later — the lease manager does exactly that, granting leases against the
/// connection and breaking them through it when a writer commits.  All state
/// reachable through a channel dies with the connection: [`is_closed`]
/// flips, pushes fail, and [`wait_acked`] returns immediately.
///
/// [`is_closed`]: CallbackChannel::is_closed
/// [`wait_acked`]: CallbackChannel::wait_acked
pub trait CallbackChannel: Send + Sync {
    /// Pushes a callback frame at the client, returning the ticket that the
    /// client's ack will echo, or `None` if the connection is already gone.
    fn push(&self, port: Port, payload: bytes::Bytes) -> Option<u64>;

    /// Blocks until the client acks `ticket`, the `deadline` passes, or the
    /// connection dies.  Returns whether the ack arrived.
    fn wait_acked(&self, ticket: u64, deadline: std::time::Instant) -> bool;

    /// A key identifying the peer connection, stable for its lifetime and
    /// unique among live connections of one server.  Grant tables key on it.
    fn peer_key(&self) -> u64;

    /// Whether the underlying connection has been torn down.
    fn is_closed(&self) -> bool;
}

/// The client's half of the callback channel: a listener the transport
/// invokes for every unsolicited server frame.
///
/// Implementations must be fast and non-blocking — sinks run on the
/// transport's reader thread, and **must not** issue transactions of their
/// own (the reader cannot pump the reply they would wait for).  The
/// transport acks the callback to the server after every registered sink has
/// seen it, so "sink returned" means "state updated": dropping a lease from
/// a table is in-budget, re-fetching data is not.
pub trait CallbackSink: Send + Sync {
    /// Called for each callback frame the server pushes.
    fn on_callback(&self, port: Port, payload: bytes::Bytes);

    /// Called when the connection carrying the callbacks dies; any state
    /// that was only valid while the server could reach us (leases!) must
    /// be dropped.  Default: nothing.
    fn on_connection_lost(&self) {}
}

/// A service-side handler: receives a request, returns a reply.
///
/// Handlers must be callable from many threads at once; Amoeba servers are free to
/// serve transactions concurrently.
pub trait RequestHandler: Send + Sync {
    /// Handles one transaction.
    fn handle(&self, request: Request) -> Reply;

    /// Handles one transaction with the originating connection's callback
    /// channel attached, when the transport has one.  Handlers that grant
    /// leases override this; the default ignores the channel, so plain
    /// request/reply handlers (and closures) are unaffected.
    fn handle_from(
        &self,
        request: Request,
        peer: Option<&std::sync::Arc<dyn CallbackChannel>>,
    ) -> Reply {
        let _ = peer;
        self.handle(request)
    }
}

impl<F> RequestHandler for F
where
    F: Fn(Request) -> Reply + Send + Sync,
{
    fn handle(&self, request: Request) -> Reply {
        self(request)
    }
}

/// A client-side transport: delivers a request to the service listening on `port` and
/// returns its reply.
pub trait Transport: Send + Sync {
    /// Performs one transaction.
    fn transact(&self, port: Port, request: Request) -> Result<Reply>;

    /// How many times this transport has re-established an underlying
    /// connection after its initial connect.  Transports with no connection
    /// state (in-process, counting wrappers) keep the default `0`.
    fn reconnects(&self) -> u64 {
        0
    }

    /// Registers a listener for unsolicited server→client callback frames.
    /// Returns whether this transport supports the channel; the default is a
    /// plain request/reply transport that does not (`false`), in which case
    /// servers see no channel and grant no leases — everything degrades to
    /// validate-on-use.
    fn register_callback_sink(&self, sink: std::sync::Arc<dyn CallbackSink>) -> bool {
        let _ = sink;
        false
    }
}

impl<T: Transport + ?Sized> Transport for std::sync::Arc<T> {
    fn transact(&self, port: Port, request: Request) -> Result<Reply> {
        (**self).transact(port, request)
    }

    fn reconnects(&self) -> u64 {
        (**self).reconnects()
    }

    fn register_callback_sink(&self, sink: std::sync::Arc<dyn CallbackSink>) -> bool {
        (**self).register_callback_sink(sink)
    }
}
