//! Transaction-style RPC for the Amoeba services.
//!
//! Amoeba structures all client/server interaction as *transactions*: a client sends
//! a single request message to a service port and blocks until the single reply
//! arrives.  The file-service design leans on two properties of this model:
//!
//! * the maximum size of a message bounds the size of a page ("the maximum length of
//!   a page is determined by the maximum length of a message in a transaction: 32K
//!   bytes", §5), which is what makes a page read or write a single atomic
//!   transaction; and
//! * servers are *passive*: they only ever react to requests.  The cache design of
//!   §5.4 explicitly rejects XDFS-style "unsolicited messages" from server to client.
//!
//! This crate provides:
//!
//! * [`Request`] / [`Reply`] message frames with a binary wire codec (hand-rolled on
//!   `bytes`, length-prefixed, capability-carrying),
//! * the [`Transport`] trait — `transact(port, request) -> reply`,
//! * [`LocalNetwork`] — an in-process transport connecting clients to registered
//!   [`RequestHandler`]s, with configurable latency, message loss and partitions for
//!   the robustness experiments, and
//! * [`tcp`] — a real TCP transport (`std::net`, one thread per connection) so the
//!   same servers can be run across actual machine boundaries, and
//! * [`block`] — the wire protocol of the block service, including the
//!   [`block::BlockOp::WriteBlocks`] scatter-gather op that carries a commit
//!   flush to each replica disk as a single request, and
//! * [`dir`] — the wire protocol of the directory service: name → capability
//!   bindings served over the same transaction model, with a k-entry
//!   [`dir::DirOp::ReadDir`] as one round trip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod block;
pub mod codec;
pub mod dir;
mod error;
mod local;
mod message;
pub mod tcp;

pub use backoff::Backoff;
pub use error::RpcError;
pub use local::{LocalNetwork, NetworkFaults};
pub use message::{Reply, Request, Status, MAX_PAYLOAD};

/// Result alias for RPC operations.
pub type Result<T> = std::result::Result<T, RpcError>;

use amoeba_capability::Port;

/// A service-side handler: receives a request, returns a reply.
///
/// Handlers must be callable from many threads at once; Amoeba servers are free to
/// serve transactions concurrently.
pub trait RequestHandler: Send + Sync {
    /// Handles one transaction.
    fn handle(&self, request: Request) -> Reply;
}

impl<F> RequestHandler for F
where
    F: Fn(Request) -> Reply + Send + Sync,
{
    fn handle(&self, request: Request) -> Reply {
        self(request)
    }
}

/// A client-side transport: delivers a request to the service listening on `port` and
/// returns its reply.
pub trait Transport: Send + Sync {
    /// Performs one transaction.
    fn transact(&self, port: Port, request: Request) -> Result<Reply>;
}

impl<T: Transport + ?Sized> Transport for std::sync::Arc<T> {
    fn transact(&self, port: Port, request: Request) -> Result<Reply> {
        (**self).transact(port, request)
    }
}
