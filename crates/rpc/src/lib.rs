//! Transaction-style RPC for the Amoeba services.
//!
//! Amoeba structures all client/server interaction as *transactions*: a client sends
//! a single request message to a service port and blocks until the single reply
//! arrives.  The file-service design leans on two properties of this model:
//!
//! * the maximum size of a message bounds the size of a page ("the maximum length of
//!   a page is determined by the maximum length of a message in a transaction: 32K
//!   bytes", §5), which is what makes a page read or write a single atomic
//!   transaction; and
//! * servers are *passive*: they only ever react to requests.  The cache design of
//!   §5.4 explicitly rejects XDFS-style "unsolicited messages" from server to client.
//!
//! Each *logical* transaction still has exactly that shape — one request, one
//! blocking wait, one reply.  The *transport* underneath, however, is
//! multiplexed: a connection carries many logical request streams at once,
//! every frame is tagged with a request id, replies complete out of order,
//! and the server pipelines independent requests from the same connection
//! instead of serving them one at a time.  Concurrency therefore scales with
//! the number of outstanding client transactions, not with the number of OS
//! threads or sockets — and the same id-tagged frames give a future
//! server→client channel (for lease/callback cache coherence) a place to
//! live without breaking the "one reply per request" contract.
//!
//! This crate provides:
//!
//! * [`Request`] / [`Reply`] message frames with a binary wire codec (hand-rolled on
//!   `bytes`, length-prefixed, capability-carrying), in plain and id-tagged
//!   multiplexed ([`codec`]) flavours,
//! * the [`Transport`] trait — `transact(port, request) -> reply`,
//! * [`mux`] — the multiplexing engine: [`mux::MuxCore`] (request-id
//!   allocation, the pending-reply table, per-request deadlines, out-of-order
//!   completion) and the generic [`MuxClient`] (server failover under a
//!   [`FailoverPolicy`], [`Backoff`]-driven retry, uniform [`ClientStats`])
//!   that the typed client stubs wrap,
//! * [`LocalNetwork`] (alias [`LocalTransport`]) — an in-process transport
//!   connecting clients to registered [`RequestHandler`]s, with configurable
//!   latency, message loss and partitions for the robustness experiments,
//! * [`tcp`] — the real TCP transport: a readiness-driven reactor on the
//!   server (one poll loop over all connections, worker pool pipelining
//!   requests) and a connection-pooling multiplexed client, and
//! * [`block`] — the wire protocol of the block service, including the
//!   [`block::BlockOp::WriteBlocks`] scatter-gather op that carries a commit
//!   flush to each replica disk as a single request, and
//! * [`dir`] — the wire protocol of the directory service: name → capability
//!   bindings served over the same transaction model, with a k-entry
//!   [`dir::DirOp::ReadDir`] as one round trip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod block;
pub mod codec;
pub mod dir;
mod error;
mod local;
mod message;
pub mod mux;
pub mod tcp;

pub use backoff::Backoff;
pub use error::RpcError;
pub use local::{LocalNetwork, NetworkFaults};
pub use message::{Reply, Request, Status, MAX_FRAME_PAYLOAD, MAX_PAYLOAD};
pub use mux::{ClientStats, FailoverPolicy, MuxClient, MuxCore};

/// The in-process transport, under the name the transport-generic client
/// stack uses for it.
pub type LocalTransport = LocalNetwork;

/// Result alias for RPC operations.
pub type Result<T> = std::result::Result<T, RpcError>;

use amoeba_capability::Port;

/// A service-side handler: receives a request, returns a reply.
///
/// Handlers must be callable from many threads at once; Amoeba servers are free to
/// serve transactions concurrently.
pub trait RequestHandler: Send + Sync {
    /// Handles one transaction.
    fn handle(&self, request: Request) -> Reply;
}

impl<F> RequestHandler for F
where
    F: Fn(Request) -> Reply + Send + Sync,
{
    fn handle(&self, request: Request) -> Reply {
        self(request)
    }
}

/// A client-side transport: delivers a request to the service listening on `port` and
/// returns its reply.
pub trait Transport: Send + Sync {
    /// Performs one transaction.
    fn transact(&self, port: Port, request: Request) -> Result<Reply>;

    /// How many times this transport has re-established an underlying
    /// connection after its initial connect.  Transports with no connection
    /// state (in-process, counting wrappers) keep the default `0`.
    fn reconnects(&self) -> u64 {
        0
    }
}

impl<T: Transport + ?Sized> Transport for std::sync::Arc<T> {
    fn transact(&self, port: Port, request: Request) -> Result<Reply> {
        (**self).transact(port, request)
    }

    fn reconnects(&self) -> u64 {
        (**self).reconnects()
    }
}
