//! Length-prefixed binary framing for requests and replies.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! request  := u32 total_len | u32 op | capability (25 bytes) | payload
//! reply    := u32 total_len | u8 status            | payload
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use amoeba_capability::Capability;

use crate::message::{Reply, Request, Status, MAX_FRAME_PAYLOAD};
use crate::RpcError;

/// Size of an encoded capability on the wire.
const CAP_SIZE: usize = 25;

/// Encodes a request into a self-delimiting frame.
pub fn encode_request(req: &Request) -> Result<Bytes, RpcError> {
    if req.payload.len() > MAX_FRAME_PAYLOAD {
        return Err(RpcError::TooLarge(req.payload.len()));
    }
    let body_len = 4 + CAP_SIZE + req.payload.len();
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32_le(body_len as u32);
    buf.put_u32_le(req.op);
    req.cap.encode(&mut buf);
    buf.put_slice(&req.payload);
    Ok(buf.freeze())
}

/// Decodes a request frame previously produced by [`encode_request`] (without the
/// leading length word, which the transport strips when it reads the frame).
pub fn decode_request(mut body: Bytes) -> Result<Request, RpcError> {
    if body.len() < 4 + CAP_SIZE {
        return Err(RpcError::Decode("request frame too short".into()));
    }
    let op = body.get_u32_le();
    let cap = Capability::decode(&mut body)
        .ok_or_else(|| RpcError::Decode("truncated capability".into()))?;
    Ok(Request {
        op,
        cap,
        payload: body,
    })
}

/// Encodes a reply into a self-delimiting frame.
pub fn encode_reply(reply: &Reply) -> Result<Bytes, RpcError> {
    if reply.payload.len() > MAX_FRAME_PAYLOAD {
        return Err(RpcError::TooLarge(reply.payload.len()));
    }
    let body_len = 1 + reply.payload.len();
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32_le(body_len as u32);
    buf.put_u8(reply.status as u8);
    buf.put_slice(&reply.payload);
    Ok(buf.freeze())
}

/// Decodes a reply frame body (without the leading length word).
pub fn decode_reply(mut body: Bytes) -> Result<Reply, RpcError> {
    if body.is_empty() {
        return Err(RpcError::Decode("reply frame too short".into()));
    }
    let status = Status::from_u8(body.get_u8())
        .ok_or_else(|| RpcError::Decode("invalid status byte".into()))?;
    Ok(Reply {
        status,
        payload: body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_capability::{Port, Rights};

    fn sample_cap() -> Capability {
        Capability {
            port: Port::from_raw(0xaaa),
            object: 9,
            rights: Rights::READ | Rights::WRITE,
            check: 0x1234_5678,
        }
    }

    #[test]
    fn request_round_trip() {
        let req = Request::new(7, sample_cap(), Bytes::from_static(b"args"));
        let frame = encode_request(&req).unwrap();
        // Strip the length prefix as the transport would.
        let body = frame.slice(4..);
        let decoded = decode_request(body).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn reply_round_trip() {
        let reply = Reply::error(Bytes::from_static(b"nope"));
        let frame = encode_reply(&reply).unwrap();
        let decoded = decode_reply(frame.slice(4..)).unwrap();
        assert_eq!(decoded, reply);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let req = Request::new(
            1,
            sample_cap(),
            Bytes::from(vec![0u8; MAX_FRAME_PAYLOAD + 1]),
        );
        assert!(matches!(encode_request(&req), Err(RpcError::TooLarge(_))));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        assert!(decode_request(Bytes::from_static(b"xx")).is_err());
        assert!(decode_reply(Bytes::new()).is_err());
    }

    #[test]
    fn length_prefix_matches_body() {
        let req = Request::new(3, sample_cap(), Bytes::from_static(b"abc"));
        let frame = encode_request(&req).unwrap();
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
    }
}
