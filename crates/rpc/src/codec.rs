//! Length-prefixed binary framing for requests and replies.
//!
//! Two frame families share this module (all integers little-endian).
//!
//! The *plain* frames carry one transaction with no identity of their own —
//! they are what [`LocalNetwork`](crate::LocalNetwork) conceptually exchanges
//! and what the first-generation TCP transport put on the wire:
//!
//! ```text
//! request  := u32 total_len | u32 op | capability (25 bytes) | payload
//! reply    := u32 total_len | u8 status            | payload
//! ```
//!
//! The *mux* frames add a request id (and, on requests, the destination
//! port), so many logical request streams can interleave on one connection
//! and replies can complete out of order:
//!
//! ```text
//! mux request := u32 total_len | u64 request_id | u64 port | u32 op | capability (25 bytes) | payload
//! mux reply   := u32 total_len | u64 request_id | u8 status               | payload
//! ```
//!
//! One more mux frame kind flows *against* the usual direction.  A server
//! may push an unsolicited *callback* down a connection (today: lease
//! breaks for cache coherence), and the client acknowledges it with an
//! *ack* frame.  Both are distinguished from ordinary traffic by a
//! reserved id word, [`CALLBACK_MARKER`], which
//! [`MuxCore`](crate::mux::MuxCore) never allocates for a request:
//!
//! ```text
//! mux callback := u32 total_len | u64 CALLBACK_MARKER | u64 ticket | u64 port | payload
//! mux ack      := u32 total_len | u64 CALLBACK_MARKER | u64 ticket
//! ```
//!
//! In every case the `total_len` word counts the bytes *after* itself, and
//! the `decode_*` functions take the frame body with that word already
//! stripped by the transport.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use amoeba_capability::{Capability, Port};

use crate::message::{Reply, Request, Status, MAX_FRAME_PAYLOAD};
use crate::RpcError;

/// Size of an encoded capability on the wire.
const CAP_SIZE: usize = 25;

/// Upper bound on the body length word of any frame either family can
/// produce: the largest payload plus the largest fixed header (mux request).
/// Transports reject bigger length words before allocating.
pub const MAX_FRAME_BODY: usize = MAX_FRAME_PAYLOAD + 8 + 8 + 4 + CAP_SIZE;

/// Reserved request-id word marking a server-initiated callback frame (or
/// the client's ack for one).  [`MuxCore`](crate::mux::MuxCore) allocates
/// request ids from 0 upward, so real traffic can never collide with it.
pub const CALLBACK_MARKER: u64 = u64::MAX;

/// Encodes a server→client callback frame: an unsolicited notification tagged
/// with a server-chosen `ticket` (echoed back in the ack) and the service
/// `port` it concerns.
pub fn encode_mux_callback(ticket: u64, port: Port, payload: &Bytes) -> Result<Bytes, RpcError> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(RpcError::TooLarge(payload.len()));
    }
    let body_len = 8 + 8 + 8 + payload.len();
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32_le(body_len as u32);
    buf.put_u64_le(CALLBACK_MARKER);
    buf.put_u64_le(ticket);
    buf.put_u64_le(port.raw());
    buf.put_slice(payload);
    Ok(buf.freeze())
}

/// Decodes a callback frame body (without the leading length word, with the
/// [`CALLBACK_MARKER`] id still in place), returning `(ticket, port, payload)`.
pub fn decode_mux_callback(mut body: Bytes) -> Result<(u64, Port, Bytes), RpcError> {
    if body.len() < 8 + 8 + 8 {
        return Err(RpcError::Decode("callback frame too short".into()));
    }
    let marker = body.get_u64_le();
    if marker != CALLBACK_MARKER {
        return Err(RpcError::Decode("callback frame missing marker".into()));
    }
    let ticket = body.get_u64_le();
    let port = Port::from_raw(body.get_u64_le());
    Ok((ticket, port, body))
}

/// Encodes a client→server ack for the callback carrying `ticket`.
pub fn encode_mux_callback_ack(ticket: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 16);
    buf.put_u32_le(16);
    buf.put_u64_le(CALLBACK_MARKER);
    buf.put_u64_le(ticket);
    buf.freeze()
}

/// Decodes a callback-ack frame body (without the leading length word, with
/// the [`CALLBACK_MARKER`] id still in place), returning the ticket.
pub fn decode_mux_callback_ack(mut body: Bytes) -> Result<u64, RpcError> {
    if body.len() != 16 {
        return Err(RpcError::Decode("callback ack frame malformed".into()));
    }
    let marker = body.get_u64_le();
    if marker != CALLBACK_MARKER {
        return Err(RpcError::Decode("callback ack missing marker".into()));
    }
    Ok(body.get_u64_le())
}

/// True if a mux frame body starts with the [`CALLBACK_MARKER`] id, i.e. it
/// is a callback (server→client) or callback-ack (client→server) frame
/// rather than an ordinary request or reply.
pub fn is_callback_frame(body: &[u8]) -> bool {
    body.len() >= 8 && body[0..8] == CALLBACK_MARKER.to_le_bytes()
}

/// Encodes a request into a self-delimiting frame.
pub fn encode_request(req: &Request) -> Result<Bytes, RpcError> {
    if req.payload.len() > MAX_FRAME_PAYLOAD {
        return Err(RpcError::TooLarge(req.payload.len()));
    }
    let body_len = 4 + CAP_SIZE + req.payload.len();
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32_le(body_len as u32);
    buf.put_u32_le(req.op);
    req.cap.encode(&mut buf);
    buf.put_slice(&req.payload);
    Ok(buf.freeze())
}

/// Decodes a request frame previously produced by [`encode_request`] (without the
/// leading length word, which the transport strips when it reads the frame).
pub fn decode_request(mut body: Bytes) -> Result<Request, RpcError> {
    if body.len() < 4 + CAP_SIZE {
        return Err(RpcError::Decode("request frame too short".into()));
    }
    let op = body.get_u32_le();
    let cap = Capability::decode(&mut body)
        .ok_or_else(|| RpcError::Decode("truncated capability".into()))?;
    Ok(Request {
        op,
        cap,
        payload: body,
    })
}

/// Encodes a reply into a self-delimiting frame.
pub fn encode_reply(reply: &Reply) -> Result<Bytes, RpcError> {
    if reply.payload.len() > MAX_FRAME_PAYLOAD {
        return Err(RpcError::TooLarge(reply.payload.len()));
    }
    let body_len = 1 + reply.payload.len();
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32_le(body_len as u32);
    buf.put_u8(reply.status as u8);
    buf.put_slice(&reply.payload);
    Ok(buf.freeze())
}

/// Decodes a reply frame body (without the leading length word).
pub fn decode_reply(mut body: Bytes) -> Result<Reply, RpcError> {
    if body.is_empty() {
        return Err(RpcError::Decode("reply frame too short".into()));
    }
    let status = Status::from_u8(body.get_u8())
        .ok_or_else(|| RpcError::Decode("invalid status byte".into()))?;
    Ok(Reply {
        status,
        payload: body,
    })
}

/// Encodes a multiplexed request frame: the request tagged with the id the
/// client allocated for it and the port the server should dispatch it to.
pub fn encode_mux_request(id: u64, port: Port, req: &Request) -> Result<Bytes, RpcError> {
    if req.payload.len() > MAX_FRAME_PAYLOAD {
        return Err(RpcError::TooLarge(req.payload.len()));
    }
    let body_len = 8 + 8 + 4 + CAP_SIZE + req.payload.len();
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32_le(body_len as u32);
    buf.put_u64_le(id);
    buf.put_u64_le(port.raw());
    buf.put_u32_le(req.op);
    req.cap.encode(&mut buf);
    buf.put_slice(&req.payload);
    Ok(buf.freeze())
}

/// Decodes a multiplexed request frame body (without the leading length
/// word), returning `(request_id, port, request)`.
pub fn decode_mux_request(mut body: Bytes) -> Result<(u64, Port, Request), RpcError> {
    if body.len() < 8 + 8 + 4 + CAP_SIZE {
        return Err(RpcError::Decode("mux request frame too short".into()));
    }
    let id = body.get_u64_le();
    let port = Port::from_raw(body.get_u64_le());
    let op = body.get_u32_le();
    let cap = Capability::decode(&mut body)
        .ok_or_else(|| RpcError::Decode("truncated capability".into()))?;
    Ok((
        id,
        port,
        Request {
            op,
            cap,
            payload: body,
        },
    ))
}

/// Encodes a multiplexed reply frame carrying the id of the request it
/// answers.
pub fn encode_mux_reply(id: u64, reply: &Reply) -> Result<Bytes, RpcError> {
    if reply.payload.len() > MAX_FRAME_PAYLOAD {
        return Err(RpcError::TooLarge(reply.payload.len()));
    }
    let body_len = 8 + 1 + reply.payload.len();
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32_le(body_len as u32);
    buf.put_u64_le(id);
    buf.put_u8(reply.status as u8);
    buf.put_slice(&reply.payload);
    Ok(buf.freeze())
}

/// Decodes a multiplexed reply frame body (without the leading length word),
/// returning `(request_id, reply)`.
pub fn decode_mux_reply(mut body: Bytes) -> Result<(u64, Reply), RpcError> {
    if body.len() < 8 + 1 {
        return Err(RpcError::Decode("mux reply frame too short".into()));
    }
    let id = body.get_u64_le();
    let status = Status::from_u8(body.get_u8())
        .ok_or_else(|| RpcError::Decode("invalid status byte".into()))?;
    Ok((
        id,
        Reply {
            status,
            payload: body,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_capability::{Port, Rights};

    fn sample_cap() -> Capability {
        Capability {
            port: Port::from_raw(0xaaa),
            object: 9,
            rights: Rights::READ | Rights::WRITE,
            check: 0x1234_5678,
        }
    }

    #[test]
    fn request_round_trip() {
        let req = Request::new(7, sample_cap(), Bytes::from_static(b"args"));
        let frame = encode_request(&req).unwrap();
        // Strip the length prefix as the transport would.
        let body = frame.slice(4..);
        let decoded = decode_request(body).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn reply_round_trip() {
        let reply = Reply::error(Bytes::from_static(b"nope"));
        let frame = encode_reply(&reply).unwrap();
        let decoded = decode_reply(frame.slice(4..)).unwrap();
        assert_eq!(decoded, reply);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let req = Request::new(
            1,
            sample_cap(),
            Bytes::from(vec![0u8; MAX_FRAME_PAYLOAD + 1]),
        );
        assert!(matches!(encode_request(&req), Err(RpcError::TooLarge(_))));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        assert!(decode_request(Bytes::from_static(b"xx")).is_err());
        assert!(decode_reply(Bytes::new()).is_err());
    }

    #[test]
    fn length_prefix_matches_body() {
        let req = Request::new(3, sample_cap(), Bytes::from_static(b"abc"));
        let frame = encode_request(&req).unwrap();
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
    }

    #[test]
    fn mux_request_round_trip() {
        let req = Request::new(7, sample_cap(), Bytes::from_static(b"args"));
        let frame = encode_mux_request(99, Port::from_raw(0xbeef), &req).unwrap();
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        let (id, port, decoded) = decode_mux_request(frame.slice(4..)).unwrap();
        assert_eq!(id, 99);
        assert_eq!(port, Port::from_raw(0xbeef));
        assert_eq!(decoded, req);
    }

    #[test]
    fn mux_reply_round_trip() {
        let reply = Reply::error(Bytes::from_static(b"nope"));
        let frame = encode_mux_reply(u64::MAX - 1, &reply).unwrap();
        let (id, decoded) = decode_mux_reply(frame.slice(4..)).unwrap();
        assert_eq!(id, u64::MAX - 1);
        assert_eq!(decoded, reply);
    }

    #[test]
    fn callback_and_ack_round_trip() {
        let payload = Bytes::from_static(b"break object 9");
        let frame = encode_mux_callback(42, Port::from_raw(0xfeed), &payload).unwrap();
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        let body = frame.slice(4..);
        assert!(is_callback_frame(&body));
        let (ticket, port, decoded) = decode_mux_callback(body).unwrap();
        assert_eq!(ticket, 42);
        assert_eq!(port, Port::from_raw(0xfeed));
        assert_eq!(decoded, payload);

        let ack = encode_mux_callback_ack(42);
        let len = u32::from_le_bytes(ack[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, ack.len() - 4);
        let body = ack.slice(4..);
        assert!(is_callback_frame(&body));
        assert_eq!(decode_mux_callback_ack(body).unwrap(), 42);
    }

    #[test]
    fn callback_frames_are_distinguishable_from_replies() {
        // An ordinary reply never starts with the marker because MuxCore
        // allocates ids from 0 upward; a frame that does start with it must
        // fail ordinary decoding paths that require more structure.
        let reply = Reply::ok(Bytes::from_static(b"data"));
        let frame = encode_mux_reply(7, &reply).unwrap();
        assert!(!is_callback_frame(&frame.slice(4..)));

        assert!(decode_mux_callback(Bytes::from_static(b"short")).is_err());
        assert!(decode_mux_callback_ack(Bytes::from_static(b"0123456789")).is_err());
        // Wrong marker word is rejected even with plausible lengths.
        let mut buf = BytesMut::new();
        buf.put_u64_le(5);
        buf.put_u64_le(1);
        buf.put_u64_le(2);
        assert!(decode_mux_callback(buf.freeze()).is_err());
    }

    #[test]
    fn mux_truncated_and_oversized_frames_are_rejected() {
        assert!(decode_mux_request(Bytes::from_static(b"short")).is_err());
        assert!(decode_mux_reply(Bytes::from_static(b"12345678")).is_err());
        let big = Request::new(
            1,
            sample_cap(),
            Bytes::from(vec![0u8; MAX_FRAME_PAYLOAD + 1]),
        );
        assert!(matches!(
            encode_mux_request(0, Port::from_raw(1), &big),
            Err(RpcError::TooLarge(_))
        ));
        let big = Reply::ok(Bytes::from(vec![0u8; MAX_FRAME_PAYLOAD + 1]));
        assert!(matches!(
            encode_mux_reply(0, &big),
            Err(RpcError::TooLarge(_))
        ));
    }

    /// Property test: random ids, ports, opcodes, capabilities and payload
    /// lengths (up to the full `MAX_FRAME_PAYLOAD`) survive an
    /// encode-strip-decode round trip, and every encoded frame respects its
    /// own length word and the [`MAX_FRAME_BODY`] bound.
    #[test]
    fn mux_codec_round_trips_fuzzed_frames() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0DEC);
        for case in 0..256 {
            let id: u64 = rng.gen();
            let port = Port::from_raw(rng.gen());
            let op: u32 = rng.gen();
            let cap = Capability {
                port: Port::from_raw(rng.gen()),
                object: rng.gen(),
                rights: Rights::from_bits(rng.gen::<u8>()),
                check: rng.gen(),
            };
            // Mostly small payloads for speed, with full-size ones sprinkled
            // in so the MAX_FRAME_PAYLOAD boundary itself is exercised.
            let len = if case % 32 == 0 {
                MAX_FRAME_PAYLOAD - rng.gen_range(0..4)
            } else {
                rng.gen_range(0..2048)
            };
            let payload: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();

            let req = Request::new(op, cap, Bytes::from(payload.clone()));
            let frame = encode_mux_request(id, port, &req).unwrap();
            let body_len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
            assert_eq!(body_len, frame.len() - 4);
            assert!(body_len <= MAX_FRAME_BODY);
            let (rid, rport, rreq) = decode_mux_request(frame.slice(4..)).unwrap();
            assert_eq!((rid, rport), (id, port));
            assert_eq!(rreq, req);

            let status = if rng.gen_bool(0.5) {
                Status::Ok
            } else {
                Status::Error
            };
            let reply = Reply {
                status,
                payload: Bytes::from(payload),
            };
            let frame = encode_mux_reply(id, &reply).unwrap();
            let body_len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
            assert_eq!(body_len, frame.len() - 4);
            assert!(body_len <= MAX_FRAME_BODY);
            let (rid, rreply) = decode_mux_reply(frame.slice(4..)).unwrap();
            assert_eq!(rid, id);
            assert_eq!(rreply, reply);
        }
    }
}
