//! Wire protocol for the **block** service: operation codes and payload
//! marshalling.
//!
//! The file-service protocol (in `afs-server`) moves *pages* between clients
//! and file servers; this module moves *blocks* between a file server and the
//! block-server processes that hold its replica disks.  It exists for one
//! reason: the commit flush.  A commit's dirty pages travel to each replica as
//! a single [`BlockOp::WriteBlocks`] scatter-gather request, so a k-page commit
//! costs one block-write RPC per replica instead of k.
//!
//! Block numbers are `u32` on the wire (28 significant bits, Fig. 3).  The
//! handler and the client-side `BlockStore` implementation live in
//! `afs_server::block`; this module only defines the frames, so the codec can
//! be tested without pulling in the block service itself.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::message::MAX_PAYLOAD;

/// Operations a block-server process understands.  The capability in the
/// request names the client's *account* at the block server (except for
/// `CreateAccount`, which mints one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum BlockOp {
    /// Create an account.  Reply: account capability.
    CreateAccount = 1,
    /// Query the store's block size.  Reply: u32.
    BlockSize = 2,
    /// Allocate a fresh block.  Reply: u32 block number.
    Allocate = 3,
    /// Allocate a specific block number.  Payload: u32.
    AllocateAt = 4,
    /// Free a block.  Payload: u32.
    Free = 5,
    /// Read a block.  Payload: u32.  Reply: the data.
    Read = 6,
    /// Write one block.  Payload: u32 + data.
    Write = 7,
    /// Write a batch of blocks in one scatter-gather call, applied in entry
    /// order.  Payload: u64 membership epoch (0 = unstamped), u32 count, then
    /// per entry u32 block + u32 len + data.  This is the op a commit flush
    /// rides: one request per replica carries every dirty page of the
    /// committing version, stamped with the coordinator's view of the replica
    /// set so a server that has seen a newer configuration can reject a stale
    /// coordinator (retriable epoch mismatch).
    WriteBlocks = 8,
    /// Is the block allocated?  Payload: u32.  Reply: one byte.
    IsAllocated = 9,
    /// Number of allocated blocks.  Reply: u32.
    AllocatedCount = 10,
    /// List allocated blocks.  Reply: u32 count + u32 per block.
    AllocatedBlocks = 11,
}

impl BlockOp {
    /// Decodes an operation code.
    pub fn from_u32(v: u32) -> Option<BlockOp> {
        Some(match v {
            1 => BlockOp::CreateAccount,
            2 => BlockOp::BlockSize,
            3 => BlockOp::Allocate,
            4 => BlockOp::AllocateAt,
            5 => BlockOp::Free,
            6 => BlockOp::Read,
            7 => BlockOp::Write,
            8 => BlockOp::WriteBlocks,
            9 => BlockOp::IsAllocated,
            10 => BlockOp::AllocatedCount,
            11 => BlockOp::AllocatedBlocks,
            _ => return None,
        })
    }
}

/// Encodes a lone block number (the `AllocateAt`/`Free`/`Read`/`IsAllocated`
/// payload and the `Allocate` reply).
pub fn encode_block_nr(nr: u32) -> Bytes {
    Bytes::from(nr.to_le_bytes().to_vec())
}

/// Decodes a lone block number.
pub fn decode_block_nr(mut payload: Bytes) -> Option<u32> {
    if payload.remaining() < 4 {
        return None;
    }
    Some(payload.get_u32_le())
}

/// Encodes the `Write` payload: block number followed by the raw data.
pub fn encode_block_write(nr: u32, data: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + data.len());
    buf.put_u32_le(nr);
    buf.put_slice(data);
    buf.freeze()
}

/// Decodes the `Write` payload.
pub fn decode_block_write(mut payload: Bytes) -> Option<(u32, Bytes)> {
    if payload.remaining() < 4 {
        return None;
    }
    let nr = payload.get_u32_le();
    Some((nr, payload))
}

/// Encodes the `WriteBlocks` payload: the sender's membership epoch (0 when
/// the sender is not part of a replica set), entry count, then
/// `block + len + data` per entry, in application order.
pub fn encode_block_writes(epoch: u64, writes: &[(u32, Bytes)]) -> Bytes {
    let mut buf =
        BytesMut::with_capacity(12 + writes.iter().map(|(_, d)| 8 + d.len()).sum::<usize>());
    buf.put_u64_le(epoch);
    buf.put_u32_le(writes.len() as u32);
    for (nr, data) in writes {
        buf.put_u32_le(*nr);
        buf.put_u32_le(data.len() as u32);
        buf.put_slice(data);
    }
    buf.freeze()
}

/// Decodes the `WriteBlocks` payload into `(epoch, writes)`.
pub fn decode_block_writes(mut payload: Bytes) -> Option<(u64, Vec<(u32, Bytes)>)> {
    if payload.remaining() < 12 {
        return None;
    }
    let epoch = payload.get_u64_le();
    let count = payload.get_u32_le() as usize;
    let mut writes = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        if payload.remaining() < 8 {
            return None;
        }
        let nr = payload.get_u32_le();
        let len = payload.get_u32_le() as usize;
        if payload.remaining() < len {
            return None;
        }
        writes.push((nr, payload.slice(..len)));
        payload.advance(len);
    }
    Some((epoch, writes))
}

/// Bytes one entry occupies in a `WriteBlocks` payload.
pub fn encoded_block_write_len(data: &Bytes) -> usize {
    8 + data.len()
}

/// How many `WriteBlocks` payload bytes a client packs into one request frame.
pub const WRITE_BATCH_BUDGET: usize = MAX_PAYLOAD;

/// Splits a batch into frame-sized chunks, each at least one entry long:
/// entries are greedily packed until the next one would overflow
/// [`WRITE_BATCH_BUDGET`].  Small-page commits (the common case) fit in one
/// chunk — one RPC; only batches of pages too large to share a frame degrade
/// towards one RPC per page, which the transaction size bound (§5) forces
/// anyway.
pub fn chunk_block_writes(writes: &[(u32, Bytes)]) -> Vec<&[(u32, Bytes)]> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut used = 0usize;
    for (idx, (_, data)) in writes.iter().enumerate() {
        let entry = encoded_block_write_len(data);
        if idx > start && used + entry > WRITE_BATCH_BUDGET {
            chunks.push(&writes[start..idx]);
            start = idx;
            used = 0;
        }
        used += entry;
    }
    if start < writes.len() {
        chunks.push(&writes[start..]);
    }
    chunks
}

/// Encodes a list of block numbers (the `AllocatedBlocks` reply).
pub fn encode_block_list(blocks: &[u32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + blocks.len() * 4);
    buf.put_u32_le(blocks.len() as u32);
    for nr in blocks {
        buf.put_u32_le(*nr);
    }
    buf.freeze()
}

/// Decodes a list of block numbers.
pub fn decode_block_list(mut payload: Bytes) -> Option<Vec<u32>> {
    if payload.remaining() < 4 {
        return None;
    }
    let count = payload.get_u32_le() as usize;
    if payload.remaining() < count * 4 {
        return None;
    }
    let mut blocks = Vec::with_capacity(count.min(65536));
    for _ in 0..count {
        blocks.push(payload.get_u32_le());
    }
    Some(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codes_round_trip() {
        for op in [
            BlockOp::CreateAccount,
            BlockOp::BlockSize,
            BlockOp::Allocate,
            BlockOp::AllocateAt,
            BlockOp::Free,
            BlockOp::Read,
            BlockOp::Write,
            BlockOp::WriteBlocks,
            BlockOp::IsAllocated,
            BlockOp::AllocatedCount,
            BlockOp::AllocatedBlocks,
        ] {
            assert_eq!(BlockOp::from_u32(op as u32), Some(op));
        }
        assert_eq!(BlockOp::from_u32(0), None);
        assert_eq!(BlockOp::from_u32(99), None);
    }

    #[test]
    fn write_batch_round_trips() {
        let writes = vec![
            (7u32, Bytes::from_static(b"seven")),
            (9, Bytes::new()),
            (0x0fff_ffff, Bytes::from_static(b"max block")),
        ];
        assert_eq!(
            decode_block_writes(encode_block_writes(42, &writes)).unwrap(),
            (42, writes.clone())
        );
        // Epoch 0 = unstamped, still round-trips.
        assert_eq!(
            decode_block_writes(encode_block_writes(0, &writes)).unwrap(),
            (0, writes.clone())
        );
        let truncated = encode_block_writes(42, &writes);
        let truncated = truncated.slice(..truncated.len() - 2);
        assert_eq!(decode_block_writes(truncated), None);
        // A frame too short to even hold the epoch + count header is rejected.
        assert_eq!(decode_block_writes(Bytes::from_static(&[0u8; 8])), None);
    }

    #[test]
    fn single_write_and_nr_round_trip() {
        let (nr, data) =
            decode_block_write(encode_block_write(42, &Bytes::from_static(b"data"))).unwrap();
        assert_eq!(nr, 42);
        assert_eq!(data, Bytes::from_static(b"data"));
        assert_eq!(decode_block_nr(encode_block_nr(5)).unwrap(), 5);
        assert_eq!(decode_block_nr(Bytes::new()), None);
    }

    #[test]
    fn block_list_round_trips() {
        let blocks = vec![1u32, 5, 9];
        assert_eq!(
            decode_block_list(encode_block_list(&blocks)).unwrap(),
            blocks
        );
    }

    #[test]
    fn chunking_respects_the_frame_budget() {
        // Tiny entries: everything in one chunk.
        let small: Vec<(u32, Bytes)> = (0..100).map(|i| (i, Bytes::from(vec![0u8; 16]))).collect();
        let chunks = chunk_block_writes(&small);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 100);

        // Half-budget entries: two per chunk.
        let big: Vec<(u32, Bytes)> = (0..6)
            .map(|i| (i, Bytes::from(vec![0u8; WRITE_BATCH_BUDGET / 2 - 8])))
            .collect();
        let chunks = chunk_block_writes(&big);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() == 2));

        // An over-budget entry still travels (alone).
        let huge = vec![(1u32, Bytes::from(vec![0u8; WRITE_BATCH_BUDGET + 1]))];
        let chunks = chunk_block_writes(&huge);
        assert_eq!(chunks.len(), 1);

        assert!(chunk_block_writes(&[]).is_empty());
    }
}
