//! In-process transport: clients and servers in the same address space.
//!
//! `LocalNetwork` is the default substrate for tests, examples and benchmarks: it
//! routes transactions directly to registered handlers, optionally injecting the
//! network pathologies the robustness experiments need (latency, loss, crashed or
//! partitioned servers).
//!
//! Used directly as a [`Transport`], the network is *connectionless*: handlers
//! see no peer identity and can push nothing back, so lease-granting servers
//! degrade to plain validate-on-use.  [`LocalNetwork::connect`] upgrades that:
//! it mints a [`LocalConn`] — an in-process stand-in for one multiplexed TCP
//! connection — whose transactions reach handlers through
//! [`RequestHandler::handle_from`] with a live [`CallbackChannel`], and whose
//! registered [`CallbackSink`]s receive server pushes synchronously on the
//! pushing thread (delivery-is-processing, so every push is immediately
//! acked, like the TCP transport's automatic ack after sink dispatch).
//! [`LocalConn::kill`] severs the connection for crash experiments.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use amoeba_capability::Port;

use crate::message::{Reply, Request};
use crate::{CallbackChannel, CallbackSink, RequestHandler, Result, RpcError, Transport};

/// Network fault configuration for a [`LocalNetwork`].
#[derive(Debug, Clone, Copy)]
pub struct NetworkFaults {
    /// Fixed latency added to every transaction (request + reply combined).
    pub latency: Duration,
    /// Probability in [0, 1] that a transaction is lost entirely.
    pub drop_prob: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for NetworkFaults {
    fn default() -> Self {
        NetworkFaults {
            latency: Duration::ZERO,
            drop_prob: 0.0,
            seed: 0,
        }
    }
}

/// An in-process "network": a routing table from ports to handlers.
pub struct LocalNetwork {
    handlers: RwLock<HashMap<Port, Arc<dyn RequestHandler>>>,
    /// Ports that are currently unreachable (crashed server process or partition).
    unreachable: RwLock<HashSet<Port>>,
    faults: Mutex<NetworkFaults>,
    rng: Mutex<StdRng>,
    transactions: AtomicU64,
    dropped: AtomicU64,
    next_peer: AtomicU64,
}

impl Default for LocalNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalNetwork {
    /// Creates a network with no registered services and no faults.
    pub fn new() -> Self {
        Self::with_faults(NetworkFaults::default())
    }

    /// Creates a network with the given fault configuration.
    pub fn with_faults(faults: NetworkFaults) -> Self {
        LocalNetwork {
            handlers: RwLock::new(HashMap::new()),
            unreachable: RwLock::new(HashSet::new()),
            rng: Mutex::new(StdRng::seed_from_u64(faults.seed)),
            faults: Mutex::new(faults),
            transactions: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            next_peer: AtomicU64::new(1),
        }
    }

    /// Mints an in-process "connection" to this network: a cloneable
    /// [`Transport`] whose transactions carry a peer identity and a live
    /// callback channel to the handlers, mirroring one multiplexed TCP
    /// connection.  Callers that need server-granted leases connect; callers
    /// that use the network directly stay anonymous and lease-free.
    pub fn connect(self: &Arc<Self>) -> LocalConn {
        LocalConn {
            net: Arc::clone(self),
            channel: Arc::new(LocalChannel {
                key: self.next_peer.fetch_add(1, Ordering::Relaxed),
                state: Mutex::new(LocalChannelState::default()),
                next_ticket: AtomicU64::new(1),
                acked: Mutex::new(HashSet::new()),
            }),
        }
    }

    fn transact_from(
        &self,
        peer: Option<&Arc<dyn CallbackChannel>>,
        port: Port,
        request: Request,
    ) -> Result<Reply> {
        self.transactions.fetch_add(1, Ordering::Relaxed);
        let (latency, drop_prob) = {
            let f = self.faults.lock();
            (f.latency, f.drop_prob)
        };
        if drop_prob > 0.0 && self.rng.lock().gen_bool(drop_prob.min(1.0)) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(RpcError::Dropped);
        }
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
        if self.unreachable.read().contains(&port) {
            return Err(RpcError::ServerCrashed);
        }
        let handler = {
            let handlers = self.handlers.read();
            handlers.get(&port).cloned()
        };
        match handler {
            Some(h) => Ok(h.handle_from(request, peer)),
            None => Err(RpcError::NoSuchPort),
        }
    }

    /// Registers a service handler at `port`.  Replaces any previous registration.
    pub fn register(&self, port: Port, handler: Arc<dyn RequestHandler>) {
        self.handlers.write().insert(port, handler);
        self.unreachable.write().remove(&port);
    }

    /// Removes the service listening at `port`.
    pub fn deregister(&self, port: Port) {
        self.handlers.write().remove(&port);
    }

    /// Marks a port unreachable: transactions to it fail with
    /// [`RpcError::ServerCrashed`] until [`LocalNetwork::restore`] is called.  This is
    /// how experiments model a crashed or partitioned server *process* (as opposed to
    /// a crashed disk, which is modelled in `amoeba-block`).
    pub fn isolate(&self, port: Port) {
        self.unreachable.write().insert(port);
    }

    /// Makes a previously isolated port reachable again.
    pub fn restore(&self, port: Port) {
        self.unreachable.write().remove(&port);
    }

    /// Replaces the fault configuration.
    pub fn set_faults(&self, faults: NetworkFaults) {
        *self.rng.lock() = StdRng::seed_from_u64(faults.seed);
        *self.faults.lock() = faults;
    }

    /// Total number of transactions attempted through this network.
    pub fn transaction_count(&self) -> u64 {
        self.transactions.load(Ordering::Relaxed)
    }

    /// Number of transactions lost to injected faults.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Lists the ports with registered services.
    pub fn ports(&self) -> Vec<Port> {
        self.handlers.read().keys().copied().collect()
    }
}

impl Transport for LocalNetwork {
    fn transact(&self, port: Port, request: Request) -> Result<Reply> {
        self.transact_from(None, port, request)
    }
}

// ---------------------------------------------------------------------------
// LocalConn: a connection-shaped view of the network.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct LocalChannelState {
    sinks: Vec<Arc<dyn CallbackSink>>,
    closed: bool,
}

/// The shared state behind one [`LocalConn`]: the server-visible
/// [`CallbackChannel`] and the client-registered [`CallbackSink`]s, fused
/// (there is no wire in between).
struct LocalChannel {
    key: u64,
    state: Mutex<LocalChannelState>,
    next_ticket: AtomicU64,
    acked: Mutex<HashSet<u64>>,
}

impl CallbackChannel for LocalChannel {
    fn push(&self, port: Port, payload: Bytes) -> Option<u64> {
        let sinks = {
            let state = self.state.lock();
            if state.closed {
                return None;
            }
            state.sinks.clone()
        };
        // Deliver synchronously on the pushing thread — the in-process
        // equivalent of the TCP reader dispatching the frame — then self-ack:
        // once every sink has returned, the callback is processed by
        // definition, exactly the moment the TCP client writes its ack.
        for sink in &sinks {
            sink.on_callback(port, payload.clone());
        }
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.acked.lock().insert(ticket);
        Some(ticket)
    }

    fn wait_acked(&self, ticket: u64, _deadline: Instant) -> bool {
        self.acked.lock().remove(&ticket)
    }

    fn peer_key(&self) -> u64 {
        self.key
    }

    fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

/// One in-process "connection": a [`Transport`] over a [`LocalNetwork`] that
/// gives handlers a peer identity and a callback channel, like one
/// multiplexed TCP connection does.  Cloning shares the connection (as
/// cloning a pooled TCP client shares its sockets); [`LocalNetwork::connect`]
/// mints an independent one.
#[derive(Clone)]
pub struct LocalConn {
    net: Arc<LocalNetwork>,
    channel: Arc<LocalChannel>,
}

impl LocalConn {
    /// The network this connection transacts over.
    pub fn network(&self) -> &Arc<LocalNetwork> {
        &self.net
    }

    /// Severs the connection: handlers holding its [`CallbackChannel`] see it
    /// closed (pushes fail, grants die with it) and every registered sink
    /// gets [`CallbackSink::on_connection_lost`].  Transactions keep working
    /// — this models losing the *connection* state (and with it all leases),
    /// not the network: a real client would reconnect and must revalidate.
    pub fn kill(&self) {
        let sinks = {
            let mut state = self.channel.state.lock();
            if state.closed {
                return;
            }
            state.closed = true;
            std::mem::take(&mut state.sinks)
        };
        for sink in &sinks {
            sink.on_connection_lost();
        }
    }
}

impl Transport for LocalConn {
    fn transact(&self, port: Port, request: Request) -> Result<Reply> {
        let channel: Arc<dyn CallbackChannel> = Arc::clone(&self.channel) as _;
        self.net.transact_from(Some(&channel), port, request)
    }

    fn register_callback_sink(&self, sink: Arc<dyn CallbackSink>) -> bool {
        let mut state = self.channel.state.lock();
        if state.closed {
            return false;
        }
        state.sinks.push(sink);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_capability::Capability;
    use bytes::Bytes;

    fn echo_handler() -> Arc<dyn RequestHandler> {
        Arc::new(|req: Request| Reply::ok(req.payload))
    }

    #[test]
    fn transact_reaches_registered_handler() {
        let net = LocalNetwork::new();
        let port = Port::from_raw(42);
        net.register(port, echo_handler());
        let reply = net
            .transact(
                port,
                Request::new(1, Capability::null(), Bytes::from_static(b"ping")),
            )
            .unwrap();
        assert!(reply.is_ok());
        assert_eq!(reply.payload, Bytes::from_static(b"ping"));
    }

    #[test]
    fn unknown_port_is_an_error() {
        let net = LocalNetwork::new();
        let err = net
            .transact(Port::from_raw(1), Request::empty(0, Capability::null()))
            .unwrap_err();
        assert_eq!(err, RpcError::NoSuchPort);
    }

    #[test]
    fn isolation_and_restoration() {
        let net = LocalNetwork::new();
        let port = Port::from_raw(9);
        net.register(port, echo_handler());
        net.isolate(port);
        assert_eq!(
            net.transact(port, Request::empty(0, Capability::null())),
            Err(RpcError::ServerCrashed)
        );
        net.restore(port);
        assert!(net
            .transact(port, Request::empty(0, Capability::null()))
            .is_ok());
    }

    #[test]
    fn deregistered_service_disappears() {
        let net = LocalNetwork::new();
        let port = Port::from_raw(5);
        net.register(port, echo_handler());
        net.deregister(port);
        assert_eq!(
            net.transact(port, Request::empty(0, Capability::null())),
            Err(RpcError::NoSuchPort)
        );
    }

    #[test]
    fn drop_probability_loses_messages() {
        let net = LocalNetwork::with_faults(NetworkFaults {
            latency: Duration::ZERO,
            drop_prob: 1.0,
            seed: 3,
        });
        let port = Port::from_raw(7);
        net.register(port, echo_handler());
        assert_eq!(
            net.transact(port, Request::empty(0, Capability::null())),
            Err(RpcError::Dropped)
        );
        assert_eq!(net.dropped_count(), 1);
    }

    #[test]
    fn connected_transact_exposes_a_live_channel_to_the_handler() {
        use std::sync::atomic::AtomicBool;

        let net = Arc::new(LocalNetwork::new());
        let port = Port::from_raw(21);
        let seen_peer = Arc::new(AtomicBool::new(false));

        struct PeerProbe {
            seen: Arc<AtomicBool>,
        }
        impl RequestHandler for PeerProbe {
            fn handle(&self, req: Request) -> Reply {
                Reply::ok(req.payload)
            }
            fn handle_from(&self, req: Request, peer: Option<&Arc<dyn CallbackChannel>>) -> Reply {
                if let Some(chan) = peer {
                    if !chan.is_closed() {
                        self.seen.store(true, Ordering::SeqCst);
                        // Push a callback and observe the synchronous ack.
                        let ticket = chan
                            .push(Port::from_raw(21), Bytes::from_static(b"cb"))
                            .unwrap();
                        assert!(chan.wait_acked(ticket, Instant::now()));
                    }
                }
                self.handle(req)
            }
        }

        net.register(
            port,
            Arc::new(PeerProbe {
                seen: Arc::clone(&seen_peer),
            }),
        );

        struct Recorder {
            callbacks: AtomicU64,
            lost: AtomicU64,
        }
        impl CallbackSink for Recorder {
            fn on_callback(&self, _port: Port, _payload: Bytes) {
                self.callbacks.fetch_add(1, Ordering::SeqCst);
            }
            fn on_connection_lost(&self) {
                self.lost.fetch_add(1, Ordering::SeqCst);
            }
        }
        let recorder = Arc::new(Recorder {
            callbacks: AtomicU64::new(0),
            lost: AtomicU64::new(0),
        });

        // Anonymous use: handler sees no peer.
        net.transact(port, Request::empty(0, Capability::null()))
            .unwrap();
        assert!(!seen_peer.load(Ordering::SeqCst));

        // Connected use: handler sees the channel, the sink sees the push.
        let conn = net.connect();
        assert!(conn.register_callback_sink(Arc::clone(&recorder) as _));
        conn.transact(port, Request::empty(0, Capability::null()))
            .unwrap();
        assert!(seen_peer.load(Ordering::SeqCst));
        assert_eq!(recorder.callbacks.load(Ordering::SeqCst), 1);

        // Killing the connection notifies sinks and closes the channel, but
        // transactions still flow (the "reconnected without leases" state).
        conn.kill();
        assert_eq!(recorder.lost.load(Ordering::SeqCst), 1);
        seen_peer.store(false, Ordering::SeqCst);
        conn.transact(port, Request::empty(0, Capability::null()))
            .unwrap();
        assert!(!seen_peer.load(Ordering::SeqCst)); // closed channel grants nothing
        assert_eq!(recorder.callbacks.load(Ordering::SeqCst), 1);

        // Distinct connections get distinct peer keys.
        let other = net.connect();
        assert_ne!(
            Arc::clone(&conn.channel).peer_key(),
            Arc::clone(&other.channel).peer_key()
        );
    }

    #[test]
    fn counters_track_activity() {
        let net = LocalNetwork::new();
        let port = Port::from_raw(11);
        net.register(port, echo_handler());
        for _ in 0..5 {
            net.transact(port, Request::empty(0, Capability::null()))
                .unwrap();
        }
        assert_eq!(net.transaction_count(), 5);
        assert_eq!(net.dropped_count(), 0);
        assert_eq!(net.ports(), vec![port]);
    }
}
