//! In-process transport: clients and servers in the same address space.
//!
//! `LocalNetwork` is the default substrate for tests, examples and benchmarks: it
//! routes transactions directly to registered handlers, optionally injecting the
//! network pathologies the robustness experiments need (latency, loss, crashed or
//! partitioned servers).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use amoeba_capability::Port;

use crate::message::{Reply, Request};
use crate::{RequestHandler, Result, RpcError, Transport};

/// Network fault configuration for a [`LocalNetwork`].
#[derive(Debug, Clone, Copy)]
pub struct NetworkFaults {
    /// Fixed latency added to every transaction (request + reply combined).
    pub latency: Duration,
    /// Probability in [0, 1] that a transaction is lost entirely.
    pub drop_prob: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for NetworkFaults {
    fn default() -> Self {
        NetworkFaults {
            latency: Duration::ZERO,
            drop_prob: 0.0,
            seed: 0,
        }
    }
}

/// An in-process "network": a routing table from ports to handlers.
pub struct LocalNetwork {
    handlers: RwLock<HashMap<Port, Arc<dyn RequestHandler>>>,
    /// Ports that are currently unreachable (crashed server process or partition).
    unreachable: RwLock<HashSet<Port>>,
    faults: Mutex<NetworkFaults>,
    rng: Mutex<StdRng>,
    transactions: AtomicU64,
    dropped: AtomicU64,
}

impl Default for LocalNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalNetwork {
    /// Creates a network with no registered services and no faults.
    pub fn new() -> Self {
        Self::with_faults(NetworkFaults::default())
    }

    /// Creates a network with the given fault configuration.
    pub fn with_faults(faults: NetworkFaults) -> Self {
        LocalNetwork {
            handlers: RwLock::new(HashMap::new()),
            unreachable: RwLock::new(HashSet::new()),
            rng: Mutex::new(StdRng::seed_from_u64(faults.seed)),
            faults: Mutex::new(faults),
            transactions: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Registers a service handler at `port`.  Replaces any previous registration.
    pub fn register(&self, port: Port, handler: Arc<dyn RequestHandler>) {
        self.handlers.write().insert(port, handler);
        self.unreachable.write().remove(&port);
    }

    /// Removes the service listening at `port`.
    pub fn deregister(&self, port: Port) {
        self.handlers.write().remove(&port);
    }

    /// Marks a port unreachable: transactions to it fail with
    /// [`RpcError::ServerCrashed`] until [`LocalNetwork::restore`] is called.  This is
    /// how experiments model a crashed or partitioned server *process* (as opposed to
    /// a crashed disk, which is modelled in `amoeba-block`).
    pub fn isolate(&self, port: Port) {
        self.unreachable.write().insert(port);
    }

    /// Makes a previously isolated port reachable again.
    pub fn restore(&self, port: Port) {
        self.unreachable.write().remove(&port);
    }

    /// Replaces the fault configuration.
    pub fn set_faults(&self, faults: NetworkFaults) {
        *self.rng.lock() = StdRng::seed_from_u64(faults.seed);
        *self.faults.lock() = faults;
    }

    /// Total number of transactions attempted through this network.
    pub fn transaction_count(&self) -> u64 {
        self.transactions.load(Ordering::Relaxed)
    }

    /// Number of transactions lost to injected faults.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Lists the ports with registered services.
    pub fn ports(&self) -> Vec<Port> {
        self.handlers.read().keys().copied().collect()
    }
}

impl Transport for LocalNetwork {
    fn transact(&self, port: Port, request: Request) -> Result<Reply> {
        self.transactions.fetch_add(1, Ordering::Relaxed);
        let (latency, drop_prob) = {
            let f = self.faults.lock();
            (f.latency, f.drop_prob)
        };
        if drop_prob > 0.0 && self.rng.lock().gen_bool(drop_prob.min(1.0)) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(RpcError::Dropped);
        }
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
        if self.unreachable.read().contains(&port) {
            return Err(RpcError::ServerCrashed);
        }
        let handler = {
            let handlers = self.handlers.read();
            handlers.get(&port).cloned()
        };
        match handler {
            Some(h) => Ok(h.handle(request)),
            None => Err(RpcError::NoSuchPort),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_capability::Capability;
    use bytes::Bytes;

    fn echo_handler() -> Arc<dyn RequestHandler> {
        Arc::new(|req: Request| Reply::ok(req.payload))
    }

    #[test]
    fn transact_reaches_registered_handler() {
        let net = LocalNetwork::new();
        let port = Port::from_raw(42);
        net.register(port, echo_handler());
        let reply = net
            .transact(
                port,
                Request::new(1, Capability::null(), Bytes::from_static(b"ping")),
            )
            .unwrap();
        assert!(reply.is_ok());
        assert_eq!(reply.payload, Bytes::from_static(b"ping"));
    }

    #[test]
    fn unknown_port_is_an_error() {
        let net = LocalNetwork::new();
        let err = net
            .transact(Port::from_raw(1), Request::empty(0, Capability::null()))
            .unwrap_err();
        assert_eq!(err, RpcError::NoSuchPort);
    }

    #[test]
    fn isolation_and_restoration() {
        let net = LocalNetwork::new();
        let port = Port::from_raw(9);
        net.register(port, echo_handler());
        net.isolate(port);
        assert_eq!(
            net.transact(port, Request::empty(0, Capability::null())),
            Err(RpcError::ServerCrashed)
        );
        net.restore(port);
        assert!(net
            .transact(port, Request::empty(0, Capability::null()))
            .is_ok());
    }

    #[test]
    fn deregistered_service_disappears() {
        let net = LocalNetwork::new();
        let port = Port::from_raw(5);
        net.register(port, echo_handler());
        net.deregister(port);
        assert_eq!(
            net.transact(port, Request::empty(0, Capability::null())),
            Err(RpcError::NoSuchPort)
        );
    }

    #[test]
    fn drop_probability_loses_messages() {
        let net = LocalNetwork::with_faults(NetworkFaults {
            latency: Duration::ZERO,
            drop_prob: 1.0,
            seed: 3,
        });
        let port = Port::from_raw(7);
        net.register(port, echo_handler());
        assert_eq!(
            net.transact(port, Request::empty(0, Capability::null())),
            Err(RpcError::Dropped)
        );
        assert_eq!(net.dropped_count(), 1);
    }

    #[test]
    fn counters_track_activity() {
        let net = LocalNetwork::new();
        let port = Port::from_raw(11);
        net.register(port, echo_handler());
        for _ in 0..5 {
            net.transact(port, Request::empty(0, Capability::null()))
                .unwrap();
        }
        assert_eq!(net.transaction_count(), 5);
        assert_eq!(net.dropped_count(), 0);
        assert_eq!(net.ports(), vec![port]);
    }
}
