//! Bounded exponential backoff with deterministic jitter for client retry
//! loops.
//!
//! The failover loops of the client stubs (`RemoteFs`, `RemoteDir`,
//! `RemoteBlockStore`) and the TCP connect path originally retried
//! *immediately*: one tight pass over the server list and give up.  Against a
//! transient outage — a server restarting, a partition healing — an immediate
//! retry is both too eager (it hammers a recovering server at the worst
//! moment) and too impatient (it gives up milliseconds before the server is
//! back).  [`Backoff`] packages the standard remedy:
//!
//! * **exponential** — the n-th delay doubles the previous one, so a short
//!   blip costs microseconds and a real outage backs the client off quickly;
//! * **bounded** — delays are capped, and the number of attempts is finite:
//!   these are interactive transactions, not a durable queue, and the caller
//!   gets its error after a bounded worst-case wait;
//! * **jittered** — each delay is drawn uniformly from `[d/2, d]`, so a fleet
//!   of clients whose retries were synchronised by the failure itself (the
//!   thundering herd) spreads back out.  The jitter source is a tiny
//!   deterministic xorshift generator seeded by the caller — reproducible in
//!   tests, decorrelated in production by seeding from the connection
//!   identity.
//!
//! The type is a plain iterator-style state machine with no clock of its own:
//! callers ask for [`Backoff::next_delay`] and sleep (or schedule) however
//! they like, which keeps it testable without sleeping.

use std::time::Duration;

/// An exhaustible schedule of capped, jittered, exponentially growing delays.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    max_attempts: u32,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A schedule starting at `base`, doubling per attempt, never exceeding
    /// `cap`, exhausted after `max_attempts` delays.  Uses a fixed jitter
    /// seed; prefer [`Backoff::with_seed`] when many clients may retry in
    /// lock-step.
    pub fn new(base: Duration, cap: Duration, max_attempts: u32) -> Self {
        Self::with_seed(base, cap, max_attempts, 0x9E37_79B9_7F4A_7C15)
    }

    /// [`Backoff::new`] with an explicit jitter seed (e.g. a hash of the
    /// connection's port, so concurrent clients spread out).
    pub fn with_seed(base: Duration, cap: Duration, max_attempts: u32, seed: u64) -> Self {
        // splitmix64: spreads adjacent seeds (port 5001 vs 5002) across the
        // whole state space, and never produces the all-zero state xorshift
        // would get stuck in.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Backoff {
            base,
            cap,
            max_attempts,
            attempt: 0,
            rng: (z ^ (z >> 31)) | 1,
        }
    }

    /// The standard retry policy of the client stubs: three delays of roughly
    /// 5 ms / 10 ms / 20 ms (jittered), `seed`-decorrelated.
    pub fn client_default(seed: u64) -> Self {
        Self::with_seed(Duration::from_millis(5), Duration::from_millis(50), 3, seed)
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay to wait before retrying, or `None` when the schedule is
    /// exhausted and the caller should surface its error.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        // base * 2^attempt, saturating, capped.
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        self.attempt += 1;
        let nanos = exp.as_nanos().min(u128::from(u64::MAX)) as u64;
        if nanos == 0 {
            return Some(Duration::ZERO);
        }
        // Uniform in [nanos/2, nanos]: full speed-of-recovery at half the
        // delay, full decorrelation across clients.
        let half = nanos / 2;
        let jittered = half + self.next_rand() % (nanos - half + 1);
        Some(Duration::from_nanos(jittered))
    }

    /// Sleeps for the next delay of the schedule.  Returns `false` (without
    /// sleeping) when the schedule is exhausted.
    pub fn sleep_next(&mut self) -> bool {
        match self.next_delay() {
            Some(d) => {
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
                true
            }
            None => false,
        }
    }

    /// xorshift64*: tiny, fast, plenty for jitter (not for cryptography).
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_within_jitter_bounds_and_respect_the_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(40);
        let mut backoff = Backoff::with_seed(base, cap, 5, 7);
        let mut expected = base;
        for _ in 0..5 {
            let d = backoff.next_delay().expect("schedule not exhausted");
            assert!(
                d >= expected / 2 && d <= expected,
                "delay {d:?} outside [{:?}, {expected:?}]",
                expected / 2
            );
            expected = (expected * 2).min(cap);
        }
        assert_eq!(backoff.next_delay(), None, "schedule exhausts");
        assert_eq!(backoff.attempts(), 5);
    }

    #[test]
    fn same_seed_gives_the_same_schedule_and_different_seeds_decorrelate() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b =
                Backoff::with_seed(Duration::from_millis(8), Duration::from_secs(1), 6, seed);
            std::iter::from_fn(|| b.next_delay()).collect()
        };
        assert_eq!(schedule(42), schedule(42), "deterministic given a seed");
        assert_ne!(
            schedule(42),
            schedule(43),
            "different clients must not retry in lock-step"
        );
    }

    #[test]
    fn zero_base_never_panics() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO, 3);
        for _ in 0..3 {
            assert_eq!(b.next_delay(), Some(Duration::ZERO));
        }
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn sleep_next_reports_exhaustion() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO, 1);
        assert!(b.sleep_next());
        assert!(!b.sleep_next());
    }
}
