//! The on-page representation of a directory.
//!
//! A directory is an ordinary file of the file service whose pages hold a
//! serialized `name → (capability, rights mask)` table:
//!
//! * the **root page** carries a fixed header — magic, format, a monotonically
//!   increasing *generation* bumped by every mutation, the entry count and the
//!   number of entry chunks — and nothing else, so every directory mutation
//!   reads and rewrites the root page and any two concurrent mutations of the
//!   same directory are a read/write conflict the file service's OCC
//!   validation catches;
//! * the **chunk pages** (children `[0] .. [chunk_count)` of the root) hold
//!   the entries themselves, sorted by name and packed greedily up to
//!   [`CHUNK_BUDGET`] bytes per chunk, so a small directory is one page and a
//!   large one stays within the 32 KiB page bound of §5.
//!
//! The codec is deliberately boring: length-prefixed names, one kind byte, one
//! rights byte, and the standard capability wire form.  Everything else —
//! durability, replication, conflict detection — is inherited from the file
//! service underneath.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use amoeba_capability::{Capability, DirCap, Rights, WIRE_SIZE};

use crate::error::{DirError, Result};

/// Magic number at the start of every directory root page (`"ADIR"`).
pub const DIR_MAGIC: u32 = 0x4144_4952;

/// Format version of the directory table codec.
pub const DIR_FORMAT: u16 = 1;

/// Upper bound on the bytes of one entry chunk page; half the 32 KiB page
/// bound, leaving generous headroom for the longest single entry.
pub const CHUNK_BUDGET: usize = 16 * 1024;

/// Longest legal entry name, in bytes.
pub const MAX_NAME_LEN: usize = 255;

/// What a directory entry names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// An ordinary file.
    File,
    /// Another directory (whose capability may be wrapped in a
    /// [`DirCap`]).
    Directory,
}

impl EntryKind {
    /// Wire encoding of the kind.
    pub fn to_u8(self) -> u8 {
        match self {
            EntryKind::File => 0,
            EntryKind::Directory => 1,
        }
    }

    /// Decodes a kind byte.
    pub fn from_u8(v: u8) -> Option<EntryKind> {
        match v {
            0 => Some(EntryKind::File),
            1 => Some(EntryKind::Directory),
            _ => None,
        }
    }
}

/// One directory entry: a name bound to a capability, a rights grant mask and
/// a kind tag.
///
/// The capability is stored exactly as the linker presented it; `mask` records
/// the rights the entry *grants* (`mask ⊆ cap.rights`, enforced at link time).
/// A lookup demanding rights outside the mask is refused, so an entry can hand
/// out less authority than the stored capability carries — attenuation at the
/// naming layer — but never more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// The entry's name within its directory.
    pub name: String,
    /// The capability the name is bound to.
    pub cap: Capability,
    /// The rights this entry grants; at most `cap.rights`.
    pub mask: Rights,
    /// Whether the capability names a file or a directory.
    pub kind: EntryKind,
}

impl DirEntry {
    /// The rights a holder of this entry may actually exercise: the stored
    /// capability's rights attenuated by the grant mask.
    pub fn granted(&self) -> Rights {
        self.cap.rights.attenuate(self.mask)
    }

    /// Interprets the entry as a directory capability, when it is one.
    pub fn as_dir(&self) -> Option<DirCap> {
        match self.kind {
            EntryKind::Directory => Some(DirCap::new(self.cap)),
            EntryKind::File => None,
        }
    }
}

/// Checks that `name` is a legal entry name.
pub fn validate_name(name: &str) -> Result<()> {
    if name.is_empty()
        || name.len() > MAX_NAME_LEN
        || name.contains('/')
        || name == "."
        || name == ".."
    {
        return Err(DirError::InvalidName(name.to_string()));
    }
    Ok(())
}

/// The fixed header stored in a directory's root page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirHeader {
    /// Mutation counter: bumped by every committed directory mutation, so a
    /// cached table can be generation-checked.
    pub generation: u64,
    /// Number of entries in the table.
    pub entry_count: u32,
    /// Number of entry chunk pages below the root.
    pub chunk_count: u32,
}

impl DirHeader {
    /// The header of a freshly created, empty directory.
    pub fn empty() -> Self {
        DirHeader {
            generation: 0,
            entry_count: 0,
            chunk_count: 0,
        }
    }

    /// Serialises the header into root-page data.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(22);
        buf.put_u32_le(DIR_MAGIC);
        buf.put_u16_le(DIR_FORMAT);
        buf.put_u64_le(self.generation);
        buf.put_u32_le(self.entry_count);
        buf.put_u32_le(self.chunk_count);
        buf.freeze()
    }

    /// Deserialises a root page.  Fails when the page does not look like a
    /// directory (e.g. a plain file was linked with kind *directory*).
    pub fn decode(mut data: Bytes) -> Result<DirHeader> {
        if data.remaining() < 22 {
            return Err(DirError::Corrupt("root page too short".into()));
        }
        if data.get_u32_le() != DIR_MAGIC {
            return Err(DirError::Corrupt("bad directory magic".into()));
        }
        let format = data.get_u16_le();
        if format != DIR_FORMAT {
            return Err(DirError::Corrupt(format!(
                "unknown directory format {format}"
            )));
        }
        Ok(DirHeader {
            generation: data.get_u64_le(),
            entry_count: data.get_u32_le(),
            chunk_count: data.get_u32_le(),
        })
    }
}

fn encode_entry(buf: &mut BytesMut, entry: &DirEntry) {
    buf.put_u16_le(entry.name.len() as u16);
    buf.put_slice(entry.name.as_bytes());
    buf.put_u8(entry.kind.to_u8());
    buf.put_u8(entry.mask.bits());
    entry.cap.encode(buf);
}

fn encoded_entry_len(entry: &DirEntry) -> usize {
    2 + entry.name.len() + 2 + WIRE_SIZE
}

fn decode_entry(buf: &mut Bytes) -> Result<DirEntry> {
    let corrupt = || DirError::Corrupt("truncated directory entry".into());
    if buf.remaining() < 2 {
        return Err(corrupt());
    }
    let name_len = buf.get_u16_le() as usize;
    if buf.remaining() < name_len + 2 + WIRE_SIZE {
        return Err(corrupt());
    }
    let name = String::from_utf8(buf.slice(..name_len).to_vec())
        .map_err(|_| DirError::Corrupt("entry name is not UTF-8".into()))?;
    buf.advance(name_len);
    let kind = EntryKind::from_u8(buf.get_u8())
        .ok_or_else(|| DirError::Corrupt("unknown entry kind".into()))?;
    let mask = Rights::from_bits(buf.get_u8());
    let cap = Capability::decode(buf).ok_or_else(corrupt)?;
    Ok(DirEntry {
        name,
        cap,
        mask,
        kind,
    })
}

/// The in-memory form of a directory table: entries sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirTable {
    entries: BTreeMap<String, DirEntry>,
}

impl DirTable {
    /// An empty table.
    pub fn new() -> Self {
        DirTable::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&DirEntry> {
        self.entries.get(name)
    }

    /// Inserts an entry, replacing any previous binding of the name.
    pub fn insert(&mut self, entry: DirEntry) -> Option<DirEntry> {
        self.entries.insert(entry.name.clone(), entry)
    }

    /// Removes an entry by name.
    pub fn remove(&mut self, name: &str) -> Option<DirEntry> {
        self.entries.remove(name)
    }

    /// All entries, sorted by name.
    pub fn entries(&self) -> impl Iterator<Item = &DirEntry> {
        self.entries.values()
    }

    /// Serialises the table into chunk pages: entries in name order, packed
    /// greedily up to [`CHUNK_BUDGET`] bytes per chunk (always at least one
    /// entry per chunk).  An empty table encodes to no chunks.
    pub fn encode_chunks(&self) -> Vec<Bytes> {
        let mut chunks = Vec::new();
        let mut buf = BytesMut::new();
        for entry in self.entries.values() {
            if !buf.is_empty() && buf.len() + encoded_entry_len(entry) > CHUNK_BUDGET {
                chunks.push(std::mem::take(&mut buf).freeze());
            }
            encode_entry(&mut buf, entry);
        }
        if !buf.is_empty() {
            chunks.push(buf.freeze());
        }
        chunks
    }

    /// Deserialises a table from its chunk pages.
    pub fn decode_chunks(chunks: &[Bytes]) -> Result<DirTable> {
        let mut table = DirTable::new();
        for chunk in chunks {
            let mut buf = chunk.clone();
            while buf.has_remaining() {
                let entry = decode_entry(&mut buf)?;
                table.insert(entry);
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_capability::Port;

    fn cap(object: u64, rights: Rights) -> Capability {
        Capability {
            port: Port::from_raw(0xd0c),
            object,
            rights,
            check: object.wrapping_mul(0x9e37),
        }
    }

    fn entry(name: &str, object: u64, kind: EntryKind) -> DirEntry {
        DirEntry {
            name: name.to_string(),
            cap: cap(object, Rights::ALL),
            mask: Rights::READ | Rights::WRITE,
            kind,
        }
    }

    #[test]
    fn header_round_trips_and_rejects_garbage() {
        let header = DirHeader {
            generation: 42,
            entry_count: 7,
            chunk_count: 2,
        };
        assert_eq!(DirHeader::decode(header.encode()).unwrap(), header);
        assert!(matches!(
            DirHeader::decode(Bytes::from_static(b"not a dir page at all")),
            Err(DirError::Corrupt(_))
        ));
        assert!(matches!(
            DirHeader::decode(Bytes::new()),
            Err(DirError::Corrupt(_))
        ));
    }

    #[test]
    fn table_round_trips_sorted() {
        let mut table = DirTable::new();
        for (name, object) in [("zeta", 3), ("alpha", 1), ("mid", 2)] {
            table.insert(entry(name, object, EntryKind::File));
        }
        table.insert(entry("subdir", 9, EntryKind::Directory));
        let chunks = table.encode_chunks();
        assert_eq!(chunks.len(), 1);
        let decoded = DirTable::decode_chunks(&chunks).unwrap();
        assert_eq!(decoded, table);
        let names: Vec<&str> = decoded.entries().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "subdir", "zeta"]);
    }

    #[test]
    fn large_tables_split_into_budgeted_chunks() {
        let mut table = DirTable::new();
        for i in 0..600 {
            table.insert(DirEntry {
                name: format!("{:0>60}", i),
                cap: cap(i as u64, Rights::ALL),
                mask: Rights::READ,
                kind: EntryKind::File,
            });
        }
        let chunks = table.encode_chunks();
        assert!(chunks.len() > 1, "600 wide entries must span chunks");
        assert!(chunks.iter().all(|c| c.len() <= CHUNK_BUDGET));
        assert_eq!(DirTable::decode_chunks(&chunks).unwrap(), table);
    }

    #[test]
    fn truncated_chunks_are_corrupt() {
        let mut table = DirTable::new();
        table.insert(entry("victim", 1, EntryKind::File));
        let chunk = table.encode_chunks().remove(0);
        let truncated = chunk.slice(..chunk.len() - 3);
        assert!(matches!(
            DirTable::decode_chunks(&[truncated]),
            Err(DirError::Corrupt(_))
        ));
    }

    #[test]
    fn entry_grant_is_the_attenuated_rights() {
        let e = DirEntry {
            name: "f".into(),
            cap: cap(1, Rights::READ | Rights::WRITE | Rights::COMMIT),
            mask: Rights::READ | Rights::DESTROY,
            kind: EntryKind::File,
        };
        assert_eq!(e.granted(), Rights::READ);
        assert!(e.as_dir().is_none());
        let d = DirEntry {
            kind: EntryKind::Directory,
            ..e
        };
        assert_eq!(*d.as_dir().unwrap().cap(), d.cap);
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("report.txt").is_ok());
        for bad in ["", ".", "..", "a/b"] {
            assert!(matches!(validate_name(bad), Err(DirError::InvalidName(_))));
        }
        assert!(validate_name(&"x".repeat(256)).is_err());
        assert!(validate_name(&"x".repeat(255)).is_ok());
    }

    #[test]
    fn kind_bytes_round_trip() {
        assert_eq!(
            EntryKind::from_u8(EntryKind::File.to_u8()),
            Some(EntryKind::File)
        );
        assert_eq!(
            EntryKind::from_u8(EntryKind::Directory.to_u8()),
            Some(EntryKind::Directory)
        );
        assert_eq!(EntryKind::from_u8(7), None);
    }
}
