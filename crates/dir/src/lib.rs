//! # afs-dir — the directory service of the Amoeba file service reproduction
//!
//! The paper splits naming from storage: the *file server* manages flat,
//! capability-addressed versioned files, and a separate *directory server*
//! maps human names to capabilities ("a directory server maps names onto
//! capabilities").  This crate is that directory server, built as a **client
//! of our own file service**: every directory is an ordinary file whose pages
//! hold a serialized `name → (capability, rights mask)` table ([`table`]), and
//! every mutation — create, link, unlink, rename, mkdir — is a retrying
//! [`afs_core::FileStoreExt::update`] transaction ([`store`]).
//!
//! Nothing in the durability story is new, and that is the point:
//!
//! * a directory mutation inherits **OCC conflict detection** because it reads
//!   and rewrites the directory's root page, so concurrent mutations of one
//!   directory are exactly the serialisability conflicts §5.2 already handles
//!   by redoing the loser on a fresh version;
//! * it inherits **commit-time durability and the batched flush** (version
//!   page strictly last) because it is just a commit;
//! * it inherits **replication and resync** because the directory's blocks
//!   live on the same replicated block stores as everything else; and
//! * it inherits **sharded placement** because a directory's capability routes
//!   by `amoeba_capability::shard_of` like any file — directories spread over
//!   the shards of a deployment with no extra machinery, and a path's
//!   components may live on different shards.
//!
//! Cross-directory [`DirStore::rename`] is the one genuinely multi-object
//! operation: it runs as two deterministically ordered idempotent OCC
//! transactions (insert at the destination, then remove at the source), so the
//! renamed entry is reachable under at least one name at every point, and any
//! interleaving of retries and concurrent renames converges.
//!
//! The crate is deliberately transport-agnostic: [`DirStore`] works over any
//! [`afs_core::FileStore`] — a local `FileService`, a remote connection, or a
//! sharded router.  The RPC façade (`afs_server::DirServerHandler`) and the
//! path-resolving client with its prefix cache (`afs_client::NamedStore`) are
//! thin layers over this crate.
//!
//! ```
//! use afs_core::FileService;
//! use afs_dir::{DirStore, EntryKind};
//! use amoeba_capability::Rights;
//!
//! let dirs = DirStore::new(FileService::in_memory());
//! let root = dirs.create_root().unwrap();
//! let docs = dirs.mkdir(&root, "docs", Rights::ALL).unwrap();
//! let file = dirs.store().create_file().unwrap();
//! dirs.link(&docs, "paper.txt", file, Rights::READ, EntryKind::File).unwrap();
//! let entry = dirs.lookup(&docs, "paper.txt", Rights::READ).unwrap();
//! assert_eq!(entry.cap, file);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod store;
pub mod table;

pub use error::{DirError, Result};
pub use store::{DirOutcome, DirStore};
pub use table::{
    validate_name, DirEntry, DirHeader, DirTable, EntryKind, CHUNK_BUDGET, DIR_FORMAT, DIR_MAGIC,
    MAX_NAME_LEN,
};

pub use amoeba_capability::DirCap;
