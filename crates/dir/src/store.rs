//! [`DirStore`]: directory operations as OCC transactions over ordinary files.
//!
//! Every mutation — [`DirStore::mkdir`], [`DirStore::link`],
//! [`DirStore::unlink`], [`DirStore::rename`] — runs as one retrying
//! [`FileStoreExt::update`] transaction against the directory's backing file:
//! read the root header and entry chunks, apply the change to the decoded
//! table, bump the generation, write the table back (one batched
//! `write_pages` call), commit.  Because the transaction reads *and* writes
//! the root page, any two concurrent mutations of the same directory are a
//! serialisability conflict the file service detects at commit, and the loser
//! redoes its whole mutation on a fresh version — the same lock-free retry
//! discipline every other update in the system uses.  Durability,
//! replication, batched flushing and sharded placement are inherited wholesale:
//! a directory is just a file.
//!
//! Cross-directory [`DirStore::rename`] is an OCC **multi-object** transaction
//! ordered deterministically: the entry is inserted at the destination first
//! and removed from the source second, each half an idempotent OCC retry loop.
//! No interleaving of crashes, conflicts or concurrent renames can make the
//! entry unreachable — the worst transient state is the entry visible under
//! both names, which the second half resolves.  Same-directory renames are a
//! single commit and therefore atomic outright.

use bytes::Bytes;

use afs_core::{FileStore, FileStoreExt, FsError, PagePath, RetryPolicy};
use amoeba_capability::{Capability, DirCap, Rights};

use crate::error::{DirError, Result};
use crate::table::{validate_name, DirEntry, DirHeader, DirTable, EntryKind};

/// What a committed directory mutation reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirOutcome<T> {
    /// The operation's result value.
    pub value: T,
    /// OCC attempts used across the operation's commits (1 = no conflict; a
    /// cross-directory rename sums the attempts of its two halves, so its
    /// conflict-free baseline is 2).
    pub attempts: usize,
}

/// The directory service over any [`FileStore`].
///
/// `DirStore` holds no directory state of its own — directories live entirely
/// in the files they are stored in, so any number of `DirStore` instances
/// (local or behind different server processes) can operate on the same tree
/// concurrently, coordinated only by the file service's OCC validation.
pub struct DirStore<S: FileStore> {
    store: S,
}

impl<S: FileStore> DirStore<S> {
    /// Wraps a file store with the directory protocol.
    pub fn new(store: S) -> Self {
        DirStore { store }
    }

    /// The underlying file store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Creates a fresh, empty directory file and returns its capability.  Used
    /// for the root of a hierarchy; directories below the root come from
    /// [`DirStore::mkdir`].
    pub fn create_root(&self) -> Result<DirCap> {
        self.create_dir_file()
    }

    fn create_dir_file(&self) -> Result<DirCap> {
        let cap = self.store.create_file()?;
        let version = self.store.create_version(&cap)?;
        self.store
            .write_page(&version, &PagePath::root(), DirHeader::empty().encode())?;
        self.store.commit(&version)?;
        Ok(DirCap::new(cap))
    }

    // ------------------------------------------------------------------
    // The shared OCC mutation loop.
    // ------------------------------------------------------------------

    /// Runs `op` against the decoded table of `dir` inside one retrying update
    /// transaction and writes the mutated table back with a bumped generation.
    ///
    /// `op` may be re-run on a fresh snapshot after a serialisability
    /// conflict, so it must be a pure function of the table it is given.  An
    /// error from `op` aborts the attempt without committing anything.
    pub fn mutate_with<R>(
        &self,
        dir: &DirCap,
        policy: RetryPolicy,
        mut op: impl FnMut(&mut DirTable) -> Result<R>,
    ) -> Result<DirOutcome<R>> {
        let mut dir_err: Option<DirError> = None;
        let committed = self.store.update_with(dir.cap(), policy, |tx| {
            dir_err = None;
            // Abort the attempt, remembering the directory-level error; the
            // sentinel FsError is never surfaced (see the match below).
            macro_rules! bail {
                ($e:expr) => {{
                    dir_err = Some($e);
                    return Err(FsError::WouldBlock);
                }};
            }
            let root = tx.read(&PagePath::root())?;
            let header = match DirHeader::decode(root) {
                Ok(header) => header,
                Err(e) => bail!(e),
            };
            let old_chunks = header.chunk_count as usize;
            let chunk_paths: Vec<PagePath> = (0..old_chunks)
                .map(|i| PagePath::new(vec![i as u16]))
                .collect();
            let chunks = tx.read_many(&chunk_paths)?;
            let mut table = match DirTable::decode_chunks(&chunks) {
                Ok(table) => table,
                Err(e) => bail!(e),
            };
            let value = match op(&mut table) {
                Ok(value) => value,
                Err(e) => bail!(e),
            };
            let new_chunks = table.encode_chunks();
            let new_header = DirHeader {
                generation: header.generation + 1,
                entry_count: table.len() as u32,
                chunk_count: new_chunks.len() as u32,
            };
            // Header and overwritten chunks travel as one batched call; the
            // (rare) chunk-count changes append or trim the tail.
            let mut writes: Vec<(PagePath, Bytes)> = Vec::with_capacity(1 + new_chunks.len());
            writes.push((PagePath::root(), new_header.encode()));
            for (i, chunk) in new_chunks.iter().enumerate().take(old_chunks) {
                writes.push((PagePath::new(vec![i as u16]), chunk.clone()));
            }
            tx.write_many(&writes)?;
            for chunk in new_chunks.iter().skip(old_chunks) {
                tx.append(&PagePath::root(), chunk.clone())?;
            }
            for i in (new_chunks.len()..old_chunks).rev() {
                tx.remove(&PagePath::new(vec![i as u16]))?;
            }
            Ok(value)
        });
        match committed {
            Ok(committed) => Ok(DirOutcome {
                value: committed.value,
                attempts: committed.attempts,
            }),
            Err(e) => Err(dir_err.take().unwrap_or(DirError::Fs(e))),
        }
    }

    // ------------------------------------------------------------------
    // Reads.
    // ------------------------------------------------------------------

    /// Loads the committed header and table of `dir`: one `current_version`
    /// call, the root page, and the chunk pages — a constant number of
    /// operations for any directory that fits its chunks' budget.
    pub fn load_committed(&self, dir: &DirCap) -> Result<(DirHeader, DirTable)> {
        let current = self.store.current_version(dir.cap())?;
        let root = self
            .store
            .read_committed_page(&current, &PagePath::root())?;
        let header = DirHeader::decode(root)?;
        let mut chunks = Vec::with_capacity(header.chunk_count as usize);
        for i in 0..header.chunk_count {
            chunks.push(
                self.store
                    .read_committed_page(&current, &PagePath::new(vec![i as u16]))?,
            );
        }
        Ok((header, DirTable::decode_chunks(&chunks)?))
    }

    /// The directory's current generation (bumped by every mutation).
    pub fn generation(&self, dir: &DirCap) -> Result<u64> {
        let current = self.store.current_version(dir.cap())?;
        let root = self
            .store
            .read_committed_page(&current, &PagePath::root())?;
        Ok(DirHeader::decode(root)?.generation)
    }

    /// Looks up `name` in `dir`, requiring the entry's grant mask to cover
    /// `required`.  An entry can grant *fewer* rights than the capability it
    /// stores carries (attenuation at the naming layer), never more.
    pub fn lookup(&self, dir: &DirCap, name: &str, required: Rights) -> Result<DirEntry> {
        validate_name(name)?;
        let (_, table) = self.load_committed(dir)?;
        let entry = table
            .get(name)
            .cloned()
            .ok_or_else(|| DirError::NotFound(name.to_string()))?;
        if !entry.mask.contains(required) {
            return Err(DirError::InsufficientGrant);
        }
        Ok(entry)
    }

    /// Looks up `name` without demanding any rights.
    pub fn lookup_any(&self, dir: &DirCap, name: &str) -> Result<DirEntry> {
        self.lookup(dir, name, Rights::NONE)
    }

    /// All entries of `dir`, sorted by name.
    pub fn read_dir(&self, dir: &DirCap) -> Result<Vec<DirEntry>> {
        let (_, table) = self.load_committed(dir)?;
        Ok(table.entries().cloned().collect())
    }

    // ------------------------------------------------------------------
    // Mutations.
    // ------------------------------------------------------------------

    /// Creates a new empty directory and links it into `parent` under `name`
    /// with grant mask `mask`.  Default retry policy.
    pub fn mkdir(&self, parent: &DirCap, name: &str, mask: Rights) -> Result<DirCap> {
        self.mkdir_with(parent, name, mask, RetryPolicy::default())
            .map(|o| o.value)
    }

    /// [`DirStore::mkdir`] with an explicit retry policy.
    ///
    /// The child's backing file is created *before* the parent link commits;
    /// if the link loses (e.g. the name is taken), the orphaned empty file is
    /// left for the file service's garbage collection and the error reports
    /// the link failure.
    pub fn mkdir_with(
        &self,
        parent: &DirCap,
        name: &str,
        mask: Rights,
        policy: RetryPolicy,
    ) -> Result<DirOutcome<DirCap>> {
        validate_name(name)?;
        let child = self.create_dir_file()?;
        let cap = child.into_cap();
        let entry = DirEntry {
            name: name.to_string(),
            cap,
            mask,
            kind: EntryKind::Directory,
        };
        let outcome = self.link_entry(parent, entry, policy)?;
        Ok(DirOutcome {
            value: DirCap::new(cap),
            attempts: outcome.attempts,
        })
    }

    /// Binds `name` in `dir` to `cap` with grant mask `mask`.  Default retry
    /// policy.
    pub fn link(
        &self,
        dir: &DirCap,
        name: &str,
        cap: Capability,
        mask: Rights,
        kind: EntryKind,
    ) -> Result<()> {
        self.link_with(dir, name, cap, mask, kind, RetryPolicy::default())
            .map(|o| o.value)
    }

    /// [`DirStore::link`] with an explicit retry policy.  Fails with
    /// [`DirError::AlreadyExists`] when the name is bound to a *different*
    /// object; re-linking the identical entry is an idempotent no-op (which is
    /// what makes replayed rename halves safe).  The grant `mask` must not
    /// exceed the stored capability's rights.
    pub fn link_with(
        &self,
        dir: &DirCap,
        name: &str,
        cap: Capability,
        mask: Rights,
        kind: EntryKind,
        policy: RetryPolicy,
    ) -> Result<DirOutcome<()>> {
        validate_name(name)?;
        let entry = DirEntry {
            name: name.to_string(),
            cap,
            mask,
            kind,
        };
        self.link_entry(dir, entry, policy)
    }

    fn link_entry(
        &self,
        dir: &DirCap,
        entry: DirEntry,
        policy: RetryPolicy,
    ) -> Result<DirOutcome<()>> {
        if !entry.cap.rights.contains(entry.mask) {
            return Err(DirError::InsufficientGrant);
        }
        self.mutate_with(dir, policy, |table| {
            match table.get(&entry.name) {
                Some(existing) if *existing == entry => Ok(()), // idempotent re-link
                Some(_) => Err(DirError::AlreadyExists(entry.name.clone())),
                None => {
                    table.insert(entry.clone());
                    Ok(())
                }
            }
        })
    }

    /// Removes the binding of `name` from `dir` and returns the removed entry.
    /// Default retry policy.
    pub fn unlink(&self, dir: &DirCap, name: &str) -> Result<DirEntry> {
        self.unlink_with(dir, name, RetryPolicy::default())
            .map(|o| o.value)
    }

    /// [`DirStore::unlink`] with an explicit retry policy.  Unlinking a
    /// directory entry whose directory still holds entries fails with
    /// [`DirError::NotEmpty`]; the check reads the child's committed table
    /// outside the parent's transaction, so it is best-effort under races (a
    /// concurrent link into the child can slip past it).
    pub fn unlink_with(
        &self,
        dir: &DirCap,
        name: &str,
        policy: RetryPolicy,
    ) -> Result<DirOutcome<DirEntry>> {
        validate_name(name)?;
        if let Ok(entry) = self.lookup_any(dir, name) {
            if let Some(child) = entry.as_dir() {
                if let Ok((header, _)) = self.load_committed(&child) {
                    if header.entry_count > 0 {
                        return Err(DirError::NotEmpty(name.to_string()));
                    }
                }
            }
        }
        self.mutate_with(dir, policy, |table| {
            table
                .remove(name)
                .ok_or_else(|| DirError::NotFound(name.to_string()))
        })
    }

    /// Renames `from` in `src` to `to` in `dst`.  Default retry policy.
    pub fn rename(&self, src: &DirCap, from: &str, dst: &DirCap, to: &str) -> Result<()> {
        self.rename_with(src, from, dst, to, RetryPolicy::default())
            .map(|o| o.value)
    }

    /// [`DirStore::rename_with`]: the OCC rename.
    ///
    /// * **Same directory** — one commit: the entry is rebound atomically, so
    ///   no observer ever sees the name half-moved, and concurrent renames of
    ///   sibling entries serialise through OCC retry without losing either.
    /// * **Cross-directory** — two commits in a deterministic order: insert at
    ///   the destination *first*, remove from the source *second*.  Both
    ///   halves are idempotent (re-linking the identical entry and removing an
    ///   already-removed entry are no-ops), so any retry, crash or concurrent
    ///   completion converges; the entry is reachable under at least one name
    ///   at every intermediate point.
    ///
    /// Fails with [`DirError::AlreadyExists`] when `to` is bound to a
    /// different object, changing nothing.
    pub fn rename_with(
        &self,
        src: &DirCap,
        from: &str,
        dst: &DirCap,
        to: &str,
        policy: RetryPolicy,
    ) -> Result<DirOutcome<()>> {
        validate_name(from)?;
        validate_name(to)?;
        let same_dir = src.cap().port == dst.cap().port && src.cap().object == dst.cap().object;
        if same_dir {
            return self.mutate_with(src, policy, |table| {
                let entry = table
                    .get(from)
                    .cloned()
                    .ok_or_else(|| DirError::NotFound(from.to_string()))?;
                if from == to {
                    return Ok(());
                }
                match table.get(to) {
                    Some(existing) if existing.cap == entry.cap => {}
                    Some(_) => return Err(DirError::AlreadyExists(to.to_string())),
                    None => {}
                }
                table.remove(from);
                table.insert(DirEntry {
                    name: to.to_string(),
                    ..entry
                });
                Ok(())
            });
        }

        let entry = self.lookup_any(src, from)?;
        let moved = DirEntry {
            name: to.to_string(),
            ..entry.clone()
        };
        // Phase 1: make the entry reachable at the destination.
        let inserted = self.link_entry(dst, moved, policy)?;
        // Phase 2: retire the source name — but only while it still names the
        // moved object; if a concurrent mutation rebound or removed it, the
        // removal is already done from this rename's point of view.
        let removed = self.mutate_with(src, policy, |table| {
            if let Some(existing) = table.get(from) {
                if existing.cap == entry.cap {
                    table.remove(from);
                }
            }
            Ok(())
        })?;
        Ok(DirOutcome {
            value: (),
            attempts: inserted.attempts + removed.attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_core::FileService;
    use std::sync::Arc;

    fn dir_store() -> DirStore<Arc<FileService>> {
        DirStore::new(FileService::in_memory())
    }

    fn file_cap(dirs: &DirStore<Arc<FileService>>) -> Capability {
        dirs.store().create_file().unwrap()
    }

    #[test]
    fn mkdir_link_lookup_readdir_round_trip() {
        let dirs = dir_store();
        let root = dirs.create_root().unwrap();
        let sub = dirs.mkdir(&root, "projects", Rights::ALL).unwrap();
        let file = file_cap(&dirs);
        dirs.link(
            &sub,
            "report",
            file,
            Rights::READ | Rights::WRITE,
            EntryKind::File,
        )
        .unwrap();

        let entry = dirs.lookup(&sub, "report", Rights::READ).unwrap();
        assert_eq!(entry.cap, file);
        assert_eq!(entry.kind, EntryKind::File);

        let listed = dirs.read_dir(&root).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "projects");
        assert_eq!(listed[0].as_dir().unwrap(), sub);

        // Sorted listing.
        dirs.link(
            &sub,
            "aardvark",
            file_cap(&dirs),
            Rights::READ,
            EntryKind::File,
        )
        .unwrap();
        let names: Vec<String> = dirs
            .read_dir(&sub)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["aardvark", "report"]);
    }

    #[test]
    fn lookup_enforces_the_grant_mask() {
        let dirs = dir_store();
        let root = dirs.create_root().unwrap();
        let file = file_cap(&dirs);
        dirs.link(&root, "ro", file, Rights::READ, EntryKind::File)
            .unwrap();
        assert!(dirs.lookup(&root, "ro", Rights::READ).is_ok());
        assert_eq!(
            dirs.lookup(&root, "ro", Rights::WRITE).unwrap_err(),
            DirError::InsufficientGrant
        );
        // The mask cannot exceed the stored capability's rights.
        let weak = Capability {
            rights: Rights::READ,
            ..file
        };
        assert_eq!(
            dirs.link(
                &root,
                "bad",
                weak,
                Rights::READ | Rights::WRITE,
                EntryKind::File
            )
            .unwrap_err(),
            DirError::InsufficientGrant
        );
    }

    #[test]
    fn duplicate_names_are_rejected_but_identical_relinks_are_idempotent() {
        let dirs = dir_store();
        let root = dirs.create_root().unwrap();
        let file = file_cap(&dirs);
        dirs.link(&root, "x", file, Rights::READ, EntryKind::File)
            .unwrap();
        // Identical re-link: fine (replayed rename halves rely on this).
        dirs.link(&root, "x", file, Rights::READ, EntryKind::File)
            .unwrap();
        // Different object under the same name: rejected.
        assert_eq!(
            dirs.link(&root, "x", file_cap(&dirs), Rights::READ, EntryKind::File)
                .unwrap_err(),
            DirError::AlreadyExists("x".into())
        );
        assert_eq!(dirs.read_dir(&root).unwrap().len(), 1);
    }

    #[test]
    fn unlink_removes_and_protects_non_empty_directories() {
        let dirs = dir_store();
        let root = dirs.create_root().unwrap();
        let sub = dirs.mkdir(&root, "sub", Rights::ALL).unwrap();
        dirs.link(&sub, "f", file_cap(&dirs), Rights::READ, EntryKind::File)
            .unwrap();
        assert_eq!(
            dirs.unlink(&root, "sub").unwrap_err(),
            DirError::NotEmpty("sub".into())
        );
        dirs.unlink(&sub, "f").unwrap();
        let removed = dirs.unlink(&root, "sub").unwrap();
        assert_eq!(removed.as_dir().unwrap(), sub);
        assert_eq!(
            dirs.unlink(&root, "sub").unwrap_err(),
            DirError::NotFound("sub".into())
        );
    }

    #[test]
    fn same_directory_rename_is_atomic_and_checks_the_target() {
        let dirs = dir_store();
        let root = dirs.create_root().unwrap();
        let a = file_cap(&dirs);
        let b = file_cap(&dirs);
        dirs.link(&root, "a", a, Rights::READ, EntryKind::File)
            .unwrap();
        dirs.link(&root, "b", b, Rights::READ, EntryKind::File)
            .unwrap();
        dirs.rename(&root, "a", &root, "c").unwrap();
        assert_eq!(dirs.lookup_any(&root, "c").unwrap().cap, a);
        assert!(matches!(
            dirs.lookup_any(&root, "a").unwrap_err(),
            DirError::NotFound(_)
        ));
        // Renaming onto an existing different binding is refused whole.
        assert_eq!(
            dirs.rename(&root, "c", &root, "b").unwrap_err(),
            DirError::AlreadyExists("b".into())
        );
        assert_eq!(dirs.lookup_any(&root, "c").unwrap().cap, a);
        assert_eq!(dirs.lookup_any(&root, "b").unwrap().cap, b);
    }

    #[test]
    fn cross_directory_rename_moves_the_entry() {
        let dirs = dir_store();
        let root = dirs.create_root().unwrap();
        let src = dirs.mkdir(&root, "src", Rights::ALL).unwrap();
        let dst = dirs.mkdir(&root, "dst", Rights::ALL).unwrap();
        let file = file_cap(&dirs);
        dirs.link(&src, "f", file, Rights::READ, EntryKind::File)
            .unwrap();
        dirs.rename(&src, "f", &dst, "g").unwrap();
        assert_eq!(dirs.lookup_any(&dst, "g").unwrap().cap, file);
        assert!(matches!(
            dirs.lookup_any(&src, "f").unwrap_err(),
            DirError::NotFound(_)
        ));
        // Replaying the same rename converges without error or duplication.
        assert!(matches!(
            dirs.rename(&src, "f", &dst, "g").unwrap_err(),
            DirError::NotFound(_)
        ));
        assert_eq!(dirs.read_dir(&dst).unwrap().len(), 1);
    }

    #[test]
    fn mutations_bump_the_generation() {
        let dirs = dir_store();
        let root = dirs.create_root().unwrap();
        assert_eq!(dirs.generation(&root).unwrap(), 0);
        dirs.link(&root, "f", file_cap(&dirs), Rights::READ, EntryKind::File)
            .unwrap();
        assert_eq!(dirs.generation(&root).unwrap(), 1);
        dirs.unlink(&root, "f").unwrap();
        assert_eq!(dirs.generation(&root).unwrap(), 2);
    }

    #[test]
    fn a_plain_file_is_not_a_directory() {
        let dirs = dir_store();
        let file = file_cap(&dirs);
        let bogus = DirCap::new(file);
        assert!(matches!(
            dirs.read_dir(&bogus).unwrap_err(),
            DirError::Corrupt(_)
        ));
        assert!(matches!(
            dirs.link(&bogus, "x", file, Rights::READ, EntryKind::File)
                .unwrap_err(),
            DirError::Corrupt(_)
        ));
    }

    #[test]
    fn large_directories_spill_into_chunks_and_survive_mutation() {
        let dirs = dir_store();
        let root = dirs.create_root().unwrap();
        let file = file_cap(&dirs);
        for i in 0..400 {
            dirs.link(
                &root,
                &format!("{:0>60}", i),
                file,
                Rights::READ,
                EntryKind::File,
            )
            .unwrap();
        }
        let (header, table) = dirs.load_committed(&root).unwrap();
        assert!(header.chunk_count > 1, "400 wide entries must span chunks");
        assert_eq!(table.len(), 400);
        // Shrink back below one chunk: tail chunk pages are removed.
        for i in 0..399 {
            dirs.unlink(&root, &format!("{:0>60}", i)).unwrap();
        }
        let (header, table) = dirs.load_committed(&root).unwrap();
        assert_eq!(header.chunk_count, 1);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn concurrent_links_into_one_directory_all_commit() {
        let dirs = Arc::new(dir_store());
        let root = dirs.create_root().unwrap();
        let threads = 4;
        let per_thread = 8;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let dirs = Arc::clone(&dirs);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let file = dirs.store().create_file().unwrap();
                        dirs.link_with(
                            &root,
                            &format!("t{t}_{i}"),
                            file,
                            Rights::READ,
                            EntryKind::File,
                            RetryPolicy::with_max_attempts(10_000),
                        )
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(
            dirs.read_dir(&root).unwrap().len(),
            threads * per_thread,
            "no link may be lost under contention"
        );
    }
}
