//! The directory-service error type.

use std::error::Error;
use std::fmt;

use afs_core::FsError;

/// Errors returned by the directory service.
///
/// Directory state lives in ordinary files of the file service, so every
/// operation can also fail with a file-service error; those travel in the
/// [`DirError::Fs`] variant unchanged (including
/// [`FsError::SerialisabilityConflict`] when an OCC retry budget is
/// exhausted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirError {
    /// No entry with this name exists in the directory.
    NotFound(String),
    /// An entry with this name already exists (and names a different object).
    AlreadyExists(String),
    /// The entry exists but does not name a directory.
    NotADirectory(String),
    /// The name is not a legal entry name (empty, too long, contains `/`, or
    /// one of the reserved names `.` / `..`).
    InvalidName(String),
    /// The entry's rights mask does not cover the rights the caller asked for
    /// (lookup), or the mask exceeds the stored capability's rights (link).
    InsufficientGrant,
    /// The directory still holds entries and cannot be unlinked.
    NotEmpty(String),
    /// The file's pages do not decode as a directory table.
    Corrupt(String),
    /// The underlying file service failed.
    Fs(FsError),
}

impl fmt::Display for DirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirError::NotFound(name) => write!(f, "no entry named {name:?}"),
            DirError::AlreadyExists(name) => write!(f, "entry {name:?} already exists"),
            DirError::NotADirectory(name) => write!(f, "entry {name:?} is not a directory"),
            DirError::InvalidName(name) => write!(f, "illegal entry name {name:?}"),
            DirError::InsufficientGrant => write!(f, "rights mask does not cover the request"),
            DirError::NotEmpty(name) => write!(f, "directory {name:?} is not empty"),
            DirError::Corrupt(msg) => write!(f, "corrupt directory table: {msg}"),
            DirError::Fs(e) => write!(f, "file service error: {e}"),
        }
    }
}

impl Error for DirError {}

impl From<FsError> for DirError {
    fn from(e: FsError) -> Self {
        DirError::Fs(e)
    }
}

/// Result alias for directory-service operations.
pub type Result<T> = std::result::Result<T, DirError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_errors_convert_and_display() {
        let e = DirError::from(FsError::NoSuchFile);
        assert_eq!(e, DirError::Fs(FsError::NoSuchFile));
        assert!(e.to_string().contains("no such file"));
        assert!(DirError::NotFound("x".into()).to_string().contains("x"));
    }
}
