//! Write-once block store: the "optical disk" of §6.
//!
//! The paper argues that the version mechanism makes the Amoeba File Service
//! "eminently suitable for a file system on write-once media, such as optical disks",
//! because committed pages are never overwritten — only the version page at the very
//! top is updated in place, and that page lives on magnetic media.
//!
//! [`WriteOnceStore`] wraps any [`BlockStore`] and enforces write-once semantics:
//! a block may be written exactly once after allocation; later writes fail with
//! [`BlockError::WriteOnce`].  Frees do not reclaim space (the medium cannot be
//! erased); they only mark the block as logically dead so the space-accounting
//! experiment (E14) can report how much of the medium is garbage.
//!
//! The batched commit flush is served natively: `write_batch` checks and
//! reserves every slot in one pass under one lock and forwards the whole batch
//! to the inner store's native `write_batch`, so a k-page commit over optical
//! media is still one physical write call (one `StoreStats::write_calls`
//! tick), comparable with the magnetic stores in the benches.

use std::collections::HashSet;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::store::{BlockStore, StoreStats};
use crate::{BlockError, BlockNr, Result};

/// A wrapper enforcing write-once-read-many semantics over an inner store.
#[derive(Debug)]
pub struct WriteOnceStore<S> {
    inner: S,
    written: Mutex<HashSet<BlockNr>>,
    dead: Mutex<HashSet<BlockNr>>,
}

impl<S: BlockStore> WriteOnceStore<S> {
    /// Wraps `inner` as write-once media.
    pub fn new(inner: S) -> Self {
        WriteOnceStore {
            inner,
            written: Mutex::new(HashSet::new()),
            dead: Mutex::new(HashSet::new()),
        }
    }

    /// Number of blocks that were written and later freed: unreclaimable garbage on
    /// the write-once medium.
    pub fn dead_blocks(&self) -> usize {
        self.dead.lock().len()
    }

    /// Number of blocks ever written to the medium.
    pub fn written_blocks(&self) -> usize {
        self.written.lock().len()
    }

    /// Returns a reference to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: BlockStore> BlockStore for WriteOnceStore<S> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn allocate(&self) -> Result<BlockNr> {
        self.inner.allocate()
    }

    fn allocate_at(&self, nr: BlockNr) -> Result<()> {
        self.inner.allocate_at(nr)
    }

    fn free(&self, nr: BlockNr) -> Result<()> {
        // The medium cannot reclaim the space; record the block as dead but keep the
        // data (a real optical jukebox would too).
        if self.written.lock().contains(&nr) {
            self.dead.lock().insert(nr);
            Ok(())
        } else {
            self.inner.free(nr)
        }
    }

    fn read(&self, nr: BlockNr) -> Result<Bytes> {
        self.inner.read(nr)
    }

    fn write(&self, nr: BlockNr, data: Bytes) -> Result<()> {
        {
            let mut written = self.written.lock();
            if written.contains(&nr) {
                return Err(BlockError::WriteOnce(nr));
            }
            // Reserve the write slot before performing it so concurrent writers to the
            // same block cannot both succeed.
            written.insert(nr);
        }
        match self.inner.write(nr, data) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.written.lock().remove(&nr);
                Err(e)
            }
        }
    }

    fn write_batch(&self, writes: &[(BlockNr, Bytes)]) -> Result<()> {
        // Native single-pass batch: check every entry against the burn ledger
        // (and against the rest of the batch) under one lock, reserve all the
        // slots, then hand the whole batch to the inner store's own
        // `write_batch` — so a commit flush over optical media still costs one
        // physical write call, counted once in `StoreStats::write_calls` by
        // the inner store, and bench comparisons against magnetic disks are
        // fair.  A violation anywhere rejects the batch before anything is
        // burned.
        {
            let mut written = self.written.lock();
            let mut in_batch = HashSet::with_capacity(writes.len());
            for (nr, _) in writes {
                if written.contains(nr) || !in_batch.insert(*nr) {
                    return Err(BlockError::WriteOnce(*nr));
                }
            }
            written.extend(in_batch);
        }
        match self.inner.write_batch(writes) {
            Ok(()) => Ok(()),
            Err(e) => {
                // UNLIKE the single-write rule, a failed batch keeps every
                // slot burned.  A single `write` is atomic — on error nothing
                // reached the medium, so the slot can be released.  A batch is
                // applied in order, and an error means some unknown *prefix*
                // is already durable; releasing those slots would let a later
                // write hit a burned block twice, the one unrecoverable
                // mistake on write-once media.  The unburned remainder is
                // bounded garbage, the same kind `dead_blocks` accounts for.
                Err(e)
            }
        }
    }

    fn is_allocated(&self, nr: BlockNr) -> bool {
        self.inner.is_allocated(nr)
    }

    fn allocated_count(&self) -> usize {
        self.inner.allocated_count()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn allocated_blocks(&self) -> Vec<BlockNr> {
        self.inner.allocated_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn first_write_succeeds_second_fails() {
        let store = WriteOnceStore::new(MemStore::new());
        let nr = store.allocate().unwrap();
        store.write(nr, Bytes::from_static(b"burned")).unwrap();
        assert_eq!(
            store.write(nr, Bytes::from_static(b"again")),
            Err(BlockError::WriteOnce(nr))
        );
        assert_eq!(store.read(nr).unwrap(), Bytes::from_static(b"burned"));
    }

    #[test]
    fn failed_write_does_not_burn_the_slot() {
        let store = WriteOnceStore::new(MemStore::with_block_size(4));
        let nr = store.allocate().unwrap();
        assert!(store.write(nr, Bytes::from(vec![0u8; 10])).is_err());
        // The oversized write failed, so a correct one may still proceed.
        store.write(nr, Bytes::from_static(b"ok")).unwrap();
    }

    #[test]
    fn free_of_written_block_marks_it_dead_but_keeps_data() {
        let store = WriteOnceStore::new(MemStore::new());
        let nr = store.allocate().unwrap();
        store.write(nr, Bytes::from_static(b"old version")).unwrap();
        store.free(nr).unwrap();
        assert_eq!(store.dead_blocks(), 1);
        // Data is still on the medium.
        assert_eq!(store.read(nr).unwrap(), Bytes::from_static(b"old version"));
    }

    #[test]
    fn free_of_never_written_block_passes_through() {
        let store = WriteOnceStore::new(MemStore::new());
        let nr = store.allocate().unwrap();
        store.free(nr).unwrap();
        assert!(!store.is_allocated(nr));
        assert_eq!(store.dead_blocks(), 0);
    }

    #[test]
    fn native_write_batch_burns_all_blocks_in_one_call() {
        let store = WriteOnceStore::new(MemStore::new());
        let blocks: Vec<BlockNr> = (0..8).map(|_| store.allocate().unwrap()).collect();
        let batch: Vec<(BlockNr, Bytes)> = blocks
            .iter()
            .map(|&nr| (nr, Bytes::from(vec![nr as u8; 16])))
            .collect();
        let before = store.stats();
        store.write_batch(&batch).unwrap();
        let delta = store.stats().since(&before);
        assert_eq!(delta.writes, 8, "every block of the batch is written");
        assert_eq!(
            delta.write_calls, 1,
            "the batch must reach the medium as ONE physical write call"
        );
        assert_eq!(store.written_blocks(), 8);
        for &nr in &blocks {
            assert_eq!(store.read(nr).unwrap(), Bytes::from(vec![nr as u8; 16]));
        }
    }

    #[test]
    fn a_batch_touching_a_burned_block_is_rejected_whole() {
        let store = WriteOnceStore::new(MemStore::new());
        let burned = store.allocate().unwrap();
        let fresh = store.allocate().unwrap();
        store.write(burned, Bytes::from_static(b"old")).unwrap();
        let before = store.stats();
        assert_eq!(
            store.write_batch(&[
                (fresh, Bytes::from_static(b"new")),
                (burned, Bytes::from_static(b"overwrite")),
            ]),
            Err(BlockError::WriteOnce(burned))
        );
        // Nothing was burned or written: the fresh block is still writable.
        assert_eq!(store.stats().since(&before).writes, 0);
        assert_eq!(store.written_blocks(), 1);
        store.write(fresh, Bytes::from_static(b"ok")).unwrap();
    }

    #[test]
    fn a_batch_writing_one_block_twice_is_rejected() {
        let store = WriteOnceStore::new(MemStore::new());
        let nr = store.allocate().unwrap();
        assert_eq!(
            store.write_batch(&[
                (nr, Bytes::from_static(b"first")),
                (nr, Bytes::from_static(b"second")),
            ]),
            Err(BlockError::WriteOnce(nr))
        );
        // The duplicate never reserved the slot: a clean write still works.
        store.write(nr, Bytes::from_static(b"ok")).unwrap();
    }

    #[test]
    fn failed_batches_keep_their_slots_burned() {
        let store = WriteOnceStore::new(MemStore::with_block_size(4));
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        // The second entry is oversized: the inner store rejects it mid-batch,
        // AFTER durably applying the first entry (in-order application).
        assert!(store
            .write_batch(&[
                (a, Bytes::from_static(b"ok")),
                (b, Bytes::from(vec![0u8; 10])),
            ])
            .is_err());
        // The wrapper cannot know which prefix (if any) reached the medium —
        // an in-memory inner store applies none, a disk mid-batch may have
        // applied some — so every slot stays burned: re-writing block `a`
        // could be a second physical write to write-once media.
        assert_eq!(
            store.write(a, Bytes::from_static(b"again")),
            Err(BlockError::WriteOnce(a))
        );
        assert_eq!(
            store.write(b, Bytes::from_static(b"b")),
            Err(BlockError::WriteOnce(b))
        );
    }

    #[test]
    fn written_block_count_accumulates() {
        let store = WriteOnceStore::new(MemStore::new());
        for i in 0..5 {
            let nr = store.allocate().unwrap();
            store.write(nr, Bytes::from(vec![i as u8])).unwrap();
        }
        assert_eq!(store.written_blocks(), 5);
    }
}
