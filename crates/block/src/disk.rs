//! File-backed block store: the "large slow magnetic disk" of §4.
//!
//! Blocks live at fixed offsets in a single backing file, preceded by a small header
//! carrying the payload length and a checksum.  A write is made atomic at the level
//! the paper needs (block granularity) by writing the payload first and the header
//! last; if the process dies in between, the header still describes the old payload
//! length of zero or the write simply never happened from the reader's point of view —
//! a torn write is detected via the checksum and reported as corruption.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::store::{BlockStore, StoreStats};
use crate::{BlockError, BlockNr, Result};

/// Per-block on-disk header: length (4 bytes) + checksum (8 bytes) + allocated flag.
const HEADER_SIZE: usize = 4 + 8 + 1;

/// A simple FNV-1a checksum over the block payload.
fn checksum(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Debug)]
struct Inner {
    file: File,
    allocated: Vec<bool>,
    stats: StoreStats,
}

/// A block store backed by a file on the host filesystem.
///
/// The store pre-sizes its allocation table to `capacity` blocks; the backing file
/// grows lazily as blocks are written.
#[derive(Debug)]
pub struct FileStore {
    block_size: usize,
    capacity: usize,
    sync_writes: bool,
    inner: Mutex<Inner>,
}

impl FileStore {
    /// Creates (or truncates) a file-backed store at `path`.
    ///
    /// `sync_writes` controls whether every block write is followed by `fsync`; the
    /// paper requires the acknowledgement to be returned only once the block is on
    /// disk, but the benchmarks also run with `sync_writes = false` to factor the host
    /// filesystem out of algorithmic comparisons.
    pub fn create(
        path: impl AsRef<Path>,
        block_size: usize,
        capacity: usize,
        sync_writes: bool,
    ) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore {
            block_size,
            capacity,
            sync_writes,
            inner: Mutex::new(Inner {
                file,
                allocated: vec![false; capacity],
                stats: StoreStats::default(),
            }),
        })
    }

    fn slot_size(&self) -> u64 {
        (HEADER_SIZE + self.block_size) as u64
    }

    fn offset(&self, nr: BlockNr) -> u64 {
        u64::from(nr) * self.slot_size()
    }

    fn check_nr(&self, nr: BlockNr) -> Result<()> {
        if (nr as usize) < self.capacity {
            Ok(())
        } else {
            Err(BlockError::NoSuchBlock(nr))
        }
    }

    /// The careful-write body shared by `write` and `write_batch`: payload
    /// first, header last, no sync and no stats (the caller counts the whole
    /// call once it has fully succeeded, so a mid-call failure never skews the
    /// writes/write_calls ratio).  The caller holds the lock and has validated
    /// the block number, allocation and size.
    fn write_slot(&self, inner: &mut Inner, nr: BlockNr, data: &Bytes) -> Result<()> {
        let off = self.offset(nr);
        // Payload first, header last: the header flips the block to the new contents
        // in one small write.
        inner.file.seek(SeekFrom::Start(off + HEADER_SIZE as u64))?;
        inner.file.write_all(data)?;
        let mut header = [0u8; HEADER_SIZE];
        header[0..4].copy_from_slice(&(data.len() as u32).to_le_bytes());
        header[4..12].copy_from_slice(&checksum(data).to_le_bytes());
        header[12] = 1;
        inner.file.seek(SeekFrom::Start(off))?;
        inner.file.write_all(&header)?;
        Ok(())
    }
}

impl BlockStore for FileStore {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn allocate(&self) -> Result<BlockNr> {
        let mut inner = self.inner.lock();
        let nr = inner
            .allocated
            .iter()
            .position(|&a| !a)
            .ok_or(BlockError::Full)? as BlockNr;
        inner.allocated[nr as usize] = true;
        inner.stats.allocations += 1;
        Ok(nr)
    }

    fn allocate_at(&self, nr: BlockNr) -> Result<()> {
        self.check_nr(nr)?;
        let mut inner = self.inner.lock();
        if inner.allocated[nr as usize] {
            return Err(BlockError::AlreadyAllocated(nr));
        }
        inner.allocated[nr as usize] = true;
        inner.stats.allocations += 1;
        Ok(())
    }

    fn free(&self, nr: BlockNr) -> Result<()> {
        self.check_nr(nr)?;
        let mut inner = self.inner.lock();
        if !inner.allocated[nr as usize] {
            return Err(BlockError::NoSuchBlock(nr));
        }
        inner.allocated[nr as usize] = false;
        // Zero the header so a later read of a re-allocated block sees empty contents.
        let off = self.offset(nr);
        inner.file.seek(SeekFrom::Start(off))?;
        inner.file.write_all(&[0u8; HEADER_SIZE])?;
        inner.stats.frees += 1;
        Ok(())
    }

    fn read(&self, nr: BlockNr) -> Result<Bytes> {
        self.check_nr(nr)?;
        let mut inner = self.inner.lock();
        if !inner.allocated[nr as usize] {
            return Err(BlockError::NoSuchBlock(nr));
        }
        let off = self.offset(nr);
        let file_len = inner.file.metadata()?.len();
        if off + HEADER_SIZE as u64 > file_len {
            // Never written: empty block.
            inner.stats.reads += 1;
            return Ok(Bytes::new());
        }
        inner.file.seek(SeekFrom::Start(off))?;
        let mut header = [0u8; HEADER_SIZE];
        inner.file.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let stored_sum = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let written_flag = header[12];
        if written_flag == 0 {
            inner.stats.reads += 1;
            return Ok(Bytes::new());
        }
        if len > self.block_size {
            return Err(BlockError::Corrupted(nr));
        }
        let mut data = vec![0u8; len];
        inner.file.read_exact(&mut data)?;
        if checksum(&data) != stored_sum {
            return Err(BlockError::Corrupted(nr));
        }
        inner.stats.reads += 1;
        inner.stats.bytes_read += len as u64;
        Ok(Bytes::from(data))
    }

    fn write(&self, nr: BlockNr, data: Bytes) -> Result<()> {
        self.check_nr(nr)?;
        if data.len() > self.block_size {
            return Err(BlockError::TooLarge {
                got: data.len(),
                max: self.block_size,
            });
        }
        let mut inner = self.inner.lock();
        if !inner.allocated[nr as usize] {
            return Err(BlockError::NoSuchBlock(nr));
        }
        self.write_slot(&mut inner, nr, &data)?;
        if self.sync_writes {
            inner.file.sync_data()?;
        }
        inner.stats.writes += 1;
        inner.stats.write_calls += 1;
        inner.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn write_batch(&self, writes: &[(BlockNr, Bytes)]) -> Result<()> {
        // Validate every entry before touching the disk, then scatter all the
        // slots and pay for a single `fsync` at the end — the scatter-gather
        // win a per-block loop cannot have.  Slots are written in entry order,
        // so a crash mid-batch leaves a prefix applied (children before
        // parents, by the flush discipline of the caller).
        for (nr, data) in writes {
            self.check_nr(*nr)?;
            if data.len() > self.block_size {
                return Err(BlockError::TooLarge {
                    got: data.len(),
                    max: self.block_size,
                });
            }
        }
        let mut inner = self.inner.lock();
        for (nr, _) in writes {
            if !inner.allocated[*nr as usize] {
                return Err(BlockError::NoSuchBlock(*nr));
            }
        }
        for (nr, data) in writes {
            self.write_slot(&mut inner, *nr, data)?;
        }
        if self.sync_writes {
            inner.file.sync_data()?;
        }
        inner.stats.writes += writes.len() as u64;
        inner.stats.write_calls += 1;
        inner.stats.bytes_written += writes.iter().map(|(_, d)| d.len() as u64).sum::<u64>();
        Ok(())
    }

    fn is_allocated(&self, nr: BlockNr) -> bool {
        (nr as usize) < self.capacity && self.inner.lock().allocated[nr as usize]
    }

    fn allocated_count(&self) -> usize {
        self.inner.lock().allocated.iter().filter(|&&a| a).count()
    }

    fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    fn allocated_blocks(&self) -> Vec<BlockNr> {
        self.inner
            .lock()
            .allocated
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as BlockNr)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(block_size: usize, capacity: usize) -> (FileStore, std::path::PathBuf) {
        let path = std::env::temp_dir().join(format!(
            "afs-filestore-{}-{}.bin",
            std::process::id(),
            rand::random::<u64>()
        ));
        let store = FileStore::create(&path, block_size, capacity, false).unwrap();
        (store, path)
    }

    #[test]
    fn write_read_round_trip() {
        let (store, path) = temp_store(64, 8);
        let nr = store.allocate().unwrap();
        store.write(nr, Bytes::from_static(b"persistent")).unwrap();
        assert_eq!(store.read(nr).unwrap(), Bytes::from_static(b"persistent"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unwritten_block_reads_empty() {
        let (store, path) = temp_store(64, 8);
        let nr = store.allocate().unwrap();
        assert_eq!(store.read(nr).unwrap(), Bytes::new());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn capacity_is_enforced() {
        let (store, path) = temp_store(64, 2);
        store.allocate().unwrap();
        store.allocate().unwrap();
        assert_eq!(store.allocate(), Err(BlockError::Full));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn free_then_reallocate_reads_empty() {
        let (store, path) = temp_store(64, 4);
        let nr = store.allocate().unwrap();
        store.write(nr, Bytes::from_static(b"old data")).unwrap();
        store.free(nr).unwrap();
        store.allocate_at(nr).unwrap();
        assert_eq!(store.read(nr).unwrap(), Bytes::new());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn overwrite_replaces_contents() {
        let (store, path) = temp_store(64, 4);
        let nr = store.allocate().unwrap();
        store.write(nr, Bytes::from_static(b"version one")).unwrap();
        store.write(nr, Bytes::from_static(b"two")).unwrap();
        assert_eq!(store.read(nr).unwrap(), Bytes::from_static(b"two"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_range_block_is_rejected() {
        let (store, path) = temp_store(64, 2);
        assert_eq!(store.read(5), Err(BlockError::NoSuchBlock(5)));
        assert_eq!(store.allocate_at(5), Err(BlockError::NoSuchBlock(5)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn write_batch_scatters_and_reads_back() {
        let (store, path) = temp_store(64, 8);
        let blocks: Vec<BlockNr> = (0..4).map(|_| store.allocate().unwrap()).collect();
        let writes: Vec<(BlockNr, Bytes)> = blocks
            .iter()
            .map(|&nr| (nr, Bytes::from(vec![nr as u8 + 1; 32])))
            .collect();
        store.write_batch(&writes).unwrap();
        for &nr in &blocks {
            assert_eq!(store.read(nr).unwrap(), Bytes::from(vec![nr as u8 + 1; 32]));
        }
        let s = store.stats();
        assert_eq!(s.writes, 4);
        assert_eq!(s.write_calls, 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checksum_detects_changes() {
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
        assert_eq!(checksum(b""), checksum(b""));
    }
}
