//! The [`BlockStore`] trait: the minimal raw-disk interface of §4.
//!
//! A `BlockStore` is a *disk*, not a *server*: it has no notion of accounts,
//! capabilities or locks.  Those live one level up, in [`crate::server::BlockServer`].
//! Keeping the two separate mirrors the paper's layering (Fig. 1) and makes it easy to
//! run the same server logic over an in-memory disk, a file-backed disk, a write-once
//! disk or a fault-injected disk.

use bytes::Bytes;

use crate::{BlockNr, Result};

/// Aggregate statistics maintained by every store, used by the benchmarks to count
/// physical I/O (e.g. blocks newly allocated per update in experiment E8).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of successful block allocations since creation.
    pub allocations: u64,
    /// Number of successful block frees since creation.
    pub frees: u64,
    /// Number of successful block reads since creation.
    pub reads: u64,
    /// Number of successful block writes since creation.
    pub writes: u64,
    /// Number of physical write *calls* since creation: a [`BlockStore::write`]
    /// counts one, and a k-block [`BlockStore::write_batch`] served natively
    /// also counts one.  `writes / write_calls` is the realised batching
    /// factor; the two are equal on an unbatched store.
    pub write_calls: u64,
    /// Number of bytes written since creation.
    pub bytes_written: u64,
    /// Number of bytes read since creation.
    pub bytes_read: u64,
}

impl StoreStats {
    /// Returns the difference `self - earlier`, field by field.
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            allocations: self.allocations - earlier.allocations,
            frees: self.frees - earlier.frees,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            write_calls: self.write_calls - earlier.write_calls,
            bytes_written: self.bytes_written - earlier.bytes_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
        }
    }
}

/// A raw block device: fixed-maximum-size blocks, atomic writes.
///
/// All methods take `&self`; implementations use interior mutability so a store can be
/// shared between server threads.  A write that returns `Ok(())` is durable with
/// respect to the store's crash model (§4: "writing a block must be an atomic action,
/// with an acknowledgement that is returned after the block has been stored on disk").
pub trait BlockStore: Send + Sync {
    /// The maximum number of bytes a block can hold.
    fn block_size(&self) -> usize;

    /// Allocates a fresh block and returns its number.  The block's initial contents
    /// are empty.
    fn allocate(&self) -> Result<BlockNr>;

    /// Allocates a *specific* block number.  Used by the companion protocol of the
    /// dual-server stable storage (§4), where server A chooses the number and server B
    /// must allocate the same one.  Fails with [`crate::BlockError::AlreadyAllocated`]
    /// if the block is in use (an *allocate collision*).
    fn allocate_at(&self, nr: BlockNr) -> Result<()>;

    /// Frees a block.  Reading it afterwards fails until it is allocated again.
    fn free(&self, nr: BlockNr) -> Result<()>;

    /// Reads the current contents of a block.
    fn read(&self, nr: BlockNr) -> Result<Bytes>;

    /// Atomically replaces the contents of a block.
    fn write(&self, nr: BlockNr, data: Bytes) -> Result<()>;

    /// Writes several blocks in one scatter-gather call, applying the entries
    /// **in the given order**.
    ///
    /// Each individual block write keeps the atomicity guarantee of
    /// [`BlockStore::write`]; the batch as a whole is *not* atomic — a crash
    /// mid-batch may leave a strict prefix of the entries applied, which is why
    /// the commit flush orders children before parents.  The default
    /// implementation loops over `write`; native implementations take their
    /// lock (or ship their RPC, or seek their disk head) once per batch, so a
    /// k-block flush costs one physical call instead of k.  Counted as a single
    /// call in [`StoreStats::write_calls`] when served natively.
    fn write_batch(&self, writes: &[(BlockNr, Bytes)]) -> Result<()> {
        for (nr, data) in writes {
            self.write(*nr, data.clone())?;
        }
        Ok(())
    }

    /// Returns true if the block is currently allocated.
    fn is_allocated(&self, nr: BlockNr) -> bool;

    /// Number of currently allocated blocks.
    fn allocated_count(&self) -> usize;

    /// Returns the accumulated I/O statistics.
    fn stats(&self) -> StoreStats;

    /// Lists all currently allocated block numbers (used for recovery and by the
    /// garbage collector's mark-and-sweep audit).
    fn allocated_blocks(&self) -> Vec<BlockNr>;

    /// Informs the store of the replica set's current membership epoch (see
    /// `amoeba_block::membership`).  Local disks have no use for it, so the
    /// default is a no-op; stores that front a *remote* server override this to
    /// stamp the epoch into their write RPCs, letting a server that has seen a
    /// newer configuration reject a stale coordinator with
    /// [`crate::BlockError::EpochMismatch`].  Wrapper stores must forward it.
    fn set_epoch(&self, _epoch: u64) {}
}

/// Convenience: any `Arc<S>` where `S: BlockStore` is itself a `BlockStore`.
impl<S: BlockStore + ?Sized> BlockStore for std::sync::Arc<S> {
    fn block_size(&self) -> usize {
        (**self).block_size()
    }
    fn allocate(&self) -> Result<BlockNr> {
        (**self).allocate()
    }
    fn allocate_at(&self, nr: BlockNr) -> Result<()> {
        (**self).allocate_at(nr)
    }
    fn free(&self, nr: BlockNr) -> Result<()> {
        (**self).free(nr)
    }
    fn read(&self, nr: BlockNr) -> Result<Bytes> {
        (**self).read(nr)
    }
    fn write(&self, nr: BlockNr, data: Bytes) -> Result<()> {
        (**self).write(nr, data)
    }
    fn write_batch(&self, writes: &[(BlockNr, Bytes)]) -> Result<()> {
        (**self).write_batch(writes)
    }
    fn is_allocated(&self, nr: BlockNr) -> bool {
        (**self).is_allocated(nr)
    }
    fn allocated_count(&self) -> usize {
        (**self).allocated_count()
    }
    fn stats(&self) -> StoreStats {
        (**self).stats()
    }
    fn allocated_blocks(&self) -> Vec<BlockNr> {
        (**self).allocated_blocks()
    }
    fn set_epoch(&self, epoch: u64) {
        (**self).set_epoch(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_since_subtracts_fields() {
        let a = StoreStats {
            allocations: 10,
            frees: 1,
            reads: 5,
            writes: 7,
            write_calls: 6,
            bytes_written: 700,
            bytes_read: 500,
        };
        let b = StoreStats {
            allocations: 4,
            frees: 1,
            reads: 2,
            writes: 3,
            write_calls: 2,
            bytes_written: 300,
            bytes_read: 200,
        };
        let d = a.since(&b);
        assert_eq!(d.allocations, 6);
        assert_eq!(d.frees, 0);
        assert_eq!(d.reads, 3);
        assert_eq!(d.writes, 4);
        assert_eq!(d.write_calls, 4);
        assert_eq!(d.bytes_written, 400);
        assert_eq!(d.bytes_read, 300);
    }
}
