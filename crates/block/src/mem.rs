//! In-memory block store: the "small fast electronic disk" of §4.

use std::collections::BTreeMap;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::store::{BlockStore, StoreStats};
use crate::{BlockError, BlockNr, Result, MAX_BLOCK_NR};

/// Default block size: 36 KiB, enough for a 32 KiB page plus the file-service header.
pub const DEFAULT_BLOCK_SIZE: usize = 36 * 1024;

#[derive(Debug, Default)]
struct Inner {
    blocks: BTreeMap<BlockNr, Bytes>,
    next_hint: BlockNr,
    stats: StoreStats,
}

/// A block store kept entirely in memory.
///
/// `MemStore` is the workhorse of the test suite and the benchmarks: it gives
/// deterministic, instantaneous "disk" behaviour so experiments measure the
/// concurrency-control algorithms rather than the host filesystem.
#[derive(Debug)]
pub struct MemStore {
    block_size: usize,
    capacity: Option<usize>,
    inner: Mutex<Inner>,
}

impl MemStore {
    /// Creates an unbounded in-memory store with the default block size.
    pub fn new() -> Self {
        Self::with_block_size(DEFAULT_BLOCK_SIZE)
    }

    /// Creates an unbounded store with the given block size.
    pub fn with_block_size(block_size: usize) -> Self {
        MemStore {
            block_size,
            capacity: None,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Creates a store that refuses to hold more than `capacity` blocks at once.
    pub fn with_capacity(block_size: usize, capacity: usize) -> Self {
        MemStore {
            block_size,
            capacity: Some(capacity),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn find_free(&self, inner: &Inner) -> Result<BlockNr> {
        if let Some(cap) = self.capacity {
            if inner.blocks.len() >= cap {
                return Err(BlockError::Full);
            }
        }
        // Start scanning at the hint; wrap around once.
        let start = inner.next_hint;
        let mut candidate = start;
        loop {
            if !inner.blocks.contains_key(&candidate) {
                return Ok(candidate);
            }
            candidate = if candidate == MAX_BLOCK_NR {
                0
            } else {
                candidate + 1
            };
            if candidate == start {
                return Err(BlockError::Full);
            }
        }
    }
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockStore for MemStore {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn allocate(&self) -> Result<BlockNr> {
        let mut inner = self.inner.lock();
        let nr = self.find_free(&inner)?;
        inner.blocks.insert(nr, Bytes::new());
        inner.next_hint = if nr == MAX_BLOCK_NR { 0 } else { nr + 1 };
        inner.stats.allocations += 1;
        Ok(nr)
    }

    fn allocate_at(&self, nr: BlockNr) -> Result<()> {
        if nr > MAX_BLOCK_NR {
            return Err(BlockError::NoSuchBlock(nr));
        }
        let mut inner = self.inner.lock();
        if inner.blocks.contains_key(&nr) {
            return Err(BlockError::AlreadyAllocated(nr));
        }
        if let Some(cap) = self.capacity {
            if inner.blocks.len() >= cap {
                return Err(BlockError::Full);
            }
        }
        inner.blocks.insert(nr, Bytes::new());
        inner.stats.allocations += 1;
        Ok(())
    }

    fn free(&self, nr: BlockNr) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.blocks.remove(&nr).is_none() {
            return Err(BlockError::NoSuchBlock(nr));
        }
        inner.stats.frees += 1;
        Ok(())
    }

    fn read(&self, nr: BlockNr) -> Result<Bytes> {
        let mut inner = self.inner.lock();
        let data = inner
            .blocks
            .get(&nr)
            .cloned()
            .ok_or(BlockError::NoSuchBlock(nr))?;
        inner.stats.reads += 1;
        inner.stats.bytes_read += data.len() as u64;
        Ok(data)
    }

    fn write(&self, nr: BlockNr, data: Bytes) -> Result<()> {
        if data.len() > self.block_size {
            return Err(BlockError::TooLarge {
                got: data.len(),
                max: self.block_size,
            });
        }
        let mut inner = self.inner.lock();
        if !inner.blocks.contains_key(&nr) {
            return Err(BlockError::NoSuchBlock(nr));
        }
        inner.stats.writes += 1;
        inner.stats.write_calls += 1;
        inner.stats.bytes_written += data.len() as u64;
        inner.blocks.insert(nr, data);
        Ok(())
    }

    fn write_batch(&self, writes: &[(BlockNr, Bytes)]) -> Result<()> {
        // One lock acquisition for the whole batch, validated up front so the
        // call applies all entries or none (stronger than the trait's
        // prefix-only guarantee, which in-memory atomicity makes free).
        let mut inner = self.inner.lock();
        for (nr, data) in writes {
            if data.len() > self.block_size {
                return Err(BlockError::TooLarge {
                    got: data.len(),
                    max: self.block_size,
                });
            }
            if !inner.blocks.contains_key(nr) {
                return Err(BlockError::NoSuchBlock(*nr));
            }
        }
        for (nr, data) in writes {
            inner.stats.writes += 1;
            inner.stats.bytes_written += data.len() as u64;
            inner.blocks.insert(*nr, data.clone());
        }
        inner.stats.write_calls += 1;
        Ok(())
    }

    fn is_allocated(&self, nr: BlockNr) -> bool {
        self.inner.lock().blocks.contains_key(&nr)
    }

    fn allocated_count(&self) -> usize {
        self.inner.lock().blocks.len()
    }

    fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    fn allocated_blocks(&self) -> Vec<BlockNr> {
        self.inner.lock().blocks.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_free_cycle() {
        let store = MemStore::new();
        let nr = store.allocate().unwrap();
        assert!(store.is_allocated(nr));
        store.write(nr, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(store.read(nr).unwrap(), Bytes::from_static(b"hello"));
        store.free(nr).unwrap();
        assert!(!store.is_allocated(nr));
        assert_eq!(store.read(nr), Err(BlockError::NoSuchBlock(nr)));
    }

    #[test]
    fn allocation_numbers_are_distinct() {
        let store = MemStore::new();
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        let c = store.allocate().unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(store.allocated_count(), 3);
    }

    #[test]
    fn allocate_at_detects_collisions() {
        let store = MemStore::new();
        store.allocate_at(42).unwrap();
        assert_eq!(store.allocate_at(42), Err(BlockError::AlreadyAllocated(42)));
    }

    #[test]
    fn allocate_at_rejects_out_of_range_numbers() {
        let store = MemStore::new();
        assert_eq!(
            store.allocate_at(MAX_BLOCK_NR + 1),
            Err(BlockError::NoSuchBlock(MAX_BLOCK_NR + 1))
        );
    }

    #[test]
    fn oversized_writes_are_rejected() {
        let store = MemStore::with_block_size(8);
        let nr = store.allocate().unwrap();
        let err = store.write(nr, Bytes::from(vec![0u8; 9])).unwrap_err();
        assert!(matches!(err, BlockError::TooLarge { got: 9, max: 8 }));
    }

    #[test]
    fn capacity_limit_is_enforced() {
        let store = MemStore::with_capacity(16, 2);
        store.allocate().unwrap();
        store.allocate().unwrap();
        assert_eq!(store.allocate(), Err(BlockError::Full));
    }

    #[test]
    fn freed_numbers_can_be_reused() {
        let store = MemStore::with_capacity(16, 1);
        let a = store.allocate().unwrap();
        store.free(a).unwrap();
        let b = store.allocate().unwrap();
        assert!(store.is_allocated(b));
    }

    #[test]
    fn write_to_unallocated_block_fails() {
        let store = MemStore::new();
        assert_eq!(
            store.write(5, Bytes::from_static(b"x")),
            Err(BlockError::NoSuchBlock(5))
        );
    }

    #[test]
    fn stats_track_io() {
        let store = MemStore::new();
        let nr = store.allocate().unwrap();
        store.write(nr, Bytes::from_static(b"abcd")).unwrap();
        store.read(nr).unwrap();
        let s = store.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.write_calls, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 4);
        assert_eq!(s.bytes_read, 4);
    }

    #[test]
    fn write_batch_is_one_call_for_many_blocks() {
        let store = MemStore::new();
        let blocks: Vec<BlockNr> = (0..8).map(|_| store.allocate().unwrap()).collect();
        let writes: Vec<(BlockNr, Bytes)> = blocks
            .iter()
            .map(|&nr| (nr, Bytes::from(vec![nr as u8; 16])))
            .collect();
        store.write_batch(&writes).unwrap();
        for &nr in &blocks {
            assert_eq!(store.read(nr).unwrap(), Bytes::from(vec![nr as u8; 16]));
        }
        let s = store.stats();
        assert_eq!(s.writes, 8, "every block counts as written");
        assert_eq!(s.write_calls, 1, "but the batch is one physical call");
    }

    #[test]
    fn write_batch_applies_nothing_on_a_bad_entry() {
        let store = MemStore::with_block_size(8);
        let a = store.allocate().unwrap();
        store.write(a, Bytes::from_static(b"old")).unwrap();
        let writes = vec![
            (a, Bytes::from_static(b"new")),
            (a + 1, Bytes::from_static(b"none")),
        ];
        assert_eq!(
            store.write_batch(&writes),
            Err(BlockError::NoSuchBlock(a + 1))
        );
        assert_eq!(store.read(a).unwrap(), Bytes::from_static(b"old"));
        let oversized = vec![(a, Bytes::from(vec![0u8; 9]))];
        assert!(matches!(
            store.write_batch(&oversized),
            Err(BlockError::TooLarge { .. })
        ));
        assert_eq!(store.read(a).unwrap(), Bytes::from_static(b"old"));
    }

    #[test]
    fn allocated_blocks_lists_everything() {
        let store = MemStore::new();
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        let mut listed = store.allocated_blocks();
        listed.sort_unstable();
        let mut expect = vec![a, b];
        expect.sort_unstable();
        assert_eq!(listed, expect);
    }
}
