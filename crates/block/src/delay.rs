//! A latency-modelling block-store wrapper.
//!
//! `MemStore` is deliberately instantaneous, which makes it useless for
//! studying *I/O-bound* behaviour: against a zero-latency disk, batching calls
//! and parallelising replica fan-out are unobservable.  [`DelayStore`] wraps
//! any [`BlockStore`] and charges a simple, honest cost model for reads and
//! writes:
//!
//! * a **per-call** cost (positioning / request overhead — the RPC round trip
//!   or the seek), paid once per `read`/`write`/`write_batch` call, and
//! * a **per-block** cost (transfer), paid once per block moved.
//!
//! By default the device serves **one request at a time**: the delay is spent
//! while an internal mutex is held, like a single disk head.  That is what
//! lets the benchmarks show the two effects this model exists for — a k-block
//! `write_batch` costs `per_call + k·per_block` instead of
//! `k·(per_call + per_block)`, and a shard whose disks are saturated stops
//! scaling until more shards (more disks) are added.
//!
//! [`DelayStore::concurrent`] switches the wrapper to a **concurrent** cost
//! model: every request still pays its full latency, but overlapping requests
//! sleep independently instead of queueing on the head.  That models a device
//! whose latency is dominated by the round trip rather than a serial actuator
//! (an SSD with internal parallelism, or a network disk), and it is the mode
//! the high-concurrency benchmarks use — with a serial head, client-side
//! multiplexing would be invisible because the device itself flattens every
//! pipeline back to one-at-a-time.
//!
//! Allocation and bookkeeping calls are free: they model in-memory metadata,
//! and charging them would only blur what the experiments measure.

use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::store::{BlockStore, StoreStats};
use crate::{BlockNr, Result};

/// A [`BlockStore`] wrapper that charges per-call and per-block latency for
/// reads and writes, serving one request at a time.
pub struct DelayStore<S> {
    inner: S,
    per_call: Duration,
    per_block: Duration,
    /// Scripted extra stall added to every charged request while set — the
    /// "slow replica" fault mode (a partitioned-but-alive disk that answers,
    /// eventually).  [`Duration::ZERO`] means off.
    slow: Mutex<Duration>,
    /// The "disk head": held for the whole duration of a charged request in
    /// serial mode; bypassed in concurrent mode.
    busy: Mutex<()>,
    /// `false` = serial (one request at a time, the default); `true` =
    /// concurrent (overlapping requests sleep independently).
    concurrent: bool,
}

impl<S: BlockStore> DelayStore<S> {
    /// Wraps `inner`, charging `per_call` once per read/write call and
    /// `per_block` once per block moved.
    pub fn new(inner: S, per_call: Duration, per_block: Duration) -> Self {
        DelayStore {
            inner,
            per_call,
            per_block,
            slow: Mutex::new(Duration::ZERO),
            busy: Mutex::new(()),
            concurrent: false,
        }
    }

    /// Switches to the concurrent cost model: every request still pays its
    /// full latency, but overlapping requests no longer queue on the single
    /// disk head — they sleep independently.
    pub fn concurrent(mut self) -> Self {
        self.concurrent = true;
        self
    }

    /// Whether this store serves overlapping requests concurrently (`false`
    /// is the serial single-head default).
    pub fn is_concurrent(&self) -> bool {
        self.concurrent
    }

    /// Returns a reference to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Scripts a slow window: every subsequent charged request stalls an extra
    /// `extra` on top of the cost model, until called again with
    /// [`Duration::ZERO`].  This is the "straggler replica" fault mode — the
    /// disk stays alive and correct, it just stops keeping up — used to show
    /// quorum commits are not gated by the slowest replica.
    pub fn set_slow(&self, extra: Duration) {
        *self.slow.lock() = extra;
    }

    /// The currently scripted extra stall ([`Duration::ZERO`] when none).
    pub fn slow_for(&self) -> Duration {
        *self.slow.lock()
    }

    fn charge(&self, blocks: usize) {
        let cost = self.per_call + self.per_block * blocks as u32 + *self.slow.lock();
        if cost.is_zero() {
            return;
        }
        if self.concurrent {
            std::thread::sleep(cost);
        } else {
            let _head = self.busy.lock();
            std::thread::sleep(cost);
        }
    }
}

impl<S: BlockStore> BlockStore for DelayStore<S> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn allocate(&self) -> Result<BlockNr> {
        self.inner.allocate()
    }

    fn allocate_at(&self, nr: BlockNr) -> Result<()> {
        self.inner.allocate_at(nr)
    }

    fn free(&self, nr: BlockNr) -> Result<()> {
        self.inner.free(nr)
    }

    fn read(&self, nr: BlockNr) -> Result<Bytes> {
        self.charge(1);
        self.inner.read(nr)
    }

    fn write(&self, nr: BlockNr, data: Bytes) -> Result<()> {
        self.charge(1);
        self.inner.write(nr, data)
    }

    fn write_batch(&self, writes: &[(BlockNr, Bytes)]) -> Result<()> {
        // The whole point: one positioning cost for the whole batch.
        self.charge(writes.len());
        self.inner.write_batch(writes)
    }

    fn is_allocated(&self, nr: BlockNr) -> bool {
        self.inner.is_allocated(nr)
    }

    fn allocated_count(&self) -> usize {
        self.inner.allocated_count()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn allocated_blocks(&self) -> Vec<BlockNr> {
        self.inner.allocated_blocks()
    }

    fn set_epoch(&self, epoch: u64) {
        self.inner.set_epoch(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use std::time::Instant;

    #[test]
    fn batch_pays_one_call_cost() {
        let store = DelayStore::new(MemStore::new(), Duration::from_millis(10), Duration::ZERO);
        let blocks: Vec<BlockNr> = (0..8).map(|_| store.allocate().unwrap()).collect();
        let writes: Vec<(BlockNr, Bytes)> = blocks
            .iter()
            .map(|&nr| (nr, Bytes::from_static(b"x")))
            .collect();

        let start = Instant::now();
        store.write_batch(&writes).unwrap();
        let batched = start.elapsed();

        let start = Instant::now();
        for (nr, data) in &writes {
            store.write(*nr, data.clone()).unwrap();
        }
        let unbatched = start.elapsed();

        assert!(
            batched < unbatched / 2,
            "8 blocks in one call ({batched:?}) must beat 8 calls ({unbatched:?})"
        );
    }

    #[test]
    fn scripted_slow_window_stalls_and_clears() {
        let store = DelayStore::new(MemStore::new(), Duration::ZERO, Duration::ZERO);
        let nr = store.allocate().unwrap();
        store.set_slow(Duration::from_millis(30));
        let start = Instant::now();
        store.write(nr, Bytes::from_static(b"slow")).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
        store.set_slow(Duration::ZERO);
        let start = Instant::now();
        store.write(nr, Bytes::from_static(b"fast")).unwrap();
        assert!(start.elapsed() < Duration::from_millis(30));
    }

    #[test]
    fn concurrent_mode_overlaps_requests_serial_mode_queues_them() {
        let per_call = Duration::from_millis(20);
        let threads = 4;

        let run = |store: &DelayStore<MemStore>| {
            let nr = store.allocate().unwrap();
            store.write(nr, Bytes::from_static(b"seed")).unwrap();
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        store.read(nr).unwrap();
                    });
                }
            });
            start.elapsed()
        };

        // Serial head: pays the initial write too, so 4 reads queue behind it.
        let serial = run(&DelayStore::new(MemStore::new(), per_call, Duration::ZERO));
        // Concurrent: the 4 reads sleep at the same time.
        let concurrent =
            run(&DelayStore::new(MemStore::new(), per_call, Duration::ZERO).concurrent());

        assert!(
            serial >= per_call * threads,
            "serial mode must queue {threads} reads one after another (took {serial:?})"
        );
        assert!(
            concurrent < per_call * threads,
            "concurrent mode must overlap the sleeps (took {concurrent:?} for {threads} reads)"
        );
    }

    #[test]
    fn zero_delay_is_transparent() {
        let store = DelayStore::new(MemStore::new(), Duration::ZERO, Duration::ZERO);
        let nr = store.allocate().unwrap();
        store.write(nr, Bytes::from_static(b"free")).unwrap();
        assert_eq!(store.read(nr).unwrap(), Bytes::from_static(b"free"));
        assert_eq!(store.stats().writes, 1);
    }
}
